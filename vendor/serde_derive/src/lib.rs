//! No-op derive macros backing the offline `serde` stub.
//!
//! The workspace's `serde` stand-in implements `Serialize`/`Deserialize` as
//! blanket traits, so the derives have nothing to generate — they only need
//! to exist (and accept `#[serde(...)]` helper attributes) so that
//! `#[derive(Serialize, Deserialize)]` keeps compiling without crates.io.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the blanket impl in `serde` does the rest.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the blanket impl in `serde` does the rest.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
