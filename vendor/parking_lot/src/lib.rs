//! Offline stand-in for `parking_lot`: poison-free `Mutex`/`RwLock` with the
//! guard-returning (non-`Result`) API, wrapping `std::sync`. A poisoned std
//! lock is recovered transparently, matching parking_lot's no-poisoning
//! behaviour.

#![forbid(unsafe_code)]

use std::sync;

/// Mutual exclusion primitive; `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard handed out by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock; `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard handed out by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard handed out by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
