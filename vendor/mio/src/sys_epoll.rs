//! The Linux backend: raw `epoll` over hand-declared libc FFI (the build
//! environment has no `libc` crate; `std` already links the symbols).
//!
//! Level-triggered on purpose — see the crate docs for why consumers must
//! drain to `WouldBlock` regardless. All `unsafe` in the crate lives here.

use crate::{Event, Events, Interest, Token};
use std::collections::HashSet;
use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLPRI: u32 = 0x002;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between `events` and `data`); on other architectures it is naturally
/// aligned.
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// One epoll instance. The fd set mirror (`registered`) exists only to
/// give `register`/`deregister` the same typed `AlreadyExists`/`NotFound`
/// errors as the portable backend, ahead of the kernel's `EEXIST`/`ENOENT`.
pub(crate) struct Epoll {
    epfd: c_int,
    registered: Mutex<HashSet<RawFd>>,
    /// Reusable `epoll_wait` output buffer (poll is single-threaded; the
    /// lock is uncontended and keeps the type `Sync` without unsafe).
    buf: Mutex<Vec<EpollEvent>>,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers; a negative return is checked.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { epfd, registered: Mutex::new(HashSet::new()), buf: Mutex::new(Vec::new()) })
    }

    fn interests_to_mask(interests: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interests.is_readable() {
            mask |= EPOLLIN;
        }
        if interests.is_writable() {
            mask |= EPOLLOUT;
        }
        mask
    }

    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent { events: mask, data: token.0 as u64 };
        let ev_ptr = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
        // SAFETY: `ev_ptr` is null (DEL, allowed since Linux 2.6.9) or
        // points at a live, properly laid-out `EpollEvent` for the call's
        // duration; the kernel does not retain the pointer.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ev_ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        let mut registered = self.registered.lock().expect("epoll fd-set mirror");
        if !registered.insert(fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        let outcome = self.ctl(EPOLL_CTL_ADD, fd, Self::interests_to_mask(interests), token);
        if outcome.is_err() {
            registered.remove(&fd);
        }
        outcome
    }

    pub(crate) fn reregister(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        if !self.registered.lock().expect("epoll fd-set mirror").contains(&fd) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        self.ctl(EPOLL_CTL_MOD, fd, Self::interests_to_mask(interests), token)
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        if !self.registered.lock().expect("epoll fd-set mirror").remove(&fd) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        self.ctl(EPOLL_CTL_DEL, fd, 0, Token(0))
    }

    pub(crate) fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round a nonzero sub-millisecond timeout up so a short wait
            // never degenerates into a busy spin.
            Some(d) => {
                d.as_millis().clamp(u128::from(d.as_nanos() > 0), c_int::MAX as u128) as c_int
            }
        };
        let max = events.capacity();
        let mut buf = self.buf.lock().expect("epoll event buffer");
        buf.resize(max, EpollEvent { events: 0, data: 0 });
        // SAFETY: the buffer holds `max` initialized `EpollEvent`s and
        // outlives the call; the kernel writes at most `max` entries and
        // returns how many.
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), max as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            // An interrupted wait is an empty ready set, not a failure.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let mask = raw.events;
            let data = raw.data;
            events.push(Event::new(
                Token(data as usize),
                mask & (EPOLLIN | EPOLLPRI | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                mask & EPOLLERR != 0,
                mask & (EPOLLHUP | EPOLLRDHUP) != 0,
            ));
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd this struct exclusively owns.
        unsafe {
            close(self.epfd);
        }
    }
}
