//! The portable fallback backend: no OS readiness queue at all. `wait`
//! sleeps one bounded tick and then reports every registered fd as ready
//! for its registered interest — the documented spurious-readiness
//! contract. Correct for consumers doing nonblocking I/O (they observe
//! `WouldBlock` and move on); used where epoll is unavailable and in the
//! backend-independence tests.

use crate::{Event, Events, Interest, Token};
use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

/// The polling tick: the latency floor of the fallback, and its idle cost.
const TICK: Duration = Duration::from_millis(1);

pub(crate) struct Portable {
    registered: Mutex<HashMap<RawFd, (Token, Interest)>>,
}

impl Portable {
    pub(crate) fn new() -> Portable {
        Portable { registered: Mutex::new(HashMap::new()) }
    }

    pub(crate) fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        match self.registered.lock().expect("portable fd table").entry(fd) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((token, interests));
                Ok(())
            }
        }
    }

    pub(crate) fn reregister(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        match self.registered.lock().expect("portable fd table").get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interests);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match self.registered.lock().expect("portable fd table").remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn wait(&self, events: &mut Events, timeout: Option<Duration>) {
        std::thread::sleep(timeout.map_or(TICK, |t| t.min(TICK)));
        let registered = self.registered.lock().expect("portable fd table");
        for (&_fd, &(token, interests)) in registered.iter().take(events.capacity()) {
            events.push(Event::new(
                token,
                interests.is_readable(),
                interests.is_writable(),
                false,
                false,
            ));
        }
    }
}
