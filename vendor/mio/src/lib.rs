//! Offline stand-in for the `mio` crate: readiness-based I/O multiplexing
//! over `epoll` on Linux, with a portable fallback backend everywhere else.
//!
//! The subset mirrors upstream mio 0.8's shape — [`Poll`], [`Registry`],
//! [`Token`], [`Interest`], [`Events`], [`Waker`] — with three documented
//! deviations, all chosen so workspace code stays correct under either
//! this stub or the real crate:
//!
//! * **Registration is by `AsRawFd`**, not `event::Source`: `register`
//!   takes any `&impl AsRawFd` (upstream wraps raw fds in `SourceFd`).
//! * **Readiness is level-triggered** (upstream defaults to
//!   edge-triggered). A consumer that drains each fd until `WouldBlock`
//!   and re-arms interest explicitly behaves identically under both.
//! * **[`Waker`] requires an explicit [`Waker::drain`]** from the polling
//!   thread when its token surfaces (upstream resets its eventfd
//!   internally; the stub's UDP-socket-pair waker combined with
//!   level-triggered readiness would re-fire forever otherwise).
//!
//! The portable backend never blocks on the OS: `poll` sleeps one tick
//! (bounded by the caller's timeout) and then reports every registered fd
//! as ready for its registered interest. Consumers doing nonblocking I/O
//! observe spurious readiness and `WouldBlock` — correct, just not cheap;
//! it exists so the workspace builds and tests anywhere. Force it with
//! `IDEA_POLL_BACKEND=portable` (checked once per [`Poll::new`]).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::UdpSocket;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

#[cfg(target_os = "linux")]
mod sys_epoll;
mod sys_portable;

/// Identifies a registration: returned in every [`Event`] for the fd it
/// was registered with. The poll backends never interpret the value, so a
/// consumer may encode anything that fits (mio's contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both
/// (`Interest::READABLE | Interest::WRITABLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Does this interest include read readiness?
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include write readiness?
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    read_closed: bool,
}

impl Event {
    pub(crate) fn new(
        token: Token,
        readable: bool,
        writable: bool,
        error: bool,
        read_closed: bool,
    ) -> Event {
        Event { token, readable, writable, error, read_closed }
    }

    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes hang-up and error conditions, so a reader
    /// always observes the failure by attempting the read).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Write readiness (includes error conditions).
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// An error condition on the fd.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer closed its write half (or the whole connection): reading
    /// will observe EOF after any buffered data.
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

/// A buffer of readiness events, filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    list: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { list: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.list.iter()
    }

    /// No events were delivered by the last poll.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.list.clear();
    }

    pub(crate) fn push(&mut self, event: Event) {
        self.list.push(event);
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(sys_epoll::Epoll),
    Portable(sys_portable::Portable),
}

/// Registration handle: shared between [`Poll`] and anything that needs to
/// (de)register fds or build a [`Waker`]. Cloning via
/// [`Registry::try_clone`] yields a handle to the same poll instance.
pub struct Registry {
    backend: Arc<Backend>,
}

impl Registry {
    /// Registers `source` for `interests` under `token`.
    ///
    /// # Errors
    /// `AlreadyExists` if the fd is registered; OS errors from the backend.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        match &*self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.register(source.as_raw_fd(), token, interests),
            Backend::Portable(p) => p.register(source.as_raw_fd(), token, interests),
        }
    }

    /// Replaces the registration of an already-registered `source`.
    ///
    /// # Errors
    /// `NotFound` if the fd is not registered; OS errors from the backend.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        match &*self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.reregister(source.as_raw_fd(), token, interests),
            Backend::Portable(p) => p.reregister(source.as_raw_fd(), token, interests),
        }
    }

    /// Removes the registration of `source`.
    ///
    /// # Errors
    /// `NotFound` if the fd is not registered; OS errors from the backend.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &*self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.deregister(source.as_raw_fd()),
            Backend::Portable(p) => p.deregister(source.as_raw_fd()),
        }
    }

    /// Another handle to the same poll instance.
    ///
    /// # Errors
    /// Infallible in this stub; fallible for upstream signature parity.
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(Registry { backend: Arc::clone(&self.backend) })
    }
}

/// The poller: owns the OS readiness queue and delivers [`Events`].
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A poller on the platform's best backend: `epoll` on Linux, the
    /// portable fallback elsewhere (or when `IDEA_POLL_BACKEND=portable`).
    ///
    /// # Errors
    /// OS failure creating the epoll instance.
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("IDEA_POLL_BACKEND").as_deref() != Ok("portable") {
                return Ok(Poll {
                    registry: Registry {
                        backend: Arc::new(Backend::Epoll(sys_epoll::Epoll::new()?)),
                    },
                });
            }
        }
        Self::portable()
    }

    /// A poller on the portable fallback backend, on any platform — what
    /// the backend-independence tests construct explicitly.
    ///
    /// # Errors
    /// Infallible in this stub; fallible for signature parity.
    pub fn portable() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                backend: Arc::new(Backend::Portable(sys_portable::Portable::new())),
            },
        })
    }

    /// Is this poller backed by the OS readiness queue (as opposed to the
    /// portable spurious-readiness fallback)? The no-idle-wakeups
    /// guarantee only holds on an OS-backed poller.
    pub fn is_os_backed(&self) -> bool {
        match &*self.registry.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => true,
            Backend::Portable(_) => false,
        }
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered fd is ready, `timeout` expires
    /// (`None` = no limit), or a [`Waker`] wakes the poll; fills `events`
    /// with up to its capacity of readiness events.
    ///
    /// # Errors
    /// OS failure from the backend (`EINTR` is absorbed and reported as an
    /// empty event set).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &*self.registry.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout),
            Backend::Portable(p) => {
                p.wait(events, timeout);
                Ok(())
            }
        }
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from any thread: the
/// cross-thread signal a readiness event loop needs for work that does not
/// originate on an fd (e.g. completions from worker threads).
///
/// Implemented as a connected localhost UDP socket pair — fully inside
/// `std`, no extra syscall surface. The receiving socket is registered
/// with the poll under the token passed to [`Waker::new`]; when that token
/// surfaces, the polling thread must call [`Waker::drain`].
pub struct Waker {
    tx: UdpSocket,
    rx: UdpSocket,
}

impl Waker {
    /// Builds a waker and registers its readable end under `token`.
    ///
    /// # Errors
    /// Socket setup or registration failure.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        rx.connect(tx.local_addr()?)?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        registry.register(&rx, token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Wakes the poll. Callable from any thread; coalesces naturally (a
    /// full socket buffer means a wake is already pending, which is all
    /// the semantics require).
    ///
    /// # Errors
    /// Unexpected socket failure (`WouldBlock` is success: wake pending).
    pub fn wake(&self) -> io::Result<()> {
        match self.tx.send(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wake signals. The polling thread calls this when
    /// the waker's token surfaces; without it, level-triggered readiness
    /// re-delivers the event on every poll. (Stub extension — upstream
    /// mio's waker resets internally.)
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(9);

    fn polls_under_test() -> Vec<Poll> {
        let mut polls = vec![Poll::portable().unwrap()];
        let default = Poll::new().unwrap();
        if default.is_os_backed() {
            polls.push(default);
        }
        polls
    }

    #[test]
    fn interest_combination() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    /// A pending connection makes the listener readable; the accepted
    /// stream is writable; data makes it readable — on every backend.
    #[test]
    fn tcp_readiness_lifecycle() {
        for mut poll in polls_under_test() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.registry().register(&listener, LISTENER, Interest::READABLE).unwrap();

            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let mut events = Events::with_capacity(8);
            let accepted = wait_for(&mut poll, &mut events, LISTENER, |e| e.is_readable());
            assert!(accepted, "listener must turn readable on a pending connection");

            let (stream, _) = listener.accept().unwrap();
            stream.set_nonblocking(true).unwrap();
            poll.registry()
                .register(&stream, CLIENT, Interest::READABLE | Interest::WRITABLE)
                .unwrap();
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, |e| e.is_writable()),
                "a fresh stream must be writable"
            );

            client.write_all(b"ping").unwrap();
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, |e| e.is_readable()),
                "incoming bytes must make the stream readable"
            );
            let mut buf = [0u8; 8];
            let mut readable = stream;
            assert_eq!(readable.read(&mut buf).unwrap(), 4);

            poll.registry().deregister(&readable).unwrap();
            poll.registry().deregister(&listener).unwrap();
        }
    }

    fn wait_for(
        poll: &mut Poll,
        events: &mut Events,
        token: Token,
        pred: impl Fn(&Event) -> bool,
    ) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            poll.poll(events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token() == token && pred(e)) {
                return true;
            }
        }
        false
    }

    #[test]
    fn double_register_and_missing_deregister_are_typed_errors() {
        for poll in polls_under_test() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            poll.registry().register(&listener, LISTENER, Interest::READABLE).unwrap();
            let again = poll.registry().register(&listener, CLIENT, Interest::READABLE);
            assert_eq!(again.unwrap_err().kind(), io::ErrorKind::AlreadyExists);
            poll.registry().deregister(&listener).unwrap();
            let gone = poll.registry().deregister(&listener);
            assert_eq!(gone.unwrap_err().kind(), io::ErrorKind::NotFound);
            let rereg = poll.registry().reregister(&listener, LISTENER, Interest::READABLE);
            assert_eq!(rereg.unwrap_err().kind(), io::ErrorKind::NotFound);
        }
    }

    /// A waker unblocks a poll from another thread, and draining stops the
    /// event from re-firing (strict only on an OS-backed poll — the
    /// portable backend is spurious by design).
    #[test]
    fn waker_wakes_and_drains() {
        for mut poll in polls_under_test() {
            let os_backed = poll.is_os_backed();
            let waker = Arc::new(Waker::new(poll.registry(), WAKER).unwrap());
            let mut events = Events::with_capacity(8);

            if os_backed {
                // No wake pending: a short poll must time out empty.
                poll.poll(&mut events, Some(Duration::from_millis(50))).unwrap();
                assert!(events.is_empty(), "idle OS-backed poll must deliver nothing");
            }

            let remote = Arc::clone(&waker);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake().unwrap();
            });
            assert!(
                wait_for(&mut poll, &mut events, WAKER, |e| e.is_readable()),
                "wake() must surface the waker token"
            );
            handle.join().unwrap();

            waker.drain();
            if os_backed {
                poll.poll(&mut events, Some(Duration::from_millis(50))).unwrap();
                assert!(events.is_empty(), "a drained waker must not re-fire");
            }
        }
    }

    /// The portable backend reports registered fds ready without any OS
    /// readiness signal — the documented spurious-readiness contract.
    #[test]
    fn portable_backend_reports_spurious_readiness() {
        let mut poll = Poll::portable().unwrap();
        assert!(!poll.is_os_backed());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poll.registry().register(&listener, LISTENER, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(
            events.iter().any(|e| e.token() == LISTENER && e.is_readable()),
            "portable backend must assume readiness"
        );
    }
}
