//! Offline stand-in for `proptest`: deterministic property testing without
//! shrinking.
//!
//! The workspace's property tests use a small slice of the real crate —
//! range strategies, tuples, `prop::collection::{vec, btree_map}`,
//! `prop::num::f64::ANY`, `.prop_map`, the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header) and the `prop_assert*`
//! macros. This crate reimplements exactly that surface:
//!
//! * every test function runs `cases` times (default 64) with inputs drawn
//!   from a generator seeded by the test's module path + name, so failures
//!   reproduce across runs and machines;
//! * there is **no shrinking** — a failing case panics with the standard
//!   assertion message (the deterministic seed makes replaying cheap);
//! * strategies are generators, not search trees.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for producing values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, map: f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.generate(rng))
        }
    }

    /// Strategy producing one fixed value per draw.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    // `impl Strategy` for references so locally-bound strategies can be
    // reused without moving (mirrors real proptest's `&S` blanket).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with at most `size.end - 1` entries.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// Map of `keys → values`; duplicate keys collapse, matching real
    /// proptest (the size range is an upper bound, not a guarantee).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| (self.keys.generate(rng), self.values.generate(rng))).collect()
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Either boolean, drawn fairly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The full-domain `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod num {
    //! Numeric strategies beyond plain ranges.

    pub mod f64 {
        //! `f64` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::{Rng, RngCore};

        /// Any `f64`, including zeroes, subnormals, infinities and NaN.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The full-domain `f64` strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                // 1-in-8 draws yield a special value; the rest reinterpret
                // random bits, which spreads mass across all exponents.
                if rng.gen_range(0u32..8) == 0 {
                    const SPECIALS: [f64; 8] = [
                        0.0,
                        -0.0,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::NAN,
                        f64::MIN_POSITIVE,
                        f64::MAX,
                        f64::MIN,
                    ];
                    SPECIALS[rng.gen_range(0usize..SPECIALS.len())]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and deterministic seeding.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies.
    pub type TestRng = StdRng;

    /// Subset of real proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; this runner never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Deterministic generator for one named test: the seed is an FNV-1a
    /// hash of the fully-qualified test name, so runs are reproducible and
    /// different tests draw different streams.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` module-path alias used inside `proptest!` bodies.

        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Defines property tests. Each function runs `cases` times with fresh
/// deterministic inputs; an optional `#![proptest_config(expr)]` header
/// overrides the configuration for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u64)>> {
        prop::collection::vec((0u32..4, 0u64..50), 0..24)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in -2i64..3, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..3).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn collections_respect_size(v in arb_pairs(), m in prop::collection::btree_map(0u32..6, 0u64..8, 0..6)) {
            prop_assert!(v.len() < 24);
            prop_assert!(m.len() < 6);
            for (w, c) in v {
                prop_assert!(w < 4 && c < 50);
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn config_header_is_honoured(x in 0u64..1000) {
            let _ = x;
        }
    }

    #[test]
    fn seeding_is_deterministic_per_test() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("mod::case");
        let mut b = crate::test_runner::rng_for("mod::case");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
        let mut c = crate::test_runner::rng_for("mod::other");
        assert_ne!(s.generate(&mut a), s.generate(&mut c));
    }

    #[test]
    fn f64_any_produces_specials_and_normals() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::rng_for("f64-any");
        let draws: Vec<f64> = (0..2000).map(|_| crate::num::f64::ANY.generate(&mut rng)).collect();
        assert!(draws.iter().any(|v| v.is_nan()));
        assert!(draws.iter().any(|v| v.is_finite()));
    }
}
