//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, and nothing in the
//! workspace actually serializes at runtime (there is no `serde_json` /
//! `bincode` consumer) — the derives exist so wire types stay annotated for
//! the day a real transport lands. This stub therefore provides:
//!
//! * blanket [`Serialize`] / [`Deserialize`] impls (every type qualifies);
//! * no-op `#[derive(Serialize, Deserialize)]` macros accepting
//!   `#[serde(...)]` helper attributes;
//! * just enough of [`Serializer`] / [`Deserializer`] for the hand-written
//!   adapter impls in the tree to type-check.
//!
//! Any attempt to *drive* serialization through these traits fails at
//! runtime with a clear error rather than silently producing garbage.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Error plumbing shared by the serializer and deserializer halves.
pub trait Error: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: core::fmt::Display>(msg: T) -> Self;
}

/// The error type surfaced when the stub is asked to actually serialize.
#[derive(Debug)]
pub struct StubError(pub String);

impl core::fmt::Display for StubError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde stub: {}", self.0)
    }
}

impl std::error::Error for StubError {}

impl Error for StubError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        StubError(msg.to_string())
    }
}

/// Minimal serializer surface: only the entry points hand-written adapters
/// in the workspace call.
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Serialization error type.
    type Error: Error;

    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// Minimal deserializer surface (only ever used as a bound).
pub trait Deserializer<'de>: Sized {
    /// Deserialization error type.
    type Error: Error;
}

/// Marker trait: satisfied by every type so `#[derive(Serialize)]` and
/// `T: Serialize` bounds compile. Driving it errors out at runtime.
pub trait Serialize {
    /// Stub serialization — always fails.
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(S::Error::custom("serialization not supported by the offline serde stub"))
    }
}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring [`Serialize`] for the deserialization direction.
pub trait Deserialize<'de>: Sized {
    /// Stub deserialization — always fails.
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(D::Error::custom("deserialization not supported by the offline serde stub"))
    }
}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Annotated {
        #[serde(with = "adapter")]
        field: u64,
    }

    #[allow(dead_code)]
    mod adapter {
        use super::super::{Deserialize, Deserializer, Serializer};

        pub fn serialize<S: Serializer>(v: &u64, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_bytes(&v.to_le_bytes())
        }

        pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<u64, D::Error> {
            u64::deserialize(d)
        }
    }

    struct NullSerializer;

    impl Serializer for NullSerializer {
        type Ok = usize;
        type Error = StubError;

        fn serialize_bytes(self, v: &[u8]) -> Result<usize, StubError> {
            Ok(v.len())
        }
    }

    #[test]
    fn derives_and_blanket_impls_compile() {
        let a = Annotated { field: 7 };
        // The blanket impl exists but refuses to run.
        assert!(a.serialize(NullSerializer).is_err());
        // A hand-written adapter drives the Serializer trait directly.
        assert_eq!(adapter::serialize(&a.field, NullSerializer).unwrap(), 8);
    }
}
