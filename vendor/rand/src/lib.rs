//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface the IDEA code uses: [`RngCore`], the [`Rng`]
//! extension trait with `gen_range`/`gen_bool`, [`SeedableRng`] with
//! `seed_from_u64`, a deterministic [`rngs::StdRng`] (xoshiro256++ seeded by
//! SplitMix64), [`rngs::mock::StepRng`], and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only hard requirement here — every simulation run is
//! keyed by a seed — so the generator favours simplicity over the security
//! properties of the real `StdRng` (which is ChaCha-based).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = word.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ranges that can produce a uniform sample (the subset of
/// `rand::distributions::uniform` the workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = (rng.next_u64() as $u) % span;
                (self.start as $u).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as $u) % (span + 1);
                (start as $u).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_sample_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (expanded via SplitMix64, matching
    /// the upstream default behaviour of deriving full seeds from one word).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let n = word.len().min(bytes.len() - i);
            bytes[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 — used to expand `u64` seeds.
    pub(crate) struct SplitMix64(u64);

    impl SplitMix64 {
        pub(crate) fn new(state: u64) -> Self {
            SplitMix64(state)
        }

        pub(crate) fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Arithmetic-progression generator: yields `initial`, then adds
        /// `increment` per draw.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Builds the generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { value: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` member the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{mock::StepRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=1.0);
            assert_eq!(g, 1.0);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(5, 2);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u32(), 9);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn dyn_rng_core_usable_through_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynref: &mut dyn RngCore = &mut rng;
        // `&mut dyn RngCore` is itself Sized + RngCore, so Rng methods work.
        let x = dynref.gen_range(0u64..10);
        assert!(x < 10);
    }
}
