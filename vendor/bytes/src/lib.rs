//! Offline stand-in for the `bytes` crate: a cheaply-cloneable, immutable
//! byte container. Backed by `Arc<[u8]>` instead of the real crate's
//! vtable machinery — identical semantics for everything the workspace
//! uses (construction, cloning, slicing via `Deref`, equality, hashing).

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` by copying a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the container holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes { data: Arc::from(v.as_bytes()) }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    /// Renders like the real crate: a byte-string literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![9, 9]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Bytes::new());
    }

    #[test]
    fn debug_renders_byte_string() {
        let b = Bytes::from("hi");
        assert_eq!(format!("{b:?}"), "b\"hi\"");
    }
}
