//! Offline stand-in for `crossbeam`: the `channel` module the threaded
//! engine uses, implemented over `std::sync::mpsc`. Semantics match for the
//! surface in use — cloneable senders, `recv`/`recv_timeout`, disconnect
//! detection — at (irrelevant here) lower throughput than real crossbeam.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer single-consumer channels.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip_with_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn timeout_and_disconnect_are_distinguished() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || tx.send(99).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(99));
        }
    }
}
