//! Offline stand-in for `criterion`: enough of the API for the workspace's
//! benches to compile and produce useful wall-clock numbers without
//! crates.io. No statistics engine — each benchmark is timed over a fixed
//! sampling loop and reported as mean ns/iter to stdout.
//!
//! When a bench target is executed by `cargo test` (libtest passes
//! `--test`), benchmarks run a single iteration as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmarked code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean cost per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up / calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Pick an iteration count targeting ~100 ms, clamped to the
        // requested sample budget.
        let target = Duration::from_millis(100);
        let n = (target.as_nanos() / once.as_nanos()).clamp(1, self.iters as u128) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / n as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

/// True when libtest invoked this bench binary via `cargo test`.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Criterion {
    /// Sets the per-benchmark iteration budget.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let iters = if test_mode() { 1 } else { self.sample_size as u64 };
        let mut b = Bencher { iters, mean_ns: 0.0 };
        f(&mut b);
        if b.mean_ns >= 1e6 {
            println!("bench {id:<40} {:>12.3} ms/iter", b.mean_ns / 1e6);
        } else {
            println!("bench {id:<40} {:>12.1} ns/iter", b.mean_ns);
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark targets, mirroring both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| {
            b.iter(|| black_box(n + n))
        });
        group.finish();
    }

    criterion_group!(plain, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn groups_run() {
        plain();
        configured();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
