//! # IDEA — detection-based adaptive consistency control
//!
//! A full Rust reproduction of *"IDEA: An Infrastructure for
//! Detection-based Adaptive Consistency Control in Replicated Services"*
//! (Yijun Lu, Ying Lu, Hong Jiang; HPDC 2007 / TR-UNL-CSE-2007-0001).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — ids, virtual time, updates, consistency levels;
//! * [`clock`] — skewed/NTP-disciplined clock models;
//! * [`vv`] — classic and extended version vectors (TACT triples);
//! * [`net`] — deterministic discrete-event simulator + threaded runtime;
//! * [`overlay`] — RanSub, temperature top layer, gossip bottom layer;
//! * [`detect`] — the inconsistency detection framework;
//! * [`store`] — the replicated object store substrate;
//! * [`core`] — the IDEA middleware itself (quantification, protocol,
//!   resolution, adaptive control, the Table-1 API);
//! * [`baselines`] — optimistic / TACT / strong comparators;
//! * [`apps`] — the white board and airline-booking applications;
//! * [`workload`] — experiment runners regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use idea::prelude::*;
//!
//! // Four white-board participants on a simulated WAN.
//! let board = ObjectId(1);
//! let clients: Vec<WhiteboardClient> =
//!     (0..4).map(|i| WhiteboardClient::new(NodeId(i), board, 0.90)).collect();
//! let mut net = SimEngine::new(Topology::planetlab(4, 7), SimConfig::default(), clients);
//!
//! // Draw concurrently, let IDEA detect the divergence...
//! for w in 0..4u32 {
//!     net.with_node(NodeId(w), |c, ctx| { c.draw(0, 0, "hi", ctx); });
//! }
//! net.run_for(SimDuration::from_secs(2));
//!
//! // ...and resolve it on demand — through a typed client session (the
//! // same session code runs unchanged on the threaded engines).
//! let mut session = Session::open(&mut net, NodeId(0));
//! session.object(board).demand_resolution().unwrap();
//! net.run_for(SimDuration::from_secs(5));
//! let read = Session::open(&mut net, NodeId(0)).object(board).peek().unwrap();
//! assert!(read.updates >= 1);
//! let winning_cell = net.node(NodeId(0)).render();
//! assert!(winning_cell.contains_key(&(0, 0)));
//! ```

#![forbid(unsafe_code)]

pub use idea_apps as apps;
pub use idea_baselines as baselines;
pub use idea_clock as clock;
pub use idea_core as core;
pub use idea_detect as detect;
pub use idea_net as net;
pub use idea_overlay as overlay;
pub use idea_store as store;
pub use idea_transport as transport;
pub use idea_types as types;
pub use idea_vv as vv;
pub use idea_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use idea_apps::{BookOutcome, BookingServer, Stroke, WhiteboardClient};
    pub use idea_core::api::DeveloperApi;
    pub use idea_core::{
        AutoController, Command, CommandError, CommandExecutor, ConsistencySpec, EngineHandle,
        HintController, IdeaConfig, IdeaHost, IdeaMsg, IdeaNode, LockedEngine, MaxBounds,
        ObjectHandle, Quantifier, ReadConsistency, ReadResult, ResolutionPolicy, Response, Session,
        Weights,
    };
    pub use idea_net::{
        shards_from_env, Context, Proto, ShardedEngine, ShardedProto, SimConfig, SimEngine,
        ThreadedConfig, ThreadedEngine, Topology,
    };
    pub use idea_transport::{IdeaServer, RemoteEngine};
    pub use idea_types::{
        ConsistencyLevel, ErrorTriple, NodeId, ObjectId, ShardId, SimDuration, SimTime, Update,
        UpdatePayload, WireError, WriterId,
    };
    pub use idea_vv::{ExtendedVersionVector, VersionVector, VvOrdering};
}
