//! Equivalence pins for the typed client layer: routing an operation
//! through `Session`/`Command` must be *externally indistinguishable* from
//! injecting the same operation as a closure with a live context — the
//! command layer adds a surface, never a behaviour.
//!
//! Two pins:
//! 1. a fixed-seed scenario (the Formula-1 trace of
//!    `tests/shard_trace.rs`, captured at commit `8d9bef3` before the
//!    redesign) reproduced bit-for-bit by session-routed commands;
//! 2. a proptest over random operation sequences, comparing the full
//!    externally observable outcome of closure-injected and
//!    session-routed runs.

use idea_core::client::{ReadConsistency, Session};
use idea_core::{DeveloperApi, IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, UpdatePayload};
use proptest::prelude::*;

const OBJ_A: ObjectId = ObjectId(1);
const OBJ_B: ObjectId = ObjectId(7);

/// How external stimuli reach the nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Route {
    /// `SimEngine::with_node` closures calling node methods directly —
    /// the pre-redesign surface.
    Closure,
    /// `Session`/`ObjectHandle` commands through the `EngineHandle`.
    Session,
}

/// Everything a run exposes to the outside world.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    nodes: Vec<(i64, usize, u64)>,
    detect_msgs: u64,
    gossip_msgs: u64,
    resolution_msgs: u64,
    total_msgs: u64,
    resolutions: u64,
}

fn level_ppm(node: &IdeaNode, obj: ObjectId) -> u64 {
    (node.level(obj).value() * 1e6).round() as u64
}

fn collect(eng: &SimEngine<IdeaNode>, n: usize, objects: &[ObjectId]) -> Trace {
    let mut nodes = Vec::new();
    for i in 0..n as u32 {
        for &obj in objects {
            let rep = eng.node(NodeId(i)).report(obj);
            nodes.push((rep.meta, rep.updates, level_ppm(eng.node(NodeId(i)), obj)));
        }
    }
    let s = eng.stats();
    Trace {
        nodes,
        detect_msgs: s.messages(MsgClass::Detect),
        gossip_msgs: s.messages(MsgClass::Gossip),
        resolution_msgs: s.messages(MsgClass::ResolutionCtl),
        total_msgs: s.total_messages(),
        resolutions: (0..n as u32)
            .map(|i| eng.node(NodeId(i)).report(objects[0]).resolutions_initiated)
            .sum(),
    }
}

fn write(eng: &mut SimEngine<IdeaNode>, route: Route, node: u32, obj: ObjectId, delta: i64) {
    match route {
        Route::Closure => eng.with_node(NodeId(node), |p, ctx| {
            p.local_write(obj, delta, UpdatePayload::none(), ctx);
        }),
        Route::Session => {
            Session::open(eng, NodeId(node))
                .object(obj)
                .write(delta, UpdatePayload::none())
                .expect("hosted object");
        }
    }
}

fn read(eng: &mut SimEngine<IdeaNode>, route: Route, node: u32, obj: ObjectId) {
    match route {
        Route::Closure => eng.with_node(NodeId(node), |p, ctx| {
            let _ = p.read(obj, ctx);
        }),
        Route::Session => {
            // `Any` is the exact read the closure surface performs.
            let _ = Session::open(eng, NodeId(node))
                .read_consistency(ReadConsistency::Any)
                .object(obj)
                .read()
                .expect("hosted object");
        }
    }
}

fn demand(eng: &mut SimEngine<IdeaNode>, route: Route, node: u32, obj: ObjectId) {
    match route {
        Route::Closure => {
            eng.with_node(NodeId(node), |p, ctx| p.demand_active_resolution(obj, ctx))
        }
        Route::Session => {
            Session::open(eng, NodeId(node)).object(obj).demand_resolution().expect("hosted object")
        }
    }
}

fn set_hint(eng: &mut SimEngine<IdeaNode>, route: Route, node: u32, hint: f64) {
    match route {
        Route::Closure => eng.with_node(NodeId(node), |p, _| {
            p.set_hint(hint).expect("valid hint");
        }),
        Route::Session => Session::open(eng, NodeId(node)).set_hint(hint).expect("valid hint"),
    }
}

// ====================================================================
// Fixed-seed pin: the shard_trace Formula-1 scenario, session-routed
// ====================================================================

/// The Formula-1 / whiteboard scenario of `tests/shard_trace.rs`, stimulus
/// routing parameterised.
fn formula1_scenario(route: Route) -> Trace {
    let mut cfg = IdeaConfig::whiteboard(0.93);
    // Pinned before the default gossip mode flipped to lazy; the eager
    // path stays available behind config exactly for such traces.
    cfg.gossip.mode = idea_overlay::GossipMode::Eager;
    let objects = [OBJ_A, OBJ_B];
    let n = 8;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, 42),
        SimConfig { seed: 42, ..Default::default() },
        nodes,
    );
    for _ in 0..2 {
        for w in 0..4u32 {
            write(&mut eng, route, w, OBJ_A, 1);
            write(&mut eng, route, w, OBJ_B, 2);
            eng.run_for(SimDuration::from_millis(500));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
    for wave in 0..4 {
        for w in 0..4u32 {
            write(&mut eng, route, w, OBJ_A, wave + 1);
            if w % 2 == 0 {
                write(&mut eng, route, w, OBJ_B, 5);
            }
        }
        eng.run_for(SimDuration::from_secs(3));
    }
    read(&mut eng, route, 5, OBJ_A);
    demand(&mut eng, route, 0, OBJ_B);
    eng.run_for(SimDuration::from_secs(10));
    collect(&eng, n, &objects)
}

/// The Formula-1 trace pin. Replica/level outcomes match the trace
/// captured at `8d9bef3` (the last commit before the protocol store was
/// sharded); the message-count constants were re-captured when gossip
/// gained sender exclusion — relays stopped pushing rumors back to their
/// sender, which shifts the seeded RNG draws and therefore the exact
/// counts (convergence is byte-identical: same replicas, same levels).
fn formula1_pin() -> Trace {
    let mut nodes = Vec::new();
    for _ in 0..4 {
        nodes.push((12, 6, 1_000_000));
        nodes.push((4, 2, 1_000_000));
    }
    for _ in 4..8 {
        nodes.push((0, 0, 1_000_000));
        nodes.push((0, 0, 1_000_000));
    }
    Trace {
        nodes,
        detect_msgs: 176,
        gossip_msgs: 569,
        resolution_msgs: 252,
        total_msgs: 1009,
        resolutions: 10,
    }
}

#[test]
fn session_routed_commands_reproduce_the_pre_redesign_trace() {
    assert_eq!(formula1_scenario(Route::Session), formula1_pin());
}

#[test]
fn closure_and_session_routes_are_bit_identical() {
    assert_eq!(formula1_scenario(Route::Closure), formula1_scenario(Route::Session));
}

// ====================================================================
// Property pin: random operation sequences
// ====================================================================

const NODES: usize = 6;
const OBJECTS: u64 = 4;

#[derive(Debug, Clone)]
enum OpKind {
    Write(i64),
    Read,
    Demand,
    SetHint(u8),
}

#[derive(Debug, Clone)]
struct Op {
    node: u32,
    object: u64,
    kind: OpKind,
    gap_ms: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NODES as u32, 0..OBJECTS, 0..20u8, 1..5i64, 80..92u8, 50..1500u64).prop_map(
        |(node, object, k, delta, hint, gap_ms)| {
            let kind = match k {
                0..=11 => OpKind::Write(delta),
                12..=15 => OpKind::Read,
                16..=17 => OpKind::Demand,
                _ => OpKind::SetHint(hint),
            };
            Op { node, object, kind, gap_ms }
        },
    )
}

fn run(ops: &[Op], seed: u64, route: Route) -> Trace {
    let objects: Vec<ObjectId> = (0..OBJECTS).map(ObjectId).collect();
    let cfg = IdeaConfig::whiteboard(0.9);
    let nodes: Vec<IdeaNode> =
        (0..NODES).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(NODES, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    for op in ops {
        let obj = ObjectId(op.object);
        match op.kind {
            OpKind::Write(delta) => write(&mut eng, route, op.node, obj, delta),
            OpKind::Read => read(&mut eng, route, op.node, obj),
            OpKind::Demand => demand(&mut eng, route, op.node, obj),
            OpKind::SetHint(h) => set_hint(&mut eng, route, op.node, h as f64 / 100.0),
        }
        eng.run_for(SimDuration::from_millis(op.gap_ms));
    }
    eng.run_for(SimDuration::from_secs(8));
    collect(&eng, NODES, &objects)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For arbitrary operation sequences, the session route and the
    /// closure route leave the deployment in identical externally
    /// observable states — replicas, levels, traffic and resolutions.
    #[test]
    fn random_workloads_are_route_invariant(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0..u64::MAX / 2,
    ) {
        let closure = run(&ops, seed, Route::Closure);
        let session = run(&ops, seed, Route::Session);
        prop_assert_eq!(closure, session);
    }
}
