//! Eager ↔ lazy gossip-plane equivalence on the deterministic engine.
//!
//! The lazy plane changes *how* rumor bodies move (digest + pull instead
//! of flooded pushes), never *whether* they arrive or what the protocol
//! concludes from them. Two guarantees pinned here, both on loss-free
//! `SimEngine` runs:
//!
//! 1. **Delivery**: with a fanout spanning the population, every node
//!    delivers the exact same rumor set in both modes (a proptest over
//!    random deployment sizes, topologies and seeds).
//! 2. **Convergence**: on fixed seeds, a sweep-driven scenario ends with
//!    identical replicas — same sanctioned updates, same meta, same
//!    levels — node for node in both modes, while lazy mode spends
//!    strictly fewer gossip-class bytes.

use idea_core::{IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_overlay::{GossipMode, RumorId};
use idea_types::{NodeId, ObjectId, SimDuration, SimTime, UpdatePayload};
use proptest::prelude::*;

const OBJ: ObjectId = ObjectId(3);

/// Outcome of one run: per node `(meta, updates, level ppm, rumor ids)`,
/// plus the gossip-class traffic it cost.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    nodes: Vec<(i64, usize, u64, Vec<RumorId>)>,
    gossip_msgs: u64,
    gossip_bytes: u64,
}

fn run_mode(mode: GossipMode, n: usize, seed: u64, waves: u32) -> Outcome {
    run_scenario(mode, n, seed, waves, false)
}

fn run_scenario(mode: GossipMode, n: usize, seed: u64, waves: u32, resolve: bool) -> Outcome {
    let mut cfg = IdeaConfig {
        sweep_every: Some(1),
        sweep_deadline: SimDuration::from_secs(2),
        // With `resolve` off, no reconciliation runs: each replica keeps
        // exactly its own writes, and the cross-mode comparison pins the
        // detection/gossip planes alone (resolution timing is the one
        // RNG-sensitive part we deliberately keep out of the equality pin).
        rollback_resolve: resolve,
        ..Default::default()
    };
    // Fanout spanning the population makes delivery structurally complete
    // in both modes — the regime where exact set equality is guaranteed.
    cfg.gossip.fanout = n;
    cfg.gossip.ttl = 4;
    cfg.gossip.mode = mode;
    cfg.gossip.eager_fanout = 1;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    let writers = 4.min(n as u32);
    for wave in 0..waves {
        for w in 0..writers {
            eng.with_node(NodeId(w), |p, ctx| {
                p.local_write(OBJ, 1 + wave as i64, UpdatePayload::none(), ctx);
            });
        }
        // Long gaps: each wave's sweeps, pulls and fetches settle before
        // the next wave, so both modes converge wave by wave.
        eng.run_for(SimDuration::from_secs(5));
    }
    eng.run_until_quiescent(SimTime::from_secs(600));
    let nodes = (0..n as u32)
        .map(|i| {
            let node = eng.node(NodeId(i));
            let rep = node.report(OBJ);
            let level_ppm = (node.level(OBJ).value() * 1e6).round() as u64;
            (rep.meta, rep.updates, level_ppm, node.gossip_seen(OBJ))
        })
        .collect();
    Outcome {
        nodes,
        gossip_msgs: eng.stats().messages(MsgClass::Gossip),
        gossip_bytes: eng.stats().payload_bytes(MsgClass::Gossip),
    }
}

/// ISSUE acceptance pin: on fixed seeds, eager and lazy runs end with the
/// same sanctioned updates and the same final replicas at every node —
/// and lazy mode pays strictly fewer gossip bytes for it.
#[test]
fn eager_and_lazy_converge_identically_on_fixed_seeds() {
    for seed in [7u64, 21, 42] {
        let eager = run_mode(GossipMode::Eager, 12, seed, 3);
        let lazy = run_mode(GossipMode::Lazy, 12, seed, 3);
        assert_eq!(eager.nodes, lazy.nodes, "seed {seed}: replicas or rumor sets diverged");
        assert!(
            lazy.gossip_bytes < eager.gossip_bytes,
            "seed {seed}: lazy gossip bytes {} not below eager {}",
            lazy.gossip_bytes,
            eager.gossip_bytes
        );
    }
}

/// The equivalence pin above is not vacuous: the same scenario with
/// resolutions enabled actually moves state in lazy mode — writers end
/// holding more than their own updates, at level 1.0, with sweeps on the
/// wire — so lazy digests/pulls feed real detection work, not a no-op run.
#[test]
fn sweep_driven_runs_actually_converge() {
    let out = run_scenario(GossipMode::Lazy, 12, 42, 3, true);
    let own = 1 + 2 + 3; // each writer's own deltas across the three waves
    let writers = &out.nodes[..4];
    for (i, w) in writers.iter().enumerate() {
        assert!(w.0 > own, "writer {i} never merged remote updates (meta {})", w.0);
        assert!(w.1 > 3, "writer {i} holds only its own updates");
        assert_eq!(w.2, 1_000_000, "writer {i} not at level 1.0");
    }
    assert!(out.gossip_msgs > 0, "sweeps must actually run");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Satellite pin: lazy push/pull delivers the exact rumor set eager
    /// flooding delivers, per node, on loss-free `SimEngine` runs over
    /// random deployment sizes, topologies and seeds.
    #[test]
    fn lazy_delivers_the_exact_rumor_set_eager_delivers(
        n in 4usize..10,
        seed in 0u64..1000,
    ) {
        let eager = run_mode(GossipMode::Eager, n, seed, 2);
        let lazy = run_mode(GossipMode::Lazy, n, seed, 2);
        for (i, (e, l)) in eager.nodes.iter().zip(&lazy.nodes).enumerate() {
            prop_assert_eq!(&e.3, &l.3, "node {} delivered a different rumor set", i);
        }
    }
}
