//! Compact ↔ full resolution-plane equivalence on the deterministic
//! engine (the PR-8 wire-compaction acceptance pins).
//!
//! The compact wire forms change *what bytes* the resolution plane ships
//! — `VvDelta` collect answers against the initiator's probe summary,
//! reference deltas in `Inform` — never what the protocol concludes.
//! Three guarantees pinned here, all on loss-free `SimEngine` runs:
//!
//! 1. **Reference identity**: on fixed seeds, compact and full runs end
//!    with bit-identical replicas (same extended version vectors, same
//!    meta, same levels) and byte-identical resolution logs at every
//!    node — the delta path reconstructs exactly the vectors the full
//!    path ships, so `choose_reference` picks the same winner.
//! 2. **Compaction**: the compact run pays strictly fewer
//!    resolution-control bytes for it, at the same message count.
//! 3. **Chunking**: `max_fetch_updates` ∈ {1, 7, 64, ∞} all converge to
//!    the same final replicas — a chunked backlog reassembles the same
//!    update set one unbounded reply would ship. (The per-frame bound
//!    itself is pinned in-crate, where reply frames can be intercepted.)

use idea_core::resolution::ResolutionRecord;
use idea_core::{IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, SimTime, UpdatePayload};
use idea_vv::ExtendedVersionVector;
use proptest::prelude::*;

const OBJ: ObjectId = ObjectId(1);

/// Per-node observable state: `(meta, updates, level ppm, full extended
/// version vector)`.
type NodeState = (i64, usize, u64, ExtendedVersionVector);

/// Everything observable a run leaves behind: per node [`NodeState`],
/// every node's resolution log, and the resolution-plane traffic it
/// cost.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    nodes: Vec<NodeState>,
    logs: Vec<Vec<ResolutionRecord>>,
    ctl_msgs: u64,
    ctl_bytes: u64,
    transfer_bytes: u64,
}

impl Outcome {
    /// The state-only view: everything except the byte counters, which
    /// compaction is *supposed* to change.
    fn state(&self) -> (&Vec<NodeState>, &Vec<Vec<ResolutionRecord>>) {
        (&self.nodes, &self.logs)
    }
}

fn run(compact: bool, max_fetch: Option<usize>, n: usize, seed: u64, waves: u32) -> Outcome {
    let cfg = IdeaConfig {
        // Sweep-driven rollbacks trigger resolution rounds (the same
        // recipe the gossip-equivalence scenario uses), and an explicit
        // demand after the last wave adds an active two-phase round.
        sweep_every: Some(1),
        sweep_deadline: SimDuration::from_secs(2),
        rollback_resolve: true,
        compact_resolution: compact,
        max_fetch_updates: max_fetch,
        ..Default::default()
    };
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    let writers = 4.min(n as u32);
    // Warm up so the top layer forms, then pile on conflicting waves —
    // every writer writes concurrently, so detection finds divergence and
    // rollback resolution picks references round after round.
    for wave in 0..waves {
        for w in 0..writers {
            eng.with_node(NodeId(w), |p, ctx| {
                p.local_write(OBJ, 1 + wave as i64, UpdatePayload::none(), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(5));
    }
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_until_quiescent(SimTime::from_secs(600));
    let nodes = (0..n as u32)
        .map(|i| {
            let node = eng.node(NodeId(i));
            let rep = node.report(OBJ);
            let level_ppm = (node.level(OBJ).value() * 1e6).round() as u64;
            let evv = node.peek(OBJ).expect("hosted replica").version.clone();
            (rep.meta, rep.updates, level_ppm, evv)
        })
        .collect();
    let logs = (0..n as u32).map(|i| eng.node(NodeId(i)).resolution_log()).collect();
    Outcome {
        nodes,
        logs,
        ctl_msgs: eng.stats().messages(MsgClass::ResolutionCtl),
        ctl_bytes: eng.stats().payload_bytes(MsgClass::ResolutionCtl),
        transfer_bytes: eng.stats().payload_bytes(MsgClass::Transfer),
    }
}

/// ISSUE acceptance pin: on fixed seeds, delta collect chooses the
/// bit-identical reference (byte-identical resolution logs, replica for
/// replica) and converges to the identical final state as full-EVV
/// collect — at the same resolution message count, for strictly fewer
/// resolution-control bytes.
#[test]
fn compact_and_full_wire_converge_identically_on_fixed_seeds() {
    // Ten waves build real per-writer histories: the full wire's collect
    // replies ship every issue timestamp, the compact wire's deltas ship
    // only the divergence, so the byte gap is structural, not noise. (On
    // shallow histories the probe summary can outweigh the delta saving —
    // compaction is a deep-history optimisation, which is the regime the
    // burst benchmark pins.)
    for seed in [7u64, 21, 42] {
        let full = run(false, None, 10, seed, 10);
        let compact = run(true, None, 10, seed, 10);
        assert_eq!(full.state(), compact.state(), "seed {seed}: outcomes diverged");
        assert!(
            full.logs.iter().map(Vec::len).sum::<usize>() > 0,
            "seed {seed}: no resolutions ran — the equality pin is vacuous"
        );
        assert_eq!(
            full.ctl_msgs, compact.ctl_msgs,
            "seed {seed}: compaction must not change the message count"
        );
        assert!(
            compact.ctl_bytes < full.ctl_bytes,
            "seed {seed}: compact ctl bytes {} not below full {}",
            compact.ctl_bytes,
            full.ctl_bytes
        );
    }
}

/// Chunking satellite pin: under every `max_fetch_updates` bound the
/// protocol still converges — all replicas that hold the object agree on
/// one final state at level 1.0, with the same total meta and update
/// count as the unbounded run. (The extra continuation round trips shift
/// resolution timing, so *which* equally-valid reference wins can differ
/// between bounds; the frame-exact reassembly pin lives in-crate where
/// reply frames can be intercepted.)
#[test]
fn every_fetch_chunk_bound_converges() {
    for seed in [7u64, 42] {
        let unbounded = run(true, None, 10, seed, 10);
        let reference = &unbounded.nodes[0];
        assert!(reference.1 > 0, "seed {seed}: writers ended empty — vacuous scenario");
        for cap in [1usize, 7, 64] {
            let chunked = run(true, Some(cap), 10, seed, 10);
            let first = &chunked.nodes[0];
            assert_eq!(first.2, 1_000_000, "seed {seed}: cap {cap} left node 0 unsettled");
            for (i, node) in chunked.nodes.iter().enumerate() {
                if node.1 == 0 {
                    continue; // never hosted an update; nothing to reconcile
                }
                assert_eq!(
                    node, first,
                    "seed {seed}: cap {cap} left node {i} diverged from node 0"
                );
            }
            assert_eq!(
                (first.0, first.1),
                (reference.0, reference.1),
                "seed {seed}: cap {cap} converged to a different meta/update total"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Satellite pin: over random deployment sizes, divergence depths and
    /// seeds, full-EVV and delta collect agree on the reference and the
    /// post-resolution state — not just on the three hand-picked seeds
    /// above. (No byte assertion here: on shallow histories the probe
    /// summary legitimately outweighs the delta saving.)
    #[test]
    fn delta_collect_matches_full_collect(
        n in 5usize..11,
        waves in 2u32..6,
        seed in 0u64..1000,
    ) {
        let full = run(false, None, n, seed, waves);
        let compact = run(true, None, n, seed, waves);
        prop_assert_eq!(full.state(), compact.state());
    }
}
