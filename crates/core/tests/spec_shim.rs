//! Compatibility pin for the Table-1 shim: every [`DeveloperApi`] setter
//! and the typed [`ConsistencySpec`] builder must produce identical node
//! state — the shim is a renaming, not a second implementation. Exhaustive
//! over the three resolution-policy codes and the edges of the weight /
//! hint / metric domains.

use idea_core::client::ConsistencySpec;
use idea_core::{DeveloperApi, IdeaConfig, IdeaNode, ResolutionPolicy};
use idea_types::{NodeId, ObjectId, SimDuration};

const OBJ: ObjectId = ObjectId(1);

fn node() -> IdeaNode {
    IdeaNode::new(NodeId(0), IdeaConfig::default(), &[OBJ])
}

/// The full externally observable configuration state of a node.
fn observe(n: &IdeaNode) -> (String, String, ResolutionPolicy, u64, Option<SimDuration>) {
    (
        format!("{:?}", n.quantifier().weights()),
        format!("{:?}", n.quantifier().bounds()),
        n.config().policy,
        (n.hint().floor().value() * 1e9).round() as u64,
        n.config().background_period,
    )
}

#[test]
fn resolution_codes_are_exhaustively_equivalent() {
    for code in 1..=3u8 {
        let mut via_shim = node();
        via_shim.set_resolution(code).unwrap();
        let mut via_spec = node();
        ConsistencySpec::builder()
            .resolution_code(code)
            .build()
            .unwrap()
            .apply_to(&mut via_spec)
            .unwrap();
        assert_eq!(observe(&via_shim), observe(&via_spec), "code {code}");
        // And the typed-name route agrees with the integer route.
        let mut via_name = node();
        ConsistencySpec::builder()
            .resolution(ResolutionPolicy::from_code(code).unwrap())
            .build()
            .unwrap()
            .apply_to(&mut via_name)
            .unwrap();
        assert_eq!(observe(&via_spec), observe(&via_name), "code {code}");
    }
    // Out-of-domain codes reject identically on both surfaces.
    for code in [0u8, 4, 255] {
        assert!(node().set_resolution(code).is_err());
        assert!(ConsistencySpec::builder().resolution_code(code).build().is_err());
    }
}

#[test]
fn weights_agree_across_the_domain_edges() {
    // Edge-of-domain weights: single-member, zero-member, tiny, large.
    let cases = [
        (0.4, 0.0, 0.6),
        (1.0, 0.0, 0.0),
        (0.0, 1.0, 0.0),
        (0.0, 0.0, 1.0),
        (1e-9, 1e-9, 1e-9),
        (1e9, 0.0, 1e-9),
        (1.0, 1.0, 1.0),
    ];
    for (a, b, c) in cases {
        let mut via_shim = node();
        via_shim.set_weight(a, b, c).unwrap();
        let mut via_spec = node();
        ConsistencySpec::builder()
            .weights(a, b, c)
            .build()
            .unwrap()
            .apply_to(&mut via_spec)
            .unwrap();
        assert_eq!(observe(&via_shim), observe(&via_spec), "weights <{a}, {b}, {c}>");
    }
    // Rejections match too.
    for (a, b, c) in [(-1.0, 1.0, 1.0), (0.0, 0.0, 0.0), (1.0, -0.1, 0.0)] {
        assert!(node().set_weight(a, b, c).is_err(), "<{a}, {b}, {c}>");
        assert!(ConsistencySpec::builder().weights(a, b, c).build().is_err(), "<{a}, {b}, {c}>");
    }
}

#[test]
fn hints_agree_across_the_domain_edges() {
    for h in [0.0, 1e-9, 0.5, 0.92, 1.0 - 1e-9, 1.0] {
        let mut via_shim = node();
        via_shim.set_hint(h).unwrap();
        let mut via_spec = node();
        ConsistencySpec::builder().hint(h).build().unwrap().apply_to(&mut via_spec).unwrap();
        assert_eq!(observe(&via_shim), observe(&via_spec), "hint {h}");
    }
    for h in [-0.1, 1.1, f64::INFINITY] {
        assert!(node().set_hint(h).is_err(), "hint {h}");
        assert!(ConsistencySpec::builder().hint(h).build().is_err(), "hint {h}");
    }
}

#[test]
fn metric_bounds_agree() {
    let cases = [
        (5.0, 6.0, SimDuration::from_secs(7)),
        (1e-9, 1e9, SimDuration::from_micros(1)),
        (10.0, 10.0, SimDuration::from_secs(10)),
    ];
    for (a, b, c) in cases {
        let mut via_shim = node();
        via_shim.set_consistency_metric(a, b, c).unwrap();
        let mut via_spec = node();
        ConsistencySpec::builder()
            .metric(a, b, c)
            .build()
            .unwrap()
            .apply_to(&mut via_spec)
            .unwrap();
        assert_eq!(observe(&via_shim), observe(&via_spec), "metric <{a}, {b}, {c:?}>");
    }
    for (a, b, c) in [
        (0.0, 1.0, SimDuration::from_secs(1)),
        (1.0, 0.0, SimDuration::from_secs(1)),
        (1.0, 1.0, SimDuration::ZERO),
        (-2.0, 1.0, SimDuration::from_secs(1)),
    ] {
        assert!(node().set_consistency_metric(a, b, c).is_err());
        assert!(ConsistencySpec::builder().metric(a, b, c).build().is_err());
    }
}

#[test]
fn background_freq_agrees() {
    for period in [Some(SimDuration::from_secs(20)), Some(SimDuration::from_micros(1)), None] {
        let mut via_shim = node();
        via_shim.set_background_freq(period).unwrap();
        let mut via_spec = node();
        let b = ConsistencySpec::builder();
        match period {
            Some(p) => b.background_every(p),
            None => b.no_background(),
        }
        .build()
        .unwrap()
        .apply_to(&mut via_spec)
        .unwrap();
        assert_eq!(observe(&via_shim), observe(&via_spec), "period {period:?}");
    }
    assert!(node().set_background_freq(Some(SimDuration::ZERO)).is_err());
    assert!(ConsistencySpec::builder().background_every(SimDuration::ZERO).build().is_err());
}

#[test]
fn a_combined_spec_equals_the_setter_sequence() {
    let mut via_shim = node();
    via_shim.set_consistency_metric(1_000.0, 40.0, SimDuration::from_secs(60)).unwrap();
    via_shim.set_weight(0.4, 0.0, 0.6).unwrap();
    via_shim.set_resolution(3).unwrap();
    via_shim.set_hint(0.92).unwrap();
    via_shim.set_background_freq(Some(SimDuration::from_secs(20))).unwrap();

    let mut via_spec = node();
    ConsistencySpec::builder()
        .metric(1_000.0, 40.0, SimDuration::from_secs(60))
        .weights(0.4, 0.0, 0.6)
        .resolution(ResolutionPolicy::PriorityWins)
        .hint(0.92)
        .background_every(SimDuration::from_secs(20))
        .build()
        .unwrap()
        .apply_to(&mut via_spec)
        .unwrap();

    assert_eq!(observe(&via_shim), observe(&via_spec));
}
