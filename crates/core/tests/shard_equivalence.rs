//! Shard-routing invariants: for *random* workloads, runs over `S ∈ {1, 2,
//! 4, 8}` store shards under the same engine seed are indistinguishable —
//! identical per-object snapshots (meta, update counts, writer counters),
//! identical consistency levels, and identical detection traffic. Sharding
//! is an execution-structure choice, never a semantic one.

use idea_core::{IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, UpdatePayload};
use proptest::prelude::*;

const NODES: usize = 6;
const OBJECTS: u64 = 6;

/// One externally injected stimulus.
#[derive(Debug, Clone)]
struct Op {
    node: u32,
    object: u64,
    delta: i64,
    /// Virtual time to advance after the op, in milliseconds.
    gap_ms: u64,
    /// Read instead of write.
    read: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NODES as u32, 0..OBJECTS, 1..5i64, 50..1500u64, 0..10u8).prop_map(
        |(node, object, delta, gap_ms, r)| Op { node, object, delta, gap_ms, read: r < 2 },
    )
}

/// Per-(node, object) observation: meta, updates, level (ppm), counters.
type ReplicaObs = (i64, usize, u64, Vec<(u32, u64)>);

/// Everything externally observable about a finished run.
#[derive(Debug, PartialEq)]
struct Outcome {
    replicas: Vec<ReplicaObs>,
    detect_msgs: u64,
    total_msgs: u64,
    resolutions: u64,
}

fn run(ops: &[Op], seed: u64, shards: usize) -> Outcome {
    let objects: Vec<ObjectId> = (0..OBJECTS).map(ObjectId).collect();
    let mut cfg = IdeaConfig::whiteboard(0.9);
    cfg.store_shards = shards;
    let nodes: Vec<IdeaNode> =
        (0..NODES).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(NODES, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    for op in ops {
        let obj = ObjectId(op.object);
        eng.with_node(NodeId(op.node), |p, ctx| {
            if op.read {
                let _ = p.read(obj, ctx);
            } else {
                p.local_write(obj, op.delta, UpdatePayload::none(), ctx);
            }
        });
        eng.run_for(SimDuration::from_millis(op.gap_ms));
    }
    eng.run_for(SimDuration::from_secs(10));

    let mut replicas = Vec::new();
    let mut resolutions = 0;
    for i in 0..NODES as u32 {
        let node = eng.node(NodeId(i));
        for &obj in &objects {
            let (meta, updates, counters) = match node.replica(obj) {
                Ok(r) => (
                    r.meta(),
                    r.len(),
                    r.version()
                        .counters()
                        .iter()
                        .map(|(w, c)| (w.0, c))
                        .collect::<Vec<(u32, u64)>>(),
                ),
                Err(_) => (0, 0, Vec::new()),
            };
            let level = (node.level(obj).value() * 1e6).round() as u64;
            replicas.push((meta, updates, level, counters));
        }
        resolutions += node.report(objects[0]).resolutions_initiated;
    }
    Outcome {
        replicas,
        detect_msgs: eng.stats().messages(MsgClass::Detect),
        total_msgs: eng.stats().total_messages(),
        resolutions,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn any_workload_is_shard_count_invariant(
        ops in proptest::collection::vec(op_strategy(), 8..40),
        seed in 0u64..1_000,
    ) {
        let reference = run(&ops, seed, 1);
        // The run must have done *something* or the invariant is vacuous.
        prop_assert!(reference.total_msgs > 0);
        for shards in [2usize, 4, 8] {
            let sharded = run(&ops, seed, shards);
            prop_assert_eq!(
                &reference, &sharded,
                "S={} diverged from the unsharded run", shards
            );
        }
    }
}
