//! Fixed-seed trace pins for the store-sharding refactor.
//!
//! The tuples below were captured at commit `8d9bef3` — the last commit
//! before the sharded store landed — by running these exact scenarios on
//! the deterministic engine. The refactor must reproduce them bit-for-bit:
//! routing every per-object operation through a shard handle is a
//! *structural* change, not a behavioural one.
//!
//! Re-captured when the gossip plane gained **sender exclusion** (a relay
//! no longer pushes a rumor back to the peer it arrived from): that
//! intentionally changes the seeded RNG draw sequence, so exact message
//! counts and resolution timing shift while convergence is preserved
//! (every node still agrees, level 1.0). The shard-count invariance these
//! tests primarily guard is unchanged.

use idea_core::{IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, UpdatePayload};

const OBJ_A: ObjectId = ObjectId(1);
const OBJ_B: ObjectId = ObjectId(7);

/// Everything a scenario run exposes to the outside world.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Per node: (meta, updates, level in ppm) for each object driven.
    nodes: Vec<(i64, usize, u64)>,
    detect_msgs: u64,
    gossip_msgs: u64,
    resolution_msgs: u64,
    total_msgs: u64,
    resolutions: u64,
}

fn level_ppm(node: &IdeaNode, obj: ObjectId) -> u64 {
    (node.level(obj).value() * 1e6).round() as u64
}

fn collect(eng: &SimEngine<IdeaNode>, n: usize, objects: &[ObjectId]) -> Trace {
    let mut nodes = Vec::new();
    for i in 0..n as u32 {
        for &obj in objects {
            let rep = eng.node(NodeId(i)).report(obj);
            nodes.push((rep.meta, rep.updates, level_ppm(eng.node(NodeId(i)), obj)));
        }
    }
    let s = eng.stats();
    Trace {
        nodes,
        detect_msgs: s.messages(MsgClass::Detect),
        gossip_msgs: s.messages(MsgClass::Gossip),
        resolution_msgs: s.messages(MsgClass::ResolutionCtl),
        total_msgs: s.total_messages(),
        resolutions: (0..n as u32)
            .map(|i| eng.node(NodeId(i)).report(objects[0]).resolutions_initiated)
            .sum(),
    }
}

fn write(eng: &mut SimEngine<IdeaNode>, node: u32, obj: ObjectId, delta: i64) {
    eng.with_node(NodeId(node), |p, ctx| {
        p.local_write(obj, delta, UpdatePayload::none(), ctx);
    });
}

/// The Formula-1 / whiteboard scenario: hint-driven resolution over two
/// objects, writes, a policy-triggered read, a demanded resolution.
fn formula1_scenario(shards: usize) -> Trace {
    let mut cfg = IdeaConfig::whiteboard(0.93);
    cfg.store_shards = shards;
    // These traces were pinned before the default gossip mode flipped to
    // lazy; the eager path stays available behind config exactly for them.
    cfg.gossip.mode = idea_overlay::GossipMode::Eager;
    let objects = [OBJ_A, OBJ_B];
    let n = 8;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, 42),
        SimConfig { seed: 42, ..Default::default() },
        nodes,
    );
    for _ in 0..2 {
        for w in 0..4u32 {
            write(&mut eng, w, OBJ_A, 1);
            write(&mut eng, w, OBJ_B, 2);
            eng.run_for(SimDuration::from_millis(500));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
    for wave in 0..4 {
        for w in 0..4u32 {
            write(&mut eng, w, OBJ_A, wave + 1);
            if w % 2 == 0 {
                write(&mut eng, w, OBJ_B, 5);
            }
        }
        eng.run_for(SimDuration::from_secs(3));
    }
    eng.with_node(NodeId(5), |p, ctx| {
        let _ = p.read(OBJ_A, ctx);
    });
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ_B, ctx));
    eng.run_for(SimDuration::from_secs(10));
    collect(&eng, n, &objects)
}

/// The detect-round scenario: default config plus sweeps and background
/// resolution over a single object (the §6.1 detection regime).
fn detect_round_scenario(shards: usize) -> Trace {
    let mut cfg = IdeaConfig {
        store_shards: shards,
        sweep_every: Some(2),
        sweep_deadline: SimDuration::from_secs(3),
        background_period: Some(SimDuration::from_secs(20)),
        ..Default::default()
    };
    // Pinned pre-flip: the eager flood these trace counts were captured on.
    cfg.gossip.mode = idea_overlay::GossipMode::Eager;
    let n = 10;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ_A])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, 11),
        SimConfig { seed: 11, ..Default::default() },
        nodes,
    );
    for _ in 0..2 {
        for w in 0..4u32 {
            write(&mut eng, w, OBJ_A, 1);
            eng.run_for(SimDuration::from_millis(500));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
    write(&mut eng, 8, OBJ_A, 50);
    for _ in 0..6 {
        for w in 0..4u32 {
            write(&mut eng, w, OBJ_A, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
    }
    eng.run_for(SimDuration::from_secs(15));
    collect(&eng, n, &[OBJ_A])
}

/// The Formula-1 trace captured at `8d9bef3` (pre-refactor `NodeStore`).
fn formula1_pin() -> Trace {
    let mut nodes = Vec::new();
    for _ in 0..4 {
        nodes.push((12, 6, 1_000_000));
        nodes.push((4, 2, 1_000_000));
    }
    for _ in 4..8 {
        nodes.push((0, 0, 1_000_000));
        nodes.push((0, 0, 1_000_000));
    }
    Trace {
        nodes,
        detect_msgs: 176,
        gossip_msgs: 569,
        resolution_msgs: 252,
        total_msgs: 1009,
        resolutions: 10,
    }
}

/// The detect-round trace captured at `8d9bef3`.
fn detect_pin() -> Trace {
    let mut nodes = vec![(62, 13, 1_000_000); 4];
    nodes.extend(vec![(0, 0, 1_000_000); 4]);
    nodes.push((50, 1, 1_000_000));
    nodes.push((0, 0, 1_000_000));
    Trace {
        nodes,
        detect_msgs: 164,
        gossip_msgs: 924,
        resolution_msgs: 92,
        total_msgs: 1197,
        resolutions: 5,
    }
}

#[test]
fn single_shard_reproduces_pre_refactor_formula1_trace() {
    assert_eq!(formula1_scenario(1), formula1_pin());
}

#[test]
fn single_shard_reproduces_pre_refactor_detect_trace() {
    assert_eq!(detect_round_scenario(1), detect_pin());
}

/// Sharding must be invisible to the protocol: the same scenarios produce
/// the identical trace for every shard count. (The Formula-1 scenario
/// spreads two objects across shards; the detect scenario exercises
/// background-resolution and sweep timers through the shard routing.)
#[test]
fn sharded_runs_reproduce_the_same_traces() {
    for shards in [2, 4, 8] {
        assert_eq!(formula1_scenario(shards), formula1_pin(), "formula1 S={shards}");
        assert_eq!(detect_round_scenario(shards), detect_pin(), "detect S={shards}");
    }
}
