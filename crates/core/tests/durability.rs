//! Crash-recovery and rejoin-by-delta pins on the deterministic engine.
//!
//! Four guarantees, all on fixed seeds:
//!
//! 1. **Recovery fidelity**: killing a node mid-workload at any of several
//!    points and recovering from its WAL yields bit-identical replica
//!    content (`state_hash`) to the in-memory state at the kill.
//! 2. **Rejoin convergence**: a crashed-and-recovered node re-enters the
//!    deployment via [`IdeaNode::rejoin_from`] and the whole deployment
//!    converges to the same `state_hash` as an uninterrupted reference
//!    run of the identical workload.
//! 3. **Rejoin is a delta**: the recovered node resyncs by fetching only
//!    the suffix beyond its recovered counters — measurably fewer
//!    transfer-class bytes than a fresh (empty-store) node joining the
//!    same workload.
//! 4. **Durability is a pure side effect**: Off, Async and Sync runs of
//!    the same scenario produce identical traces — message counts and
//!    final replica content — so `DurabilityConfig::off()` (the default)
//!    keeps every pinned fixed-seed trace bit-identical.

use idea_core::{DurabilityConfig, IdeaConfig, IdeaNode};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, SimTime, UpdatePayload};

const OBJ: ObjectId = ObjectId(5);
const N: usize = 4;
const CRASHED: NodeId = NodeId(2);
const SEED: u64 = 42;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("idea-core-dur-{}-{tag}", std::process::id()))
}

fn cfg_with(durability: DurabilityConfig) -> IdeaConfig {
    IdeaConfig { durability, ..Default::default() }
}

fn mk_engine(cfg: &IdeaConfig) -> SimEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> =
        (0..N).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    SimEngine::new(
        Topology::planetlab(N, SEED),
        SimConfig { seed: SEED, ..Default::default() },
        nodes,
    )
}

fn write(eng: &mut SimEngine<IdeaNode>, node: u32, delta: i64) {
    eng.with_node(NodeId(node), |p, ctx| {
        p.local_write(OBJ, delta, UpdatePayload::none(), ctx);
    });
}

fn resolve_and_settle(eng: &mut SimEngine<IdeaNode>) {
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(5));
    let q = eng.run_until_quiescent(SimTime::from_secs(3_600));
    assert!(q.reached(), "settle exhausted its event budget: {q:?}");
}

/// Phase 1: every node writes, then a demanded resolution converges the
/// deployment on the winner's sanctioned state.
fn phase1(eng: &mut SimEngine<IdeaNode>) {
    for wave in 0..2 {
        for w in 0..N as u32 {
            write(eng, w, 1 + wave);
        }
        eng.run_for(SimDuration::from_millis(500));
    }
    resolve_and_settle(eng);
}

/// Phase 2 writes: only nodes 0 and 1 (the crashed node stays silent, so
/// the reference and crash runs drive identical external stimuli).
fn phase2_writes(eng: &mut SimEngine<IdeaNode>) {
    for wave in 0..2 {
        for w in 0..2u32 {
            write(eng, w, 10 + wave);
        }
        eng.run_for(SimDuration::from_millis(500));
    }
}

fn all_hashes(eng: &SimEngine<IdeaNode>) -> Vec<u64> {
    (0..N as u32).map(|i| eng.node(NodeId(i)).state_hash()).collect()
}

/// The uninterrupted reference run: phase 1, phase 2, final resolution.
/// Returns the converged per-node hashes.
fn reference_run(cfg: &IdeaConfig) -> Vec<u64> {
    let mut eng = mk_engine(cfg);
    phase1(&mut eng);
    phase2_writes(&mut eng);
    resolve_and_settle(&mut eng);
    all_hashes(&eng)
}

/// Cuts the crashed node off in both directions (messages to a dead node
/// vanish — the crash model) or heals it back.
fn set_down(eng: &mut SimEngine<IdeaNode>, down: bool) {
    for i in 0..N as u32 {
        let other = NodeId(i);
        if other == CRASHED {
            continue;
        }
        if down {
            eng.partition(other, CRASHED);
            eng.partition(CRASHED, other);
        } else {
            eng.heal(other, CRASHED);
            eng.heal(CRASHED, other);
        }
    }
}

/// The crash run: phase 1, kill + recover `CRASHED`, phase 2 while it is
/// down, then rejoin and a final resolution. Returns the converged
/// per-node hashes and the transfer-class bytes the rejoin cost.
fn crash_run(cfg: &IdeaConfig, fresh_rejoin: bool) -> (Vec<u64>, u64) {
    let mut eng = mk_engine(cfg);
    phase1(&mut eng);

    // Kill: the in-memory node drops; under Sync every acknowledged
    // mutation is already on disk, so recovery is bit-identical.
    let h_at_kill = eng.node(CRASHED).state_hash();
    let restarted = if fresh_rejoin {
        // Baseline joiner: same identity, empty store (full state transfer).
        IdeaNode::new(CRASHED, cfg.clone(), &[OBJ])
    } else {
        let rec = IdeaNode::recover(CRASHED, cfg.clone(), &[OBJ]).expect("valid config");
        assert_eq!(rec.state_hash(), h_at_kill, "recovery must be bit-identical");
        rec
    };
    *eng.node_mut(CRASHED) = restarted;

    // Downtime: the deployment keeps working without the crashed node.
    set_down(&mut eng, true);
    phase2_writes(&mut eng);
    eng.run_for(SimDuration::from_secs(2));

    // Restart + rejoin: delta fetch from node 0, then detection rounds.
    set_down(&mut eng, false);
    let bytes_before = eng.stats().payload_bytes(MsgClass::Transfer);
    eng.with_node(CRASHED, |p, ctx| p.rejoin_from(NodeId(0), ctx));
    eng.run_for(SimDuration::from_secs(5));
    let rejoin_bytes = eng.stats().payload_bytes(MsgClass::Transfer) - bytes_before;

    resolve_and_settle(&mut eng);
    (all_hashes(&eng), rejoin_bytes)
}

#[test]
fn crash_restart_converges_to_the_uninterrupted_run() {
    let dir = tmp_dir("converge");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));

    let reference = reference_run(&cfg);
    assert!(
        reference.iter().all(|&h| h == reference[0]),
        "reference run must converge: {reference:?}"
    );

    // Fresh directory for the crash run — same node ids, same files.
    let _ = std::fs::remove_dir_all(&dir);
    let (after_crash, rejoin_bytes) = crash_run(&cfg, false);
    assert!(
        after_crash.iter().all(|&h| h == after_crash[0]),
        "crash run must converge: {after_crash:?}"
    );
    assert_eq!(
        after_crash[0], reference[0],
        "crash + recovery + rejoin must land on the uninterrupted run's state"
    );
    assert!(rejoin_bytes > 0, "the rejoin actually fetched the missed suffix");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejoin_by_delta_ships_fewer_bytes_than_a_full_transfer() {
    let dir = tmp_dir("delta");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));

    let (_, delta_bytes) = crash_run(&cfg, false);
    let _ = std::fs::remove_dir_all(&dir);
    let (_, full_bytes) = crash_run(&cfg, true);

    assert!(delta_bytes > 0, "recovered node still missed the downtime writes");
    assert!(
        delta_bytes < full_bytes,
        "rejoin-by-delta ({delta_bytes} B) must undercut a full transfer ({full_bytes} B)"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill the node at several mid-workload points — after each wave of the
/// interleaved write/propagation schedule — and pin recovery to the
/// in-memory state at exactly that point.
#[test]
fn recovery_is_bit_identical_at_every_kill_point() {
    for kill_after in [1usize, 2, 3, 4] {
        let dir = tmp_dir(&format!("kill-{kill_after}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));

        let mut eng = mk_engine(&cfg);
        for wave in 0..kill_after {
            for w in 0..N as u32 {
                write(&mut eng, w, wave as i64 + 1);
            }
            eng.run_for(SimDuration::from_millis(700));
            if wave == 1 {
                // A mid-schedule resolution exercises the reference
                // transition records (DropExtras/ResumeSeq) too.
                resolve_and_settle(&mut eng);
            }
        }

        let h_at_kill = eng.node(CRASHED).state_hash();
        drop(eng); // the crash: all in-memory state gone
        let rec = IdeaNode::recover(CRASHED, cfg.clone(), &[OBJ]).expect("valid config");
        assert_eq!(
            rec.state_hash(),
            h_at_kill,
            "kill point {kill_after}: recovered state diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Kill the node at **every** engine step of an in-flight two-phase
/// resolution round and pin recovery to the in-memory state at exactly
/// that step. The round's mid-flight mutations — collect snapshots,
/// reference reconciliation, extra-dropping — all hit the WAL before they
/// hit memory under `Sync`, so there must be no step, however deep inside
/// the round, where a crash loses or invents state.
#[test]
fn recovery_is_bit_identical_at_every_resolution_kill_point() {
    // Reference run: count the engine steps the demanded round keeps the
    // initiator resolving (the kill window this sweep walks).
    let dir = tmp_dir("res-kill-ref");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));
    let total = {
        let mut eng = mk_engine(&cfg);
        phase1(&mut eng);
        eng.with_node(NodeId(1), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        let mut steps = 0u32;
        while eng.node(NodeId(1)).is_resolving(OBJ) && eng.step() {
            steps += 1;
        }
        steps
    };
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(total >= 8, "the round ended suspiciously fast ({total} steps)");

    // Walk every step of the window (strided only if the round is huge,
    // keeping ~50 kill points); the fixed seed makes each run's prefix
    // identical to the reference, so step k is the same event every time.
    let stride = (total / 50).max(1) as usize;
    for k in (0..=total).step_by(stride) {
        let dir = tmp_dir(&format!("res-kill-{k}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));
        let mut eng = mk_engine(&cfg);
        phase1(&mut eng);
        eng.with_node(NodeId(1), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        for _ in 0..k {
            assert!(eng.step(), "kill point {k} beyond the round's events");
        }
        let h_at_kill = eng.node(CRASHED).state_hash();
        drop(eng); // the crash: all in-memory state gone
        let rec = IdeaNode::recover(CRASHED, cfg.clone(), &[OBJ]).expect("valid config");
        assert_eq!(
            rec.state_hash(),
            h_at_kill,
            "kill at step {k}/{total} of the in-flight round: recovered state diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Off, Async and Sync runs of the same scenario are indistinguishable on
/// the wire and in final content — the WAL is a pure side effect, so the
/// default (`off`) keeps every pinned fixed-seed trace bit-identical.
#[test]
fn durability_mode_does_not_perturb_the_protocol() {
    let run = |durability: DurabilityConfig| {
        let cfg = cfg_with(durability);
        let mut eng = mk_engine(&cfg);
        phase1(&mut eng);
        phase2_writes(&mut eng);
        resolve_and_settle(&mut eng);
        let msgs: Vec<u64> = MsgClass::ALL.iter().map(|&c| eng.stats().messages(c)).collect();
        (all_hashes(&eng), msgs, eng.stats().total_messages())
    };

    let off = run(DurabilityConfig::off());
    let dir_a = tmp_dir("mode-async");
    let dir_s = tmp_dir("mode-sync");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_s);
    let buffered = run(DurabilityConfig::buffered(dir_a.clone()));
    let sync = run(DurabilityConfig::sync(dir_s.clone()));

    assert_eq!(off, buffered, "Async durability changed the trace");
    assert_eq!(off, sync, "Sync durability changed the trace");
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_s).unwrap();
}

/// A clean shutdown flushes a final snapshot, so the next restart replays
/// an empty tail; the WAL then re-grows from new work only.
#[test]
fn flush_leaves_an_empty_tail_and_recovers() {
    let dir = tmp_dir("flush");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(DurabilityConfig::sync(dir.clone()));

    let mut eng = mk_engine(&cfg);
    phase1(&mut eng);
    let h = eng.node(CRASHED).state_hash();
    eng.node_mut(CRASHED).flush_durability();

    let shards = cfg.store_shards as u32;
    for s in 0..shards {
        let r = idea_wal::ShardWal::load(&cfg.durability, CRASHED, s).unwrap();
        assert!(r.tail.is_empty(), "shard {s}: tail not empty after flush");
        assert_eq!(r.torn_bytes, 0, "shard {s}: torn bytes after clean flush");
    }
    let rec = IdeaNode::recover(CRASHED, cfg.clone(), &[OBJ]).expect("valid config");
    assert_eq!(rec.state_hash(), h);
    std::fs::remove_dir_all(&dir).unwrap();
}
