//! Formula 1: collapsing the TACT triple to a single consistency level.
//!
//! §4.4.1 of the paper:
//!
//! ```text
//! Consistency = (Max_num   − num_error)   / Max_num   × num_weight
//!             + (Max_order − order_error) / Max_order × order_weight
//!             + (Max_stale − staleness)   / Max_stale × stale_weight
//! ```
//!
//! IDEA "predefines a maximum value for each member of the triple" (errors
//! above the maximum saturate) and "gets input from users and sets weight
//! for the three members". Weights are normalised so the level lands in
//! `[0, 1]`; a metric can be switched off by giving it weight 0 (paper
//! example: `weight<0.4, 0, 0.6>`).

use idea_types::{ConsistencyLevel, ErrorTriple, SimDuration};
use serde::{Deserialize, Serialize};

/// Weights of the three triple members. Need not sum to one — the
/// quantifier normalises — but must be non-negative and not all zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of the numerical error.
    pub numerical: f64,
    /// Weight of the order error.
    pub order: f64,
    /// Weight of staleness.
    pub staleness: f64,
}

impl Weights {
    /// Equal thirds — the paper's "treat the three members equally".
    pub const EQUAL: Weights = Weights { numerical: 1.0, order: 1.0, staleness: 1.0 };

    /// White-board preset from §5.1: order preservation dominates
    /// ("such as 0.7 to order error and 0.1 to staleness").
    pub const WHITEBOARD: Weights = Weights { numerical: 0.2, order: 0.7, staleness: 0.1 };

    /// Builds weights, verifying the domain.
    ///
    /// # Panics
    /// Panics if any weight is negative, non-finite, or all are zero.
    pub fn new(numerical: f64, order: f64, staleness: f64) -> Self {
        let w = Weights { numerical, order, staleness };
        w.validate();
        w
    }

    fn validate(&self) {
        assert!(
            self.numerical >= 0.0 && self.order >= 0.0 && self.staleness >= 0.0,
            "weights must be non-negative"
        );
        assert!(
            self.numerical.is_finite() && self.order.is_finite() && self.staleness.is_finite(),
            "weights must be finite"
        );
        assert!(self.sum() > 0.0, "at least one weight must be positive");
    }

    fn sum(&self) -> f64 {
        self.numerical + self.order + self.staleness
    }

    /// The weights scaled to sum to one.
    pub fn normalized(&self) -> Weights {
        let s = self.sum();
        Weights {
            numerical: self.numerical / s,
            order: self.order / s,
            staleness: self.staleness / s,
        }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::EQUAL
    }
}

/// Saturation maxima for the three triple members (`set_consistency_metric`
/// in the Table-1 API: "cast applications to IDEA's consistency metric").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxBounds {
    /// Numerical error at (or beyond) which that member contributes zero.
    pub numerical: f64,
    /// Order error saturation point.
    pub order: f64,
    /// Staleness saturation point.
    pub staleness: SimDuration,
}

impl MaxBounds {
    /// The worked example of §4.4.1: "the maximum error for all three
    /// metrics are 10" (staleness in seconds there).
    pub const PAPER_EXAMPLE: MaxBounds =
        MaxBounds { numerical: 10.0, order: 10.0, staleness: SimDuration::from_secs(10) };

    /// Builds bounds, verifying the domain.
    ///
    /// # Panics
    /// Panics on non-positive numerical/order maxima or zero staleness.
    pub fn new(numerical: f64, order: f64, staleness: SimDuration) -> Self {
        assert!(numerical > 0.0 && order > 0.0, "maxima must be positive");
        assert!(!staleness.is_zero(), "staleness maximum must be positive");
        MaxBounds { numerical, order, staleness }
    }
}

impl Default for MaxBounds {
    fn default() -> Self {
        // Calibrated for the paper's workload (4 writers, one update per
        // 5 s): levels hover in the 85–100 % band of Figures 7, 8 and 10.
        MaxBounds { numerical: 40.0, order: 40.0, staleness: SimDuration::from_secs(60) }
    }
}

/// The Formula-1 quantifier: weights + bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantifier {
    weights: Weights,
    bounds: MaxBounds,
}

impl Quantifier {
    /// Builds a quantifier (weights are normalised internally).
    pub fn new(weights: Weights, bounds: MaxBounds) -> Self {
        weights.validate();
        Quantifier { weights: weights.normalized(), bounds }
    }

    /// The normalised weights in force.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// The saturation bounds in force.
    pub fn bounds(&self) -> MaxBounds {
        self.bounds
    }

    /// Replaces the weights (the `set_weight` API).
    pub fn set_weights(&mut self, weights: Weights) {
        weights.validate();
        self.weights = weights.normalized();
    }

    /// Replaces the bounds (the `set_consistency_metric` API).
    pub fn set_bounds(&mut self, bounds: MaxBounds) {
        self.bounds = bounds;
    }

    /// Formula 1: the consistency level of a replica whose error triple
    /// against the reference state is `t`.
    pub fn level(&self, t: &ErrorTriple) -> ConsistencyLevel {
        let num = component(t.numerical, self.bounds.numerical);
        let ord = component(t.order, self.bounds.order);
        let stale =
            component(t.staleness.as_micros() as f64, self.bounds.staleness.as_micros() as f64);
        ConsistencyLevel::new(
            num * self.weights.numerical
                + ord * self.weights.order
                + stale * self.weights.staleness,
        )
    }
}

impl Default for Quantifier {
    fn default() -> Self {
        Quantifier::new(Weights::default(), MaxBounds::default())
    }
}

/// One member's contribution: `(max − min(err, max)) / max` ∈ `[0, 1]`.
fn component(err: f64, max: f64) -> f64 {
    if max <= 0.0 {
        return 1.0;
    }
    (max - err.min(max)).max(0.0) / max
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triple(num: f64, ord: f64, stale_s: u64) -> ErrorTriple {
        ErrorTriple::new(num, ord, SimDuration::from_secs(stale_s))
    }

    #[test]
    fn paper_figure4e_example() {
        // Replica a's triple is <3, 3, 2>, maxima all 10, equal weights:
        // level = ((10-3)/10 + (10-3)/10 + (10-2)/10) / 3 = 0.7333…
        let q = Quantifier::new(Weights::EQUAL, MaxBounds::PAPER_EXAMPLE);
        let level = q.level(&triple(3.0, 3.0, 2));
        assert!((level.value() - 0.7333).abs() < 1e-3, "got {level}");
        // Replica b is the reference: zero triple, perfect level.
        assert_eq!(q.level(&ErrorTriple::ZERO), ConsistencyLevel::PERFECT);
    }

    #[test]
    fn errors_saturate_at_bounds() {
        let q = Quantifier::new(Weights::EQUAL, MaxBounds::PAPER_EXAMPLE);
        let at_max = q.level(&triple(10.0, 10.0, 10));
        let beyond = q.level(&triple(1e9, 1e9, 10_000));
        assert_eq!(at_max, ConsistencyLevel::WORST);
        assert_eq!(beyond, ConsistencyLevel::WORST);
    }

    #[test]
    fn zero_weight_disables_metric() {
        // weight<0.4, 0, 0.6> from the paper: order error is ignored.
        let q = Quantifier::new(Weights::new(0.4, 0.0, 0.6), MaxBounds::PAPER_EXAMPLE);
        let a = q.level(&triple(0.0, 0.0, 0));
        let b = q.level(&triple(0.0, 10.0, 0));
        assert_eq!(a, b, "order error must not matter at weight 0");
    }

    #[test]
    fn weights_are_normalised() {
        let q = Quantifier::new(Weights::new(2.0, 2.0, 2.0), MaxBounds::PAPER_EXAMPLE);
        let w = q.weights();
        assert!((w.numerical - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.numerical + w.order + w.staleness - 1.0).abs() < 1e-12);
        // Same level as the unscaled equal weights.
        let q2 = Quantifier::new(Weights::EQUAL, MaxBounds::PAPER_EXAMPLE);
        let t = triple(3.0, 1.0, 4);
        assert_eq!(q.level(&t), q2.level(&t));
    }

    #[test]
    fn setters_replace_configuration() {
        let mut q = Quantifier::default();
        let t = triple(5.0, 0.0, 0);
        let before = q.level(&t);
        q.set_bounds(MaxBounds::new(5.0, 40.0, SimDuration::from_secs(60)));
        let after = q.level(&t);
        assert!(after < before, "tighter bound makes the same error worse");
        q.set_weights(Weights::new(0.0, 1.0, 0.0));
        assert_eq!(q.level(&t), ConsistencyLevel::PERFECT, "numerical now ignored");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = Weights::new(-0.1, 0.5, 0.6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_rejected() {
        let _ = Weights::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bounds_rejected() {
        let _ = MaxBounds::new(0.0, 1.0, SimDuration::from_secs(1));
    }

    #[test]
    fn whiteboard_preset_prioritises_order() {
        let q = Quantifier::new(Weights::WHITEBOARD, MaxBounds::PAPER_EXAMPLE);
        let order_hurt = q.level(&triple(0.0, 5.0, 0));
        let stale_hurt = q.level(&triple(0.0, 0.0, 5));
        assert!(
            order_hurt < stale_hurt,
            "same relative error must hurt more on the heavier metric"
        );
    }

    #[test]
    fn collapse_matches_hand_computed_formula() {
        // weight<0.4, 0.2, 0.4>, maxima <20, 10, 5 s>, triple <5, 4, 2 s>:
        // level = (20-5)/20·0.4 + (10-4)/10·0.2 + (5-2)/5·0.4
        //       = 0.75·0.4 + 0.6·0.2 + 0.6·0.4 = 0.66
        let q = Quantifier::new(
            Weights::new(0.4, 0.2, 0.4),
            MaxBounds::new(20.0, 10.0, SimDuration::from_secs(5)),
        );
        let level = q.level(&triple(5.0, 4.0, 2));
        assert!((level.value() - 0.66).abs() < 1e-12, "got {level}");
    }

    #[test]
    fn two_zero_weights_reduce_to_single_metric() {
        // Staleness-only quantifier: numerical and order errors are ignored
        // entirely, and the level is linear in staleness up to the bound.
        let q = Quantifier::new(
            Weights::new(0.0, 0.0, 1.0),
            MaxBounds::new(1.0, 1.0, SimDuration::from_secs(10)),
        );
        assert_eq!(q.level(&triple(1e9, 1e9, 0)), ConsistencyLevel::PERFECT);
        let half = q.level(&triple(0.0, 0.0, 5));
        assert!((half.value() - 0.5).abs() < 1e-12, "got {half}");
        assert_eq!(q.level(&triple(0.0, 0.0, 10)), ConsistencyLevel::WORST);
    }

    #[test]
    fn max_bound_edges_saturate_exactly() {
        let q = Quantifier::new(Weights::EQUAL, MaxBounds::PAPER_EXAMPLE);
        // Exactly at the bound on one member: that member contributes zero,
        // the others full weight — level collapses to 2/3.
        let at_edge = q.level(&triple(10.0, 0.0, 0));
        assert!((at_edge.value() - 2.0 / 3.0).abs() < 1e-12, "got {at_edge}");
        // Just below and beyond the bound bracket the edge value.
        assert!(q.level(&triple(10.0 - 1e-9, 0.0, 0)) > at_edge);
        assert_eq!(q.level(&triple(10.0 + 1e9, 0.0, 0)), at_edge);
        // All members at their bound — the floor, regardless of weights.
        let q2 = Quantifier::new(Weights::new(0.1, 0.7, 0.2), MaxBounds::PAPER_EXAMPLE);
        assert_eq!(q2.level(&triple(10.0, 10.0, 10)), ConsistencyLevel::WORST);
    }

    proptest! {
        #[test]
        fn level_is_always_in_unit_interval(
            num in 0.0f64..1e6, ord in 0.0f64..1e6, stale in 0u64..1_000_000,
            wn in 0.0f64..5.0, wo in 0.0f64..5.0, ws in 0.01f64..5.0,
        ) {
            let q = Quantifier::new(Weights::new(wn, wo, ws), MaxBounds::default());
            let l = q.level(&triple(num, ord, stale));
            prop_assert!((0.0..=1.0).contains(&l.value()));
        }

        #[test]
        fn level_is_monotone_in_each_error(
            num in 0.0f64..50.0, ord in 0.0f64..50.0, stale in 0u64..80,
            bump in 0.1f64..20.0,
        ) {
            let q = Quantifier::default();
            let base = q.level(&triple(num, ord, stale));
            prop_assert!(q.level(&triple(num + bump, ord, stale)) <= base);
            prop_assert!(q.level(&triple(num, ord + bump, stale)) <= base);
            prop_assert!(q.level(&triple(num, ord, stale + 10)) <= base);
        }

        #[test]
        fn perfect_iff_zero_triple_under_positive_weights(
            num in 0.0f64..100.0, ord in 0.0f64..100.0, stale in 0u64..100,
        ) {
            let q = Quantifier::default();
            let t = triple(num, ord, stale);
            let perfect = q.level(&t) == ConsistencyLevel::PERFECT;
            prop_assert_eq!(perfect, t.is_zero());
        }
    }
}
