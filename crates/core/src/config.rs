//! IDEA middleware configuration.

use crate::quantify::{MaxBounds, Weights};
use crate::resolution::ResolutionPolicy;
use idea_overlay::{GossipConfig, TopLayerConfig};
use idea_types::{IdeaError, Result, SimDuration};
use idea_wal::DurabilityConfig;
use serde::{Deserialize, Serialize};

/// When does a *read* trigger the IDEA protocol (§4.2)?
///
/// "For read operations, IDEA is triggered when a reader tries to retrieve a
/// new file … For other reads, IDEA is triggered according to the context:
/// if the file is locally updated frequently, the read will not trigger
/// IDEA; if the file hasn't been locally updated for a long time … IDEA can
/// be triggered."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadPolicy {
    /// Trigger detection on the first read of an object this node has never
    /// examined before ("a new snapshot").
    pub fresh_read_triggers: bool,
    /// Trigger detection when the replica's newest local update is older
    /// than this (the "hasn't been locally updated for a long time" case).
    pub stale_after: SimDuration,
}

impl Default for ReadPolicy {
    fn default() -> Self {
        ReadPolicy { fresh_read_triggers: true, stale_after: SimDuration::from_secs(30) }
    }
}

/// Full configuration of one IDEA node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdeaConfig {
    /// Formula-1 weights (the `set_weight` API).
    pub weights: Weights,
    /// Formula-1 saturation bounds (the `set_consistency_metric` API).
    pub bounds: MaxBounds,
    /// Conflict resolution policy (the `set_resolution` API).
    pub policy: ResolutionPolicy,
    /// Hint level in `[0, 1]`; `0.0` disables hint-based control
    /// (the `set_hint` API: "by setting this value to 0, the administrator
    /// indicates that this is not a hint-based system").
    pub hint: f64,
    /// How much a user dissatisfaction event raises the learned floor
    /// (the paper's `Δ`: the new desired level becomes `L1 + Δ`).
    pub hint_delta: f64,
    /// Background resolution period (the `set_background_freq` API); `None`
    /// disables background resolution on this node.
    pub background_period: Option<SimDuration>,
    /// Deadline for a detection round before it completes with whoever
    /// answered (covers WAN RTT plus slack).
    pub detect_deadline: SimDuration,
    /// Detection batching window: probe starts requested within this window
    /// coalesce into one round per dirty object (one timer, one fan-out per
    /// peer), dropping steady-state probe traffic from O(writes × peers)
    /// towards O(peers) per window. `None` starts a round per trigger (the
    /// paper's behaviour).
    pub detect_batch_window: Option<SimDuration>,
    /// How many per-writer timestamps a detection probe's [`idea_vv::VvSummary`]
    /// carries. The triple a peer computes is exact while per-writer
    /// divergence fits this tail; beyond it staleness saturates
    /// conservatively (the level can only drop, never inflate).
    pub summary_tail: usize,
    /// Per-message dispatch cost charged to the initiator when fanning out
    /// call-for-attention / inform messages. Models the paper's measured
    /// 0.468 ms phase-1 cost (≈0.156 ms per member at top-layer size 4).
    pub dispatch_cost: SimDuration,
    /// Back-off window for contended active resolution: retry after a
    /// uniform delay in `[backoff_min, backoff_max]` (§4.5.2).
    pub backoff_min: SimDuration,
    /// Upper edge of the back-off window.
    pub backoff_max: SimDuration,
    /// How long a granted call-for-attention lock is honoured before it is
    /// considered stale (initiator crashed mid-resolution).
    pub attention_lease: SimDuration,
    /// Read-trigger policy (§4.2).
    pub read_policy: ReadPolicy,
    /// Top-layer membership parameters (§4.1).
    pub top_layer: TopLayerConfig,
    /// Bottom-layer gossip parameters (§4.3).
    pub gossip: GossipConfig,
    /// How long a lazy-mode node waits for a pulled rumor body before
    /// retrying against a backup advertiser (only meaningful with
    /// `gossip.mode == GossipMode::Lazy`). Should comfortably exceed one
    /// WAN round-trip.
    pub gossip_pull_timeout: SimDuration,
    /// Lazy-mode digest flush window: pending rumor advertisements
    /// piggyback on outgoing detect traffic, and any still queued when
    /// this window elapses go out in a dedicated
    /// [`crate::messages::IdeaMsg::GossipDigest`].
    pub gossip_digest_flush: SimDuration,
    /// Start a bottom-layer sweep every `n`-th detection round; `None`
    /// disables sweeping. The paper's evaluation disables rollback (§6),
    /// so the default is `None`; the rollback ablation turns it on.
    pub sweep_every: Option<u64>,
    /// Sweep collection deadline (bounds rollback exposure, §4.4.2).
    pub sweep_deadline: SimDuration,
    /// "Sufficiently close" tolerance between top- and bottom-layer levels
    /// (paper example: 78 % vs 80 % stays silent).
    pub sweep_epsilon: f64,
    /// After a confirmed discrepancy, trigger an active resolution.
    pub rollback_resolve: bool,
    /// Resolve in phase 2 sequentially (the paper's design) or in parallel
    /// (the paper's suggested optimisation; exercised by ablation A3).
    pub parallel_phase2: bool,
    /// Store/protocol shards per node: replicas and all per-object protocol
    /// state are partitioned by `ObjectId` hash into this many independent
    /// shards. `1` (the default) reproduces the historical single-map
    /// behaviour; higher values let the threaded engine process disjoint
    /// objects concurrently (`ShardedEngine`). With per-trigger probing
    /// (`detect_batch_window = None`) semantics are shard-count-independent
    /// — pinned bit-for-bit by the shard-equivalence tests. With batching
    /// enabled the coalescing window is **per shard** (each shard arms its
    /// own timer over its own dirty objects), so probe *timing* can differ
    /// across shard counts while convergence is unaffected.
    pub store_shards: usize,
    /// Use the compact resolution wire forms: collect answers ship a
    /// `VvDelta` against the initiator's probe summary instead of the full
    /// extended vector, and `Inform` encodes the reference as per-writer
    /// overrides against the member's own collect answer where that is
    /// smaller. Message count, order and the chosen reference are
    /// bit-identical to the full forms (pinned by the
    /// resolution-compaction equivalence tests) — only bytes change, so
    /// the default is on. `false` restores the PR-1 full-EVV wire.
    pub compact_resolution: bool,
    /// Upper bound on the updates carried by a single `FetchReply` frame.
    /// A far-behind replica streams its backlog in chunks of this size
    /// (each reply's `done` flag drives a continuation `FetchRequest`
    /// cursor) instead of one unbounded burst. `None` (the default)
    /// preserves the historical single-reply behaviour; `Some(0)` is
    /// rejected by [`IdeaConfig::validate`].
    pub max_fetch_updates: Option<usize>,
    /// Batch the pending lazy-gossip advertisements of **every** object in
    /// a shard onto outgoing detect frames (one
    /// [`crate::messages::DigestGroup`] per object), not just the probed
    /// object's. Saves the per-object flush-timer frames, but delivers
    /// adverts earlier the more objects share a shard — message timing
    /// then depends on the shard count, so the default is off to preserve
    /// the shard-equivalence invariant. Byte accounting for the batched
    /// form is exercised by the `gossip_scale` benchmark.
    pub batch_digests: bool,
    /// Durability plane: per-shard write-ahead logging, periodic durable
    /// snapshots with log truncation, and the fsync policy
    /// ([`idea_wal::DurabilityMode`]). The default is
    /// [`DurabilityMode::Off`](idea_wal::DurabilityMode::Off) — nothing is
    /// written and every pinned fixed-seed trace runs exactly as before.
    /// Restarting an existing identity goes through
    /// [`crate::protocol::IdeaNode::recover`].
    pub durability: DurabilityConfig,
}

impl Default for IdeaConfig {
    fn default() -> Self {
        IdeaConfig {
            weights: Weights::default(),
            bounds: MaxBounds::default(),
            policy: ResolutionPolicy::HighestIdWins,
            hint: 0.0,
            hint_delta: 0.02,
            background_period: None,
            detect_deadline: SimDuration::from_millis(400),
            detect_batch_window: None,
            summary_tail: 8,
            dispatch_cost: SimDuration::from_micros(156),
            backoff_min: SimDuration::from_millis(50),
            backoff_max: SimDuration::from_millis(400),
            attention_lease: SimDuration::from_secs(5),
            read_policy: ReadPolicy::default(),
            top_layer: TopLayerConfig::default(),
            gossip: GossipConfig::default(),
            gossip_pull_timeout: SimDuration::from_millis(500),
            gossip_digest_flush: SimDuration::from_millis(200),
            sweep_every: None,
            sweep_deadline: SimDuration::from_secs(5),
            sweep_epsilon: 0.03,
            rollback_resolve: true,
            parallel_phase2: false,
            store_shards: 1,
            compact_resolution: true,
            max_fetch_updates: None,
            batch_digests: false,
            durability: DurabilityConfig::off(),
        }
    }
}

impl IdeaConfig {
    /// Checks every field against its documented domain, returning the
    /// first violation as a typed [`IdeaError::InvalidConfig`].
    ///
    /// [`crate::protocol::IdeaNode::new`] calls this before building a
    /// node (and panics on violation); fallible callers use
    /// [`crate::protocol::IdeaNode::try_new`] instead.
    ///
    /// # Errors
    /// Fails when `store_shards` is outside `1..=256`, a configured
    /// `detect_batch_window` or `background_period` is zero, the hint floor
    /// is outside `[0, 1]`, `hint_delta` is negative, the back-off window
    /// is inverted (`backoff_min > backoff_max`), or a configured
    /// `max_fetch_updates` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.store_shards == 0 || self.store_shards > 256 {
            return Err(IdeaError::InvalidConfig {
                field: "store_shards",
                reason: "must be in 1..=256 (the timer encoding carries the shard in one byte)",
            });
        }
        if self.detect_batch_window.is_some_and(|w| w.is_zero()) {
            return Err(IdeaError::InvalidConfig {
                field: "detect_batch_window",
                reason: "must be positive when set (None disables batching)",
            });
        }
        if self.background_period.is_some_and(|p| p.is_zero()) {
            return Err(IdeaError::InvalidConfig {
                field: "background_period",
                reason: "must be positive when set (None disables background resolution)",
            });
        }
        if self.max_fetch_updates == Some(0) {
            return Err(IdeaError::InvalidConfig {
                field: "max_fetch_updates",
                reason: "must be positive when set (None disables fetch chunking)",
            });
        }
        if !(0.0..=1.0).contains(&self.hint) || !self.hint.is_finite() {
            return Err(IdeaError::InvalidConfig {
                field: "hint",
                reason: "floor must be within [0, 1] (0 disables hint-based control)",
            });
        }
        if self.hint_delta < 0.0 || !self.hint_delta.is_finite() {
            return Err(IdeaError::InvalidConfig {
                field: "hint_delta",
                reason: "learning step must be non-negative and finite",
            });
        }
        if self.backoff_min > self.backoff_max {
            return Err(IdeaError::InvalidConfig {
                field: "backoff_min",
                reason: "back-off window is inverted (backoff_min > backoff_max)",
            });
        }
        if self.durability.enabled() {
            if self.durability.dir.as_os_str().is_empty() {
                return Err(IdeaError::InvalidConfig {
                    field: "durability.dir",
                    reason: "an enabled durability plane needs a root directory",
                });
            }
            if self.durability.snapshot_every == 0 {
                return Err(IdeaError::InvalidConfig {
                    field: "durability.snapshot_every",
                    reason: "must be positive when durability is on",
                });
            }
            if self.durability.group_commit == 0 {
                return Err(IdeaError::InvalidConfig {
                    field: "durability.group_commit",
                    reason: "the group-commit window must be positive when durability is on",
                });
            }
        }
        if self.gossip.mode == idea_overlay::GossipMode::Lazy {
            if self.gossip_pull_timeout.is_zero() {
                return Err(IdeaError::InvalidConfig {
                    field: "gossip_pull_timeout",
                    reason: "lazy gossip needs a positive pull retry timeout",
                });
            }
            if self.gossip_digest_flush.is_zero() {
                return Err(IdeaError::InvalidConfig {
                    field: "gossip_digest_flush",
                    reason: "lazy gossip needs a positive digest flush window",
                });
            }
        }
        Ok(())
    }

    /// Preset for the paper's hint-based white-board experiments (§6.1):
    /// hint-driven active resolution, no background rounds, no sweeps.
    pub fn whiteboard(hint: f64) -> Self {
        IdeaConfig {
            hint,
            policy: ResolutionPolicy::HighestIdWins,
            background_period: None,
            ..Default::default()
        }
    }

    /// Preset for the paper's automatic booking experiments (§6.3):
    /// background resolution at `period`, no hints.
    pub fn booking(period: SimDuration) -> Self {
        IdeaConfig {
            hint: 0.0,
            policy: ResolutionPolicy::HighestIdWins,
            background_period: Some(period),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = IdeaConfig::default();
        assert_eq!(c.hint, 0.0, "hint-based control disabled by default");
        assert!(c.background_period.is_none());
        assert!(c.sweep_every.is_none(), "paper's evaluation runs without rollback");
        assert!(c.backoff_min <= c.backoff_max);
        assert!(c.detect_batch_window.is_none(), "paper probes per trigger by default");
        assert!(c.summary_tail > 0, "probes must carry some timestamp tail");
        assert_eq!(c.store_shards, 1, "default is the paper's unsharded store");
        assert!(c.compact_resolution, "compact wire forms are byte-equivalent in behaviour");
        assert!(c.max_fetch_updates.is_none(), "fetch chunking is opt-in");
        assert!(!c.batch_digests, "cross-object batching is opt-in (shard-equivalence)");
        assert!(!c.durability.enabled(), "durability is opt-in (pinned traces unchanged)");
    }

    fn rejected_field(cfg: &IdeaConfig) -> &'static str {
        match cfg.validate() {
            Err(IdeaError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn validate_accepts_every_preset() {
        IdeaConfig::default().validate().unwrap();
        IdeaConfig::whiteboard(0.95).validate().unwrap();
        IdeaConfig::booking(SimDuration::from_secs(20)).validate().unwrap();
        IdeaConfig { store_shards: 256, ..Default::default() }.validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_shards() {
        let cfg = IdeaConfig { store_shards: 0, ..Default::default() };
        assert_eq!(rejected_field(&cfg), "store_shards");
    }

    #[test]
    fn validate_rejects_excess_shards() {
        let cfg = IdeaConfig { store_shards: 257, ..Default::default() };
        assert_eq!(rejected_field(&cfg), "store_shards");
    }

    #[test]
    fn validate_rejects_zero_batch_window() {
        let cfg = IdeaConfig { detect_batch_window: Some(SimDuration::ZERO), ..Default::default() };
        assert_eq!(rejected_field(&cfg), "detect_batch_window");
    }

    #[test]
    fn validate_rejects_zero_background_period() {
        let cfg = IdeaConfig { background_period: Some(SimDuration::ZERO), ..Default::default() };
        assert_eq!(rejected_field(&cfg), "background_period");
    }

    #[test]
    fn validate_rejects_zero_fetch_chunk() {
        let cfg = IdeaConfig { max_fetch_updates: Some(0), ..Default::default() };
        assert_eq!(rejected_field(&cfg), "max_fetch_updates");
        IdeaConfig { max_fetch_updates: Some(1), ..Default::default() }.validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_hint_floor() {
        assert_eq!(rejected_field(&IdeaConfig { hint: 1.2, ..Default::default() }), "hint");
        assert_eq!(rejected_field(&IdeaConfig { hint: -0.1, ..Default::default() }), "hint");
        assert_eq!(rejected_field(&IdeaConfig { hint: f64::NAN, ..Default::default() }), "hint");
        assert_eq!(
            rejected_field(&IdeaConfig { hint_delta: -0.5, ..Default::default() }),
            "hint_delta"
        );
    }

    #[test]
    fn validate_rejects_zero_lazy_knobs_only_in_lazy_mode() {
        use idea_overlay::{GossipConfig, GossipMode};
        // Eager mode ignores the lazy knobs entirely.
        let eager_gossip = GossipConfig { mode: GossipMode::Eager, ..Default::default() };
        let eager = IdeaConfig {
            gossip: eager_gossip,
            gossip_pull_timeout: SimDuration::ZERO,
            ..Default::default()
        };
        eager.validate().unwrap();
        let lazy_gossip =
            GossipConfig { mode: GossipMode::Lazy, eager_fanout: 1, ..Default::default() };
        let cfg = IdeaConfig {
            gossip: lazy_gossip,
            gossip_pull_timeout: SimDuration::ZERO,
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "gossip_pull_timeout");
        let cfg = IdeaConfig {
            gossip: lazy_gossip,
            gossip_digest_flush: SimDuration::ZERO,
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "gossip_digest_flush");
        IdeaConfig { gossip: lazy_gossip, ..Default::default() }.validate().unwrap();
    }

    #[test]
    fn validate_rejects_misconfigured_durability() {
        use idea_wal::DurabilityMode;
        // Enabled without a directory.
        let cfg = IdeaConfig {
            durability: DurabilityConfig { mode: DurabilityMode::Sync, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "durability.dir");
        // Enabled with a zero snapshot threshold.
        let cfg = IdeaConfig {
            durability: DurabilityConfig {
                snapshot_every: 0,
                ..DurabilityConfig::sync("/tmp/idea-wal")
            },
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "durability.snapshot_every");
        // Enabled with a zero group-commit window.
        let cfg = IdeaConfig {
            durability: DurabilityConfig {
                group_commit: 0,
                ..DurabilityConfig::sync("/tmp/idea-wal")
            },
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "durability.group_commit");
        // Off tolerates all of it (nothing is written).
        let cfg = IdeaConfig {
            durability: DurabilityConfig {
                snapshot_every: 0,
                group_commit: 0,
                ..DurabilityConfig::off()
            },
            ..Default::default()
        };
        cfg.validate().unwrap();
        IdeaConfig { durability: DurabilityConfig::sync("/tmp/idea-wal"), ..Default::default() }
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_inverted_backoff_window() {
        let cfg = IdeaConfig {
            backoff_min: SimDuration::from_millis(500),
            backoff_max: SimDuration::from_millis(100),
            ..Default::default()
        };
        assert_eq!(rejected_field(&cfg), "backoff_min");
    }

    #[test]
    fn whiteboard_preset_sets_hint() {
        let c = IdeaConfig::whiteboard(0.95);
        assert_eq!(c.hint, 0.95);
        assert!(c.background_period.is_none());
    }

    #[test]
    fn booking_preset_sets_period() {
        let c = IdeaConfig::booking(SimDuration::from_secs(20));
        assert_eq!(c.background_period, Some(SimDuration::from_secs(20)));
        assert_eq!(c.hint, 0.0);
    }

    #[test]
    fn dispatch_cost_matches_table2_phase1() {
        // 3 members × 0.156 ms ≈ the paper's 0.468 ms phase-1 delay.
        let c = IdeaConfig::default();
        let phase1 = c.dispatch_cost.saturating_mul(3);
        assert!((phase1.as_millis_f64() - 0.468).abs() < 0.01);
    }
}
