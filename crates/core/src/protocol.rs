//! The IDEA node: one state machine wiring detection, quantification,
//! resolution and adaptation together (Figure 3 of the paper).
//!
//! Triggers (§4.2): every local **write** starts a top-layer detection
//! round; **reads** start one per the [`crate::config::ReadPolicy`]; the
//! adaptive layer starts **active resolution** when the quantified level
//! falls below the learned floor; a timer starts **background resolution**
//! periodically; every `sweep_every`-th detection round launches a
//! TTL-bounded **bottom-layer sweep** whose verdict can demand a rollback.
//!
//! ## Conventions
//!
//! * Writer homes: writer `w` lives on node `w` (the experiments' layout;
//!   [`IdeaNode::home`] centralises the mapping).
//! * Sequence reuse: when resolution invalidates a writer's updates, the
//!   writer's sequence counter resumes from the last *sanctioned* number, so
//!   counters stay dense. Stale copies of invalidated updates are
//!   superseded by identity — the same trade the paper's version-vector
//!   scheme makes implicitly.
//! * Correlation ids (`round`, `rid`) are initiator-local; members key
//!   their state by `(initiator, id)`.

use crate::adapt::{AdaptAction, HintController};
use crate::config::IdeaConfig;
use crate::messages::IdeaMsg;
use crate::quantify::{Quantifier, Weights};
use crate::resolution::{
    choose_reference, ReferenceState, ResolutionKind, ResolutionPolicy, ResolutionRecord,
};
use idea_detect::bottom::{BottomReport, SweepCollector};
use idea_detect::round::DetectRound;
use idea_net::{Context, Proto, TimerId};
use idea_overlay::gossip::{GossipRouter, Relay, RumorId};
use idea_overlay::temperature::TwoLayer;
use idea_store::NodeStore;
use idea_store::Snapshot;
use idea_types::{
    ConsistencyLevel, NodeId, ObjectId, Result, SimTime, Update, UpdatePayload, WriterId,
};
use idea_vv::VersionVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

// Timer kinds (packed with a 48-bit payload).
const K_DETECT: u64 = 1;
const K_BACKGROUND: u64 = 2;
const K_BACKOFF: u64 = 3;
const K_SWEEP: u64 = 4;

fn pack(base: u64, low: u64) -> u64 {
    (base << 48) | (low & 0xffff_ffff_ffff)
}

fn unpack(kind: u64) -> (u64, u64) {
    (kind >> 48, kind & 0xffff_ffff_ffff)
}

/// Resolution state machine of one object at one node.
#[derive(Debug)]
enum ResState {
    Idle,
    /// Waiting for call-for-attention acknowledgements (§4.5.2 phase 1).
    Phase1 {
        rid: u64,
        awaiting: Vec<NodeId>,
        started: SimTime,
        dispatch: idea_types::SimDuration,
    },
    /// Collecting version vectors (phase 2), then informing.
    Phase2 {
        rid: u64,
        kind: ResolutionKind,
        members: Vec<NodeId>,
        collected: Vec<(NodeId, idea_vv::ExtendedVersionVector)>,
        next: usize,
        started: SimTime,
        phase2_started: SimTime,
        phase1_dispatch: idea_types::SimDuration,
        phase1_acked: idea_types::SimDuration,
    },
    /// Lost the call-for-attention race; retrying after a random delay.
    /// The abandoned round id is kept for debugging/log output.
    BackOff { #[allow(dead_code)] rid: u64 },
}

/// Per-object protocol state.
struct ObjState {
    layer: TwoLayer,
    gossip: GossipRouter,
    known_counts: VersionVector,
    detect: Option<DetectRound>,
    detect_timer: Option<TimerId>,
    detect_rounds: u64,
    level: ConsistencyLevel,
    res: ResState,
    sweeps: HashMap<u64, SweepCollector>,
    /// Attention granted to `(initiator, rid, at)` — the phase-1 lock.
    attention: Option<(NodeId, u64, SimTime)>,
    has_read: bool,
    /// Bootstrap announces sent so far (bounded; see `local_write`).
    announces: u64,
}

/// Snapshot of one node's IDEA state for the harness and tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Its current consistency-level estimate for the object.
    pub level: ConsistencyLevel,
    /// The hint floor currently in force (0 when disabled).
    pub hint_floor: ConsistencyLevel,
    /// Resolution rounds this node initiated to completion.
    pub resolutions_initiated: u64,
    /// Rollback events (bottom-layer discrepancies confirmed).
    pub rollbacks: u64,
    /// The node's view of the top-layer membership.
    pub top_members: Vec<NodeId>,
    /// Replica metadata value.
    pub meta: i64,
    /// Updates applied at the replica.
    pub updates: usize,
}

/// The IDEA middleware node.
pub struct IdeaNode {
    me: NodeId,
    cfg: IdeaConfig,
    quant: Quantifier,
    store: NodeStore,
    objs: BTreeMap<ObjectId, ObjState>,
    hint: HintController,
    priorities: BTreeMap<NodeId, u8>,
    next_id: u64,
    /// round id → object, for detect-deadline timers.
    round_objects: HashMap<u64, ObjectId>,
    res_log: Vec<ResolutionRecord>,
    resolutions: u64,
    rollbacks: u64,
}

impl IdeaNode {
    /// Builds a node hosting `objects`, writing as writer `me.0`.
    pub fn new(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Self {
        let mut store = NodeStore::new(me, WriterId(me.0));
        let mut objs = BTreeMap::new();
        for &o in objects {
            store.open(o);
            objs.insert(
                o,
                ObjState {
                    layer: TwoLayer::new(o, cfg.top_layer),
                    gossip: GossipRouter::new(me, cfg.gossip),
                    known_counts: VersionVector::new(),
                    detect: None,
                    detect_timer: None,
                    detect_rounds: 0,
                    level: ConsistencyLevel::PERFECT,
                    res: ResState::Idle,
                    sweeps: HashMap::new(),
                    attention: None,
                    has_read: false,
                    announces: 0,
                },
            );
        }
        let hint = HintController::new(cfg.hint, cfg.hint_delta);
        IdeaNode {
            me,
            quant: Quantifier::new(cfg.weights, cfg.bounds),
            cfg,
            store,
            objs,
            hint,
            priorities: BTreeMap::new(),
            next_id: 0,
            round_objects: HashMap::new(),
            res_log: Vec::new(),
            resolutions: 0,
            rollbacks: 0,
        }
    }

    /// Node identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The configuration in force.
    pub fn config(&self) -> &IdeaConfig {
        &self.cfg
    }

    /// The quantifier in force.
    pub fn quantifier(&self) -> &Quantifier {
        &self.quant
    }

    /// Mutable quantifier access (Table-1 setters go through
    /// [`crate::api::DeveloperApi`]).
    pub fn quantifier_mut(&mut self) -> &mut Quantifier {
        &mut self.quant
    }

    /// The hint controller.
    pub fn hint(&self) -> &HintController {
        &self.hint
    }

    /// Mutable hint-controller access.
    pub fn hint_mut(&mut self) -> &mut HintController {
        &mut self.hint
    }

    /// Sets the resolution policy (the `set_resolution` API).
    pub fn set_policy(&mut self, policy: ResolutionPolicy) {
        self.cfg.policy = policy;
    }

    /// Sets or clears the background-resolution period
    /// (the `set_background_freq` API). Takes effect at the next timer fire.
    pub fn set_background_period(&mut self, period: Option<idea_types::SimDuration>) {
        self.cfg.background_period = period;
    }

    /// Assigns a priority rank to a node (for
    /// [`ResolutionPolicy::PriorityWins`]).
    pub fn set_priority(&mut self, node: NodeId, priority: u8) {
        self.priorities.insert(node, priority);
    }

    /// Completed resolution records (Table 2 / Figure 9 raw data).
    pub fn resolution_log(&self) -> &[ResolutionRecord] {
        &self.res_log
    }

    /// The underlying store (read access for the harness).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// This node's current consistency-level estimate for `object`.
    pub fn level(&self, object: ObjectId) -> ConsistencyLevel {
        self.objs.get(&object).map_or(ConsistencyLevel::PERFECT, |s| s.level)
    }

    /// True while a resolution round involves this node as initiator (or it
    /// is backing off from one). The booking application treats this as the
    /// "system is kind of locked" window of §5.2.
    pub fn is_resolving(&self, object: ObjectId) -> bool {
        self.objs
            .get(&object)
            .map_or(false, |s| !matches!(s.res, ResState::Idle))
    }

    /// Full report for the harness.
    pub fn report(&self, object: ObjectId) -> NodeReport {
        let st = self.objs.get(&object);
        let replica = self.store.replica(object).ok();
        NodeReport {
            node: self.me,
            level: st.map_or(ConsistencyLevel::PERFECT, |s| s.level),
            hint_floor: self.hint.floor(),
            resolutions_initiated: self.resolutions,
            rollbacks: self.rollbacks,
            top_members: st.map_or_else(Vec::new, |s| s.layer.top_members().to_vec()),
            meta: replica.map_or(0, |r| r.meta()),
            updates: replica.map_or(0, |r| r.len()),
        }
    }

    /// Writer `w` lives on node `w` (experiment convention; see module docs).
    fn home(writer: WriterId) -> NodeId {
        NodeId(writer.0)
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    // ---------------------------------------------------------------- write

    /// Issues a local write and triggers the protocol (§4.2: "The write
    /// operation … triggers the IDEA protocol because it … will surely cause
    /// inconsistency among replicas").
    pub fn local_write(
        &mut self,
        object: ObjectId,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Update {
        let now = ctx.now();
        let update = self.store.write(object, now, meta_delta, payload);
        let st = self.objs.get_mut(&object).expect("object opened at construction");
        st.layer.observe_update(self.me, now);
        // Bootstrap: a handful of gossip announces per writer lets the
        // overlay discover hot writers transitively (RanSub's role in §4.1).
        // Bounded so steady-state traffic is detection-only.
        let needs_announce = st.announces < 3
            || !st.layer.is_top(self.me)
            || st.layer.top_peers(self.me).is_empty();
        if needs_announce {
            st.announces += 1;
            self.announce(object, ctx);
        }
        self.start_detect_round(object, ctx);
        update
    }

    /// Reads the object, triggering detection per the read policy (§4.2).
    pub fn read(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) -> Result<Snapshot> {
        let snapshot = self.store.read(object)?;
        let policy = self.cfg.read_policy;
        let st = self.objs.get_mut(&object).expect("object opened at construction");
        let fresh = !st.has_read;
        st.has_read = true;
        let stale = snapshot
            .latest_update
            .map(|t| ctx.now().saturating_since(t) > policy.stale_after)
            .unwrap_or(false);
        if (fresh && policy.fresh_read_triggers) || stale {
            self.start_detect_round(object, ctx);
        }
        Ok(snapshot)
    }

    // ------------------------------------------------------------ detection

    fn start_detect_round(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let evv = match self.store.replica(object) {
            Ok(r) => r.version().clone(),
            Err(_) => return,
        };
        let st = self.objs.get_mut(&object).expect("object opened");
        if st.detect.is_some() {
            return; // one round in flight per object
        }
        let peers = st.layer.top_peers(self.me);
        if peers.is_empty() {
            return;
        }
        let rid = {
            self.next_id += 1;
            self.next_id
        };
        let st = self.objs.get_mut(&object).expect("object opened");
        st.detect = Some(DetectRound::start(self.me, rid, &peers, ctx.now()));
        st.detect_timer = Some(ctx.set_timer(self.cfg.detect_deadline, pack(K_DETECT, rid)));
        self.round_objects.insert(rid, object);
        for p in peers {
            ctx.send(p, IdeaMsg::DetectRequest { round: rid, object, evv: evv.clone() });
        }
    }

    fn on_detect_request(
        &mut self,
        from: NodeId,
        round: u64,
        object: ObjectId,
        evv: idea_vv::ExtendedVersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        self.ensure_obj(object);
        let mine = self.store.replica(object).expect("opened").version().clone();
        // Reply first, then update local estimates.
        ctx.send(from, IdeaMsg::DetectReply { round, object, evv: mine.clone() });
        let now = ctx.now();
        self.note_counters(object, &evv.counters(), now);
        // Pairwise refresh: my level against the pair's reference (higher
        // id wins, §4.4.1). Only ever lowers the estimate — a full round or
        // a resolution raises it.
        let st = self.objs.get_mut(&object).expect("ensured");
        let pair_level = if from > self.me {
            self.quant.level(&mine.triple_against(&evv))
        } else {
            self.quant.level(&evv.triple_against(&mine)).max(st.level)
        };
        st.level = st.level.min(pair_level);
        let level = st.level;
        if self.hint.on_sample(level) == AdaptAction::Resolve {
            self.start_active_resolution(object, ctx);
        }
    }

    fn on_detect_reply(
        &mut self,
        from: NodeId,
        round: u64,
        object: ObjectId,
        evv: idea_vv::ExtendedVersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let now = ctx.now();
        self.note_counters(object, &evv.counters(), now);
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        let complete = match st.detect.as_mut() {
            Some(r) if r.round_id == round => r.on_reply(from, evv),
            _ => return,
        };
        if complete {
            self.finish_detect_round(object, ctx);
        }
    }

    fn finish_detect_round(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let mine = self.store.replica(object).expect("opened").version().clone();
        let st = self.objs.get_mut(&object).expect("object state");
        let Some(round) = st.detect.take() else { return };
        if let Some(t) = st.detect_timer.take() {
            ctx.cancel_timer(t);
        }
        let report = round.complete(&mine, ctx.now());
        st.detect_rounds += 1;
        let rounds = st.detect_rounds;
        let triple = report
            .triple_of(self.me)
            .expect("initiator always appears in its own report");
        st.level = self.quant.level(&triple);
        let level = st.level;
        // Bottom-layer double-check every sweep_every-th round (§4.4.2).
        if let Some(k) = self.cfg.sweep_every {
            if k > 0 && rounds % k == 0 {
                self.start_sweep(object, ctx);
            }
        }
        if self.hint.on_sample(level) == AdaptAction::Resolve {
            self.start_active_resolution(object, ctx);
        }
    }

    /// Learns writer activity from any counters that pass by (detection,
    /// collection, gossip), feeding the temperature overlay.
    fn note_counters(&mut self, object: ObjectId, counters: &VersionVector, now: SimTime) {
        let st = self.objs.get_mut(&object).expect("object state");
        for (writer, count) in counters.iter() {
            let known = st.known_counts.get(writer);
            if count > known {
                let node = Self::home(writer);
                for _ in known..count {
                    st.layer.observe_update(node, now);
                }
                st.known_counts.observe(writer, count);
            }
        }
    }

    // ------------------------------------------------------------ announce

    /// Gossips every writer count this node knows (own plus learned) so the
    /// overlay discovers hot writers *transitively* — the role RanSub's
    /// random subsets play in §4.1.
    fn announce(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let mut counters = self.store.replica(object).expect("opened").version().counters();
        let everyone: Vec<NodeId> = (0..ctx.node_count() as u32).map(NodeId).collect();
        let st = self.objs.get_mut(&object).expect("object state");
        counters.merge(&st.known_counts);
        let (id, ttl, targets) = st.gossip.originate(&everyone, ctx.rng());
        for t in targets {
            ctx.send(t, IdeaMsg::SweepRumor { id, ttl, object, counters: counters.clone() });
        }
    }

    // ------------------------------------------------------------- sweeps

    fn start_sweep(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let counters = self.store.replica(object).expect("opened").version().counters();
        let everyone: Vec<NodeId> = (0..ctx.node_count() as u32).map(NodeId).collect();
        let deadline = ctx.now() + self.cfg.sweep_deadline;
        let epsilon = self.cfg.sweep_epsilon;
        let st = self.objs.get_mut(&object).expect("object state");
        let (id, ttl, targets) = st.gossip.originate(&everyone, ctx.rng());
        st.sweeps.insert(id.seq, SweepCollector::new(st.level, epsilon, deadline));
        for t in targets {
            ctx.send(t, IdeaMsg::SweepRumor { id, ttl, object, counters: counters.clone() });
        }
        ctx.set_timer(self.cfg.sweep_deadline, pack(K_SWEEP, id.seq));
        self.round_objects.insert(id.seq, object);
    }

    fn on_sweep_rumor(
        &mut self,
        id: RumorId,
        ttl: u8,
        object: ObjectId,
        counters: VersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        self.ensure_obj(object);
        let now = ctx.now();
        self.note_counters(object, &counters, now);
        let everyone: Vec<NodeId> = (0..ctx.node_count() as u32).map(NodeId).collect();
        let st = self.objs.get_mut(&object).expect("ensured");
        match st.gossip.on_receive(id, ttl, &everyone, ctx.rng()) {
            Relay::Forward { to, ttl } => {
                for t in to {
                    ctx.send(
                        t,
                        IdeaMsg::SweepRumor { id, ttl, object, counters: counters.clone() },
                    );
                }
            }
            Relay::Drop => {}
        }
        // Divergence: I hold updates the origin has not seen (§4.4.2 — the
        // bottom layer "can cause inconsistencies too").
        let mine = self.store.replica(object).expect("opened").version();
        if counters.missing_from(&mine.counters()) > 0 {
            ctx.send(
                id.origin,
                IdeaMsg::SweepDivergence { object, sweep: id.seq, evv: mine.clone() },
            );
        }
    }

    fn on_sweep_divergence(
        &mut self,
        from: NodeId,
        object: ObjectId,
        sweep: u64,
        evv: idea_vv::ExtendedVersionVector,
        _ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let mine = match self.store.replica(object) {
            Ok(r) => r.version().clone(),
            Err(_) => return,
        };
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        if let Some(collector) = st.sweeps.get_mut(&sweep) {
            let triple = mine.triple_against(&evv);
            collector.on_divergence(from, evv, triple);
        }
    }

    fn on_sweep_deadline(&mut self, seq: u64, ctx: &mut dyn Context<IdeaMsg>) {
        let Some(object) = self.round_objects.remove(&seq) else { return };
        let st = self.objs.get_mut(&object).expect("object state");
        let Some(collector) = st.sweeps.remove(&seq) else { return };
        let quant = self.quant;
        let report = collector.finish(|t| quant.level(t));
        match report {
            BottomReport::Confirmed { .. } => {}
            BottomReport::Discrepancy { bottom_level, worst_node, .. } => {
                // §4.4.2: alert, correct the level, and (configurably)
                // resolve — pulling the hidden updates in first.
                self.rollbacks += 1;
                let st = self.objs.get_mut(&object).expect("object state");
                st.level = st.level.min(bottom_level);
                let have = self.store.replica(object).expect("opened").version().counters();
                ctx.send(worst_node, IdeaMsg::FetchRequest { object, have });
                if self.cfg.rollback_resolve {
                    self.start_active_resolution(object, ctx);
                }
            }
        }
    }

    // ----------------------------------------------------------- resolution

    /// Explicit user demand for resolution (the `demand_active_resolution`
    /// API and the adaptive layer's trigger).
    pub fn demand_active_resolution(
        &mut self,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.start_active_resolution(object, ctx);
    }

    /// The user told IDEA the current consistency is unacceptable (§5.1):
    /// optionally re-weight the metrics, always raise the floor by Δ and
    /// resolve.
    pub fn user_dissatisfied(
        &mut self,
        object: ObjectId,
        new_weights: Option<Weights>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if let Some(w) = new_weights {
            self.quant.set_weights(w);
        }
        if self.hint.on_user_dissatisfied() == AdaptAction::Resolve {
            self.start_active_resolution(object, ctx);
        }
    }

    fn start_active_resolution(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let st = self.objs.get_mut(&object).expect("object state");
        if !matches!(st.res, ResState::Idle) {
            return; // already resolving or backing off
        }
        let members = st.layer.top_peers(self.me);
        if members.is_empty() {
            return;
        }
        let rid = self.fresh_id();
        let st = self.objs.get_mut(&object).expect("object state");
        let dispatch = self.cfg.dispatch_cost.saturating_mul(members.len() as u64);
        st.res = ResState::Phase1 {
            rid,
            awaiting: members.clone(),
            started: ctx.now(),
            dispatch,
        };
        self.round_objects.insert(rid, object);
        for m in members {
            ctx.send(m, IdeaMsg::CallForAttention { rid, object });
        }
    }

    fn on_call_for_attention(
        &mut self,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        self.ensure_obj(object);
        let lease = self.cfg.attention_lease;
        let now = ctx.now();
        let st = self.objs.get_mut(&object).expect("ensured");

        // Am I an initiator myself? Tie-break by id: the larger id proceeds,
        // the smaller backs off (a deterministic rendering of §4.5.2's
        // "back-off and retry after a random amount of time").
        let i_am_initiating = matches!(st.res, ResState::Phase1 { .. });
        if i_am_initiating && from < self.me {
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: false });
            return;
        }
        if i_am_initiating && from > self.me {
            // Yield: abandon my round and retry later.
            let my_rid = match st.res {
                ResState::Phase1 { rid, .. } => rid,
                _ => unreachable!("checked above"),
            };
            st.res = ResState::BackOff { rid: my_rid };
            let delay = self.backoff_delay(ctx);
            ctx.set_timer(delay, pack(K_BACKOFF, object.0));
            let st = self.objs.get_mut(&object).expect("ensured");
            st.attention = Some((from, rid, now));
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: true });
            return;
        }

        // Plain member: grant when the lease is free, expired, already held
        // by this caller, or held by a *lower-id* initiator — the same
        // higher-id-wins tie-break as above, so one contender always
        // assembles a full grant set and the race cannot livelock.
        let grant = match st.attention {
            Some((holder, _, at)) => {
                holder == from || now.saturating_since(at) >= lease || from > holder
            }
            None => true,
        };
        if grant {
            st.attention = Some((from, rid, now));
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: true });
        } else {
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: false });
        }
    }

    fn backoff_delay(&self, ctx: &mut dyn Context<IdeaMsg>) -> idea_types::SimDuration {
        let lo = self.cfg.backoff_min.as_micros();
        let hi = self.cfg.backoff_max.as_micros().max(lo + 1);
        idea_types::SimDuration::from_micros(ctx.rng().gen_range(lo..hi))
    }

    fn on_attention(
        &mut self,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        granted: bool,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        let (my_rid, mut awaiting, started, dispatch) = match &st.res {
            ResState::Phase1 { rid: r, awaiting, started, dispatch } => {
                (*r, awaiting.clone(), *started, *dispatch)
            }
            _ => return,
        };
        if my_rid != rid {
            return;
        }
        if !granted {
            // Contention: back off and retry (§4.5.2).
            st.res = ResState::BackOff { rid };
            let delay = self.backoff_delay(ctx);
            ctx.set_timer(delay, pack(K_BACKOFF, object.0));
            return;
        }
        awaiting.retain(|&n| n != from);
        if awaiting.is_empty() {
            // Phase 1 complete: move to phase 2.
            let now = ctx.now();
            let members = st.layer.top_peers(self.me);
            st.res = ResState::Phase2 {
                rid,
                kind: ResolutionKind::Active,
                members: members.clone(),
                collected: Vec::new(),
                next: 0,
                started,
                phase2_started: now,
                phase1_dispatch: dispatch,
                phase1_acked: now.saturating_since(started),
            };
            self.send_collects(object, rid, &members, 0, ctx);
        } else {
            st.res = ResState::Phase1 { rid, awaiting, started, dispatch };
        }
    }

    fn send_collects(
        &mut self,
        object: ObjectId,
        rid: u64,
        members: &[NodeId],
        from_index: usize,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if self.cfg.parallel_phase2 {
            if from_index == 0 {
                for &m in members {
                    ctx.send(m, IdeaMsg::CollectRequest { rid, object });
                }
            }
        } else if let Some(&m) = members.get(from_index) {
            ctx.send(m, IdeaMsg::CollectRequest { rid, object });
        }
    }

    /// Background resolution timer fired: the lowest-id top-layer member
    /// initiates a collect round directly (no phase 1, §4.5.2).
    fn on_background_timer(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let Some(period) = self.cfg.background_period else { return };
        ctx.set_timer(period, pack(K_BACKGROUND, object.0));
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        let members = st.layer.top_members().to_vec();
        let initiator = members.first().copied();
        if initiator != Some(self.me) || !matches!(st.res, ResState::Idle) {
            return;
        }
        let peers = st.layer.top_peers(self.me);
        if peers.is_empty() {
            return;
        }
        let rid = self.fresh_id();
        let now = ctx.now();
        let st = self.objs.get_mut(&object).expect("object state");
        st.res = ResState::Phase2 {
            rid,
            kind: ResolutionKind::Background,
            members: peers.clone(),
            collected: Vec::new(),
            next: 0,
            started: now,
            phase2_started: now,
            phase1_dispatch: idea_types::SimDuration::ZERO,
            phase1_acked: idea_types::SimDuration::ZERO,
        };
        self.round_objects.insert(rid, object);
        self.send_collects(object, rid, &peers, 0, ctx);
    }

    fn on_collect_request(
        &mut self,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        let evv = self.store.replica(object).expect("opened").version().clone();
        ctx.send(from, IdeaMsg::CollectReply { rid, object, evv });
    }

    fn on_collect_reply(
        &mut self,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        evv: idea_vv::ExtendedVersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let now = ctx.now();
        self.note_counters(object, &evv.counters(), now);
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        let parallel = self.cfg.parallel_phase2;
        match &mut st.res {
            ResState::Phase2 { rid: r, members, collected, next, .. } if *r == rid => {
                if collected.iter().any(|(n, _)| *n == from) {
                    return;
                }
                collected.push((from, evv));
                *next += 1;
                let done = collected.len() == members.len();
                let (members, next) = (members.clone(), *next);
                if done {
                    self.finish_resolution(object, ctx);
                } else if !parallel {
                    self.send_collects(object, rid, &members, next, ctx);
                }
            }
            _ => {}
        }
    }

    fn finish_resolution(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let mine = self.store.replica(object).expect("opened").version().clone();
        let st = self.objs.get_mut(&object).expect("object state");
        let (rid, kind, members, collected, started, phase2_started, p1d, p1a) =
            match std::mem::replace(&mut st.res, ResState::Idle) {
                ResState::Phase2 {
                    rid,
                    kind,
                    members,
                    collected,
                    started,
                    phase2_started,
                    phase1_dispatch,
                    phase1_acked,
                    ..
                } => (rid, kind, members, collected, started, phase2_started, phase1_dispatch, phase1_acked),
                other => {
                    st.res = other;
                    return;
                }
            };

        let mut candidates = collected;
        candidates.push((self.me, mine));
        let any_conflict = {
            let (_, first) = &candidates[0];
            candidates
                .iter()
                .any(|(_, evv)| !matches!(evv.compare(first), idea_vv::VvOrdering::Equal))
        };
        let reference = choose_reference(self.cfg.policy, &candidates, &self.priorities);

        // Inform every member (parallel fan-out), then reconcile locally.
        for &m in &members {
            ctx.send(m, IdeaMsg::Inform { rid, object, reference: reference.clone() });
        }
        let inform_dispatch = self.cfg.dispatch_cost.saturating_mul(members.len() as u64);
        let now = ctx.now();
        self.apply_reference(object, &reference, ctx);

        self.res_log.push(ResolutionRecord {
            rid,
            kind,
            members: members.len(),
            started,
            phase1_dispatch: p1d,
            phase1_acked: p1a,
            phase2: now.saturating_since(phase2_started) + inform_dispatch,
            resolved_conflict: any_conflict,
        });
        self.resolutions += 1;
        self.round_objects.remove(&rid);
    }

    /// Brings the local replica to the reference state: drop unsanctioned
    /// updates, fetch missing ones from the winner.
    fn apply_reference(
        &mut self,
        object: ObjectId,
        reference: &ReferenceState,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let my_writer = self.store.writer();
        let replica = self.store.open(object);
        let _invalidated = replica.drop_extras(&reference.counts);
        let have = replica.version().counters();
        // Local sequencing resumes from the sanctioned count (see module
        // docs on sequence reuse).
        let resume = reference.counts.get(my_writer).max(have.get(my_writer));
        self.store.resume_writes_after(object, resume);

        let need = have.missing_from(&reference.counts);
        match reference.winner {
            Some(w) if w != self.me && need > 0 => {
                ctx.send(w, IdeaMsg::FetchRequest { object, have });
                // Level settles when the fetch lands.
            }
            _ => {
                let st = self.objs.get_mut(&object).expect("object state");
                st.level = ConsistencyLevel::PERFECT;
            }
        }
    }

    fn on_inform(
        &mut self,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        reference: ReferenceState,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        self.ensure_obj(object);
        let now = ctx.now();
        self.note_counters(object, &reference.counts, now);
        let st = self.objs.get_mut(&object).expect("ensured");
        // Release the attention lease this inform concludes.
        if let Some((holder, held_rid, _)) = st.attention {
            if holder == from && held_rid == rid {
                st.attention = None;
            }
        }
        // A competing initiator in back-off cancels: consistency has just
        // been restored by someone else (§4.5.2).
        if matches!(st.res, ResState::BackOff { .. }) {
            st.res = ResState::Idle;
        }
        self.apply_reference(object, &reference, ctx);
    }

    fn on_fetch_request(
        &mut self,
        from: NodeId,
        object: ObjectId,
        have: VersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Ok(replica) = self.store.replica(object) else { return };
        let updates = replica.updates_beyond(&have);
        ctx.send(from, IdeaMsg::FetchReply { object, updates });
    }

    fn on_fetch_reply(
        &mut self,
        object: ObjectId,
        updates: Vec<Update>,
        _ctx: &mut dyn Context<IdeaMsg>,
    ) {
        self.store.open(object);
        for u in updates {
            let _ = self.store.ingest(u);
        }
        if let Some(st) = self.objs.get_mut(&object) {
            st.level = ConsistencyLevel::PERFECT;
        }
    }

    fn on_backoff_timer(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let st = match self.objs.get_mut(&object) {
            Some(st) => st,
            None => return,
        };
        if matches!(st.res, ResState::BackOff { .. }) {
            st.res = ResState::Idle;
            // Retry only if the level still violates the floor (the other
            // initiator's resolution may already have fixed it).
            let level = st.level;
            if self.hint.on_sample(level) == AdaptAction::Resolve {
                self.start_active_resolution(object, ctx);
            }
        }
    }

    fn ensure_obj(&mut self, object: ObjectId) {
        if !self.objs.contains_key(&object) {
            self.objs.insert(
                object,
                ObjState {
                    layer: TwoLayer::new(object, self.cfg.top_layer),
                    gossip: GossipRouter::new(self.me, self.cfg.gossip),
                    known_counts: VersionVector::new(),
                    detect: None,
                    detect_timer: None,
                    detect_rounds: 0,
                    level: ConsistencyLevel::PERFECT,
                    res: ResState::Idle,
                    sweeps: HashMap::new(),
                    attention: None,
                    has_read: false,
                    announces: 0,
                },
            );
        }
    }
}

impl Proto for IdeaNode {
    type Msg = IdeaMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        if let Some(period) = self.cfg.background_period {
            for object in self.store.objects() {
                ctx.set_timer(period, pack(K_BACKGROUND, object.0));
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        match msg {
            IdeaMsg::DetectRequest { round, object, evv } => {
                self.on_detect_request(from, round, object, evv, ctx)
            }
            IdeaMsg::DetectReply { round, object, evv } => {
                self.on_detect_reply(from, round, object, evv, ctx)
            }
            IdeaMsg::CallForAttention { rid, object } => {
                self.on_call_for_attention(from, rid, object, ctx)
            }
            IdeaMsg::Attention { rid, object, granted } => {
                self.on_attention(from, rid, object, granted, ctx)
            }
            IdeaMsg::CollectRequest { rid, object } => {
                self.on_collect_request(from, rid, object, ctx)
            }
            IdeaMsg::CollectReply { rid, object, evv } => {
                self.on_collect_reply(from, rid, object, evv, ctx)
            }
            IdeaMsg::Inform { rid, object, reference } => {
                self.on_inform(from, rid, object, reference, ctx)
            }
            IdeaMsg::FetchRequest { object, have } => {
                self.on_fetch_request(from, object, have, ctx)
            }
            IdeaMsg::FetchReply { object, updates } => self.on_fetch_reply(object, updates, ctx),
            IdeaMsg::SweepRumor { id, ttl, object, counters } => {
                self.on_sweep_rumor(id, ttl, object, counters, ctx)
            }
            IdeaMsg::SweepDivergence { object, sweep, evv } => {
                self.on_sweep_divergence(from, object, sweep, evv, ctx)
            }
        }
    }

    fn on_timer(&mut self, _timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        let (base, low) = unpack(kind);
        match base {
            K_DETECT => {
                if let Some(object) = self.round_objects.remove(&low) {
                    // Deadline: complete with whoever answered.
                    let has_round = self
                        .objs
                        .get(&object)
                        .map(|st| st.detect.is_some())
                        .unwrap_or(false);
                    if has_round {
                        self.finish_detect_round(object, ctx);
                    }
                }
            }
            K_BACKGROUND => self.on_background_timer(ObjectId(low), ctx),
            K_BACKOFF => self.on_backoff_timer(ObjectId(low), ctx),
            K_SWEEP => self.on_sweep_deadline(low, ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};
    use idea_types::SimDuration;

    const OBJ: ObjectId = ObjectId(1);

    fn cluster(n: usize, cfg: IdeaConfig, seed: u64) -> SimEngine<IdeaNode> {
        let nodes: Vec<IdeaNode> =
            (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
        SimEngine::new(Topology::planetlab(n, seed), SimConfig { seed, ..Default::default() }, nodes)
    }

    fn write(eng: &mut SimEngine<IdeaNode>, node: u32, delta: i64) {
        eng.with_node(NodeId(node), |p, ctx| {
            p.local_write(OBJ, delta, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
    }

    /// Warm up: every writer writes twice so the top layer forms.
    fn warm_up(eng: &mut SimEngine<IdeaNode>, writers: &[u32]) {
        for round in 0..2 {
            for &w in writers {
                write(eng, w, 1);
                eng.run_for(SimDuration::from_millis(500));
            }
            let _ = round;
        }
        eng.run_for(SimDuration::from_secs(2));
    }

    #[test]
    fn top_layer_forms_after_warm_up() {
        let mut eng = cluster(8, IdeaConfig::default(), 1);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for w in 0..4u32 {
            let members = eng.node(NodeId(w)).report(OBJ).top_members;
            assert_eq!(
                members,
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                "writer {w} sees the wrong top layer"
            );
        }
        // A bottom node learned about the writers from announce rumors.
        let bottom_view = eng.node(NodeId(6)).report(OBJ).top_members;
        assert!(!bottom_view.is_empty(), "bottom nodes discover hot writers");
    }

    #[test]
    fn writes_degrade_consistency_levels() {
        let mut eng = cluster(8, IdeaConfig::default(), 2);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        // Pile on divergent writes without any resolution.
        for wave in 0..4 {
            for w in 0..4u32 {
                write(&mut eng, w, 1);
            }
            eng.run_for(SimDuration::from_secs(5));
            let _ = wave;
        }
        let worst = (0..4u32)
            .map(|w| eng.node(NodeId(w)).level(OBJ))
            .min()
            .unwrap();
        assert!(
            worst < ConsistencyLevel::new(0.97),
            "divergence must show up in the level, got {worst}"
        );
    }

    #[test]
    fn demanded_resolution_converges_replicas() {
        let mut eng = cluster(6, IdeaConfig::default(), 3);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for w in 0..4u32 {
            write(&mut eng, w, 2);
        }
        eng.run_for(SimDuration::from_secs(2));
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(5));

        // All top-layer replicas match the reference (highest id = node 3).
        let reference_meta = eng.node(NodeId(3)).report(OBJ).meta;
        for w in 0..4u32 {
            let rep = eng.node(NodeId(w)).report(OBJ);
            assert_eq!(rep.meta, reference_meta, "node {w} diverges after resolution");
            assert_eq!(rep.level, ConsistencyLevel::PERFECT, "node {w} level");
        }
        let log = eng.node(NodeId(0)).resolution_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, ResolutionKind::Active);
        assert_eq!(log[0].members, 3);
        assert!(log[0].resolved_conflict);
        assert!(log[0].phase1_acked > SimDuration::ZERO);
        assert!(log[0].phase2 > SimDuration::from_millis(100));
    }

    #[test]
    fn hint_floor_triggers_automatic_resolution() {
        let mut cfg = IdeaConfig::whiteboard(0.95);
        cfg.hint_delta = 0.01;
        let mut eng = cluster(6, cfg, 4);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        // Divergent writes for 30 s; the hint controller must fire at least
        // one active resolution on its own.
        for _ in 0..6 {
            for w in 0..4u32 {
                write(&mut eng, w, 1);
            }
            eng.run_for(SimDuration::from_secs(5));
        }
        let total_resolutions: u64 = (0..4u32)
            .map(|w| eng.node(NodeId(w)).report(OBJ).resolutions_initiated)
            .sum();
        assert!(total_resolutions >= 1, "hint-driven resolution never fired");
        // And levels were pulled back up.
        let worst = (0..4u32).map(|w| eng.node(NodeId(w)).level(OBJ)).min().unwrap();
        assert!(worst >= ConsistencyLevel::new(0.85), "worst {worst}");
    }

    #[test]
    fn background_resolution_runs_periodically() {
        let cfg = IdeaConfig::booking(SimDuration::from_secs(20));
        let mut eng = cluster(6, cfg, 5);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for wave in 0..20 {
            for w in 0..4u32 {
                write(&mut eng, w, 1);
            }
            eng.run_for(SimDuration::from_secs(5));
            let _ = wave;
        }
        // 100 s of writes with a 20 s period: the lowest-id top member
        // (node 0) initiated several background rounds.
        let rep = eng.node(NodeId(0)).report(OBJ);
        assert!(
            rep.resolutions_initiated >= 3,
            "expected several background rounds, got {}",
            rep.resolutions_initiated
        );
        let log = eng.node(NodeId(0)).resolution_log();
        assert!(log.iter().all(|r| r.kind == ResolutionKind::Background));
        assert!(log.iter().all(|r| r.phase1_dispatch.is_zero()), "no phase 1 in background");
        // Nobody else initiated.
        for w in 1..4u32 {
            assert_eq!(eng.node(NodeId(w)).report(OBJ).resolutions_initiated, 0);
        }
    }

    #[test]
    fn contended_active_resolution_backs_off() {
        let mut eng = cluster(6, IdeaConfig::default(), 6);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for w in 0..4u32 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(2));
        // Two initiators demand resolution simultaneously.
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.with_node(NodeId(2), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(8));
        // At least one completed; replicas converged.
        let completed: u64 = (0..4u32)
            .map(|w| eng.node(NodeId(w)).report(OBJ).resolutions_initiated)
            .sum();
        assert!(completed >= 1);
        let reference_meta = eng.node(NodeId(3)).report(OBJ).meta;
        for w in 0..4u32 {
            assert_eq!(eng.node(NodeId(w)).report(OBJ).meta, reference_meta);
        }
    }

    #[test]
    fn sweep_detects_bottom_layer_writer_and_rolls_back() {
        let mut cfg = IdeaConfig::default();
        cfg.sweep_every = Some(1); // sweep after every detection round
        cfg.sweep_deadline = SimDuration::from_secs(3);
        cfg.rollback_resolve = false;
        let mut eng = cluster(10, cfg, 7);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        // A bottom-layer node (8) writes once — invisible to the top layer.
        write(&mut eng, 8, 50);
        eng.run_for(SimDuration::from_secs(1));
        // Top-layer writer probes; its sweep should find node 8's update.
        for _ in 0..4 {
            write(&mut eng, 0, 1);
            eng.run_for(SimDuration::from_secs(4));
        }
        let rep = eng.node(NodeId(0)).report(OBJ);
        assert!(rep.rollbacks >= 1, "bottom-layer divergence never confirmed");
    }

    #[test]
    fn read_triggers_detection_per_policy() {
        let mut eng = cluster(6, IdeaConfig::default(), 8);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        write(&mut eng, 1, 3);
        eng.run_for(SimDuration::from_secs(1));
        // A fresh read on node 2 triggers a detection round; afterwards its
        // level reflects the divergence.
        let before = eng.node(NodeId(2)).level(OBJ);
        eng.with_node(NodeId(2), |p, ctx| {
            let snap = p.read(OBJ, ctx).expect("replica exists");
            assert_eq!(snap.object, OBJ);
        });
        eng.run_for(SimDuration::from_secs(2));
        let after = eng.node(NodeId(2)).level(OBJ);
        assert!(after <= before, "read-triggered round must refresh the level");
    }

    #[test]
    fn invalidate_both_policy_truncates_to_common_prefix() {
        let mut cfg = IdeaConfig::default();
        cfg.policy = ResolutionPolicy::InvalidateBoth;
        let mut eng = cluster(6, cfg, 9);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        let warm_updates = eng.node(NodeId(3)).report(OBJ).updates;
        let _ = warm_updates;
        for w in 0..4u32 {
            write(&mut eng, w, 7);
        }
        eng.run_for(SimDuration::from_secs(1));
        eng.with_node(NodeId(1), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(5));
        // Everyone ends identical (the common prefix), conflicting updates
        // of ALL writers invalidated.
        let metas: Vec<i64> = (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).meta).collect();
        assert!(metas.windows(2).all(|m| m[0] == m[1]), "metas diverge: {metas:?}");
        let counts: Vec<usize> =
            (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).updates).collect();
        assert!(counts.windows(2).all(|c| c[0] == c[1]));
    }

    #[test]
    fn priority_policy_prefers_the_supervisor() {
        let mut cfg = IdeaConfig::default();
        cfg.policy = ResolutionPolicy::PriorityWins;
        let mut eng = cluster(6, cfg, 10);
        // Node 1 is the supervisor everywhere.
        for n in 0..6u32 {
            eng.node_mut(NodeId(n)).set_priority(NodeId(1), 9);
        }
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for w in 0..4u32 {
            write(&mut eng, w, (w as i64 + 1) * 10);
        }
        eng.run_for(SimDuration::from_secs(1));
        let supervisor_meta = eng.node(NodeId(1)).report(OBJ).meta;
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(5));
        for w in 0..4u32 {
            assert_eq!(
                eng.node(NodeId(w)).report(OBJ).meta,
                supervisor_meta,
                "node {w} must adopt the supervisor's state"
            );
        }
    }

    #[test]
    fn parallel_phase2_is_faster_than_sequential() {
        let run = |parallel: bool| -> SimDuration {
            let mut cfg = IdeaConfig::default();
            cfg.parallel_phase2 = parallel;
            let mut eng = cluster(6, cfg, 11);
            warm_up(&mut eng, &[0, 1, 2, 3]);
            for w in 0..4u32 {
                write(&mut eng, w, 1);
            }
            eng.run_for(SimDuration::from_secs(1));
            eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
            eng.run_for(SimDuration::from_secs(5));
            let log = eng.node(NodeId(0)).resolution_log();
            assert!(!log.is_empty());
            log[0].phase2
        };
        let seq = run(false);
        let par = run(true);
        assert!(
            par < seq,
            "parallel phase 2 ({par}) must beat sequential ({seq}) — §6.2's suggested optimisation"
        );
    }
}
