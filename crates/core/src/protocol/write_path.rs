//! The write path: local writes, read policies, snapshot serving, and the
//! update-transfer surface (fetch request/reply) that ships missing updates
//! between replicas.
//!
//! This subsystem owns only per-object read/announce bookkeeping; whether a
//! write or read must *probe* the top layer is reported back to the node,
//! which forwards it to the detection subsystem — the write path never
//! touches detection state.

use super::lazy::dispatch_rumor;
use super::NodeCore;
use crate::messages::IdeaMsg;
use idea_net::Context;
use idea_store::Snapshot;
use idea_types::{ConsistencyLevel, NodeId, ObjectId, Result, Update, UpdatePayload};
use idea_vv::VersionVector;
use std::collections::BTreeMap;

/// Per-object write-path state.
#[derive(Debug, Default)]
struct WriteState {
    /// Whether this node has served a read of the object before.
    has_read: bool,
    /// Bootstrap announces sent so far (bounded; see [`WritePath::local_write`]).
    announces: u64,
}

/// The write-path subsystem.
#[derive(Default)]
pub(crate) struct WritePath {
    states: BTreeMap<ObjectId, WriteState>,
}

impl WritePath {
    fn state(&mut self, object: ObjectId) -> &mut WriteState {
        self.states.entry(object).or_default()
    }

    /// Issues a local write (§4.2: "The write operation … triggers the IDEA
    /// protocol because it … will surely cause inconsistency among
    /// replicas"). The caller must start a detection round afterwards.
    pub fn local_write(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Update {
        let now = ctx.now();
        let update = core.store.write(object, now, meta_delta, payload);
        let me = core.me;
        let shared = core.obj_mut(object);
        shared.layer.observe_update(me, now);
        // Bootstrap: a handful of gossip announces per writer lets the
        // overlay discover hot writers transitively (RanSub's role in §4.1).
        // Bounded so steady-state traffic is detection-only.
        let announces = self.state(object).announces;
        let needs_announce =
            announces < 3 || !shared.layer.is_top(me) || shared.layer.top_peers(me).is_empty();
        if needs_announce {
            self.state(object).announces += 1;
            self.announce(core, object, ctx);
        }
        update
    }

    /// Serves a read from the local replica. Returns the snapshot plus
    /// whether the read policy demands a detection probe (§4.2).
    ///
    /// The probe decision runs on the borrowing
    /// [`idea_store::SnapshotView`]; the version vector is cloned exactly
    /// once, for the owned snapshot handed to the caller. Callers that only
    /// need the value view should use the protocol layer's `peek` instead
    /// and never pay the clone.
    pub fn read(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Result<(Snapshot, bool)> {
        let view = core.store.read_view(object)?;
        let policy = core.cfg.read_policy;
        let stale = view
            .latest_update
            .map(|t| ctx.now().saturating_since(t) > policy.stale_after)
            .unwrap_or(false);
        let snapshot = view.to_owned();
        let st = self.state(object);
        let fresh = !st.has_read;
        st.has_read = true;
        let probe = (fresh && policy.fresh_read_triggers) || stale;
        Ok((snapshot, probe))
    }

    /// Gossips every writer count this node knows (own plus learned) so the
    /// overlay discovers hot writers *transitively* — the role RanSub's
    /// random subsets play in §4.1.
    fn announce(&mut self, core: &mut NodeCore, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let mut counters = core.store.replica(object).expect("opened").version().counters().clone();
        core.ensure_everyone(ctx.node_count());
        let everyone = &core.everyone;
        let shared = core.objs.get_mut(&object).expect("object state");
        counters.merge(&shared.known_counts);
        let (id, _ttl, plan) = shared.gossip.originate(everyone, ctx.rng());
        dispatch_rumor(core, object, id, plan, &counters, ctx);
    }

    /// A peer asked for the updates it is missing: ship them (batched).
    /// With `max_fetch_updates` configured the backlog is truncated to the
    /// chunk bound — `updates_beyond` walks the log in order, so any
    /// prefix is per-writer seq-consecutive and safe to ingest — and
    /// `done: false` tells the requester to come back with its advanced
    /// counters as the continuation cursor.
    pub fn on_fetch_request(
        &self,
        core: &NodeCore,
        from: NodeId,
        object: ObjectId,
        have: VersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Ok(replica) = core.store.replica(object) else {
            return;
        };
        let mut updates = replica.updates_beyond(&have);
        let done = match core.cfg.max_fetch_updates {
            Some(cap) if updates.len() > cap => {
                updates.truncate(cap);
                false
            }
            _ => true,
        };
        ctx.send(from, IdeaMsg::FetchReply { object, updates, done });
    }

    /// Missing updates arrived: ingest them, then either settle the level
    /// (`done`) or request the next chunk from the sender, cursored by the
    /// counters the ingest just advanced.
    pub fn on_fetch_reply(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        object: ObjectId,
        updates: Vec<Update>,
        done: bool,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        core.store.open(object);
        for u in updates {
            let _ = core.store.ingest(u);
        }
        if done {
            if let Some(st) = core.objs.get_mut(&object) {
                st.level = ConsistencyLevel::PERFECT;
            }
        } else {
            let have = core.store.replica(object).expect("opened").version().counters().clone();
            ctx.send(from, IdeaMsg::FetchRequest { object, have });
        }
    }
}
