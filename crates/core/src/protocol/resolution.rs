//! The resolution driver: active two-phase resolution (call-for-attention,
//! then collect-and-inform, §4.5.2) and background periodic resolution,
//! both delegating policy decisions to [`crate::resolution`].
//!
//! Owns the per-object resolution state machine, the attention leases
//! members grant to initiators, and the completed-round log. Talks to the
//! rest of the node only through [`NodeCore`] (store, overlay view, level,
//! hint controller) — swapping this driver for another strategy leaves the
//! write path and detection untouched.

use super::reference::{apply_reference, backoff_delay, send_collects};
use super::{pack, NodeCore, K_BACKGROUND, K_BACKOFF};
use crate::adapt::AdaptAction;
use crate::messages::IdeaMsg;
use crate::resolution::{choose_reference, ReferenceWire, ResolutionKind, ResolutionRecord};
use idea_net::Context;
use idea_types::{NodeId, ObjectId, SimTime};
use idea_vv::VersionVector;
use std::collections::{BTreeMap, VecDeque};

/// The initiator's own vector snapshot taken at phase-2 entry: the
/// `summary` rides every collect request of the round and the full
/// `baseline` losslessly reconstructs each member's [`idea_vv::VvDelta`]
/// answer. `None` in legacy (`compact_resolution = false`) rounds.
#[derive(Debug, Clone)]
pub(super) struct CollectProbe {
    pub summary: idea_vv::VvSummary,
    pub baseline: idea_vv::ExtendedVersionVector,
}

/// Resolution state machine of one object at one node.
#[derive(Debug, Default)]
enum ResState {
    #[default]
    Idle,
    /// Waiting for call-for-attention acknowledgements (§4.5.2 phase 1).
    Phase1 { rid: u64, awaiting: Vec<NodeId>, started: SimTime, dispatch: idea_types::SimDuration },
    /// Collecting version vectors (phase 2), then informing.
    Phase2 {
        rid: u64,
        kind: ResolutionKind,
        members: Vec<NodeId>,
        collected: Vec<(NodeId, idea_vv::ExtendedVersionVector)>,
        next: usize,
        started: SimTime,
        phase2_started: SimTime,
        phase1_dispatch: idea_types::SimDuration,
        phase1_acked: idea_types::SimDuration,
        probe: Option<Box<CollectProbe>>,
    },
    /// Lost the call-for-attention race; retrying after a random delay.
    /// The abandoned round id is kept for debugging/log output.
    BackOff {
        #[allow(dead_code)]
        rid: u64,
    },
}

/// Bound on the per-object collect-answer snapshots a member retains (the
/// reference a delta-encoded `Inform` resolves against). A member is in at
/// most one round per initiator at a time, so in practice one or two live
/// entries exist; the bound only guards against initiators that die
/// mid-round and never inform.
const ACKED_SNAPSHOT_CAP: usize = 32;

/// Per-object resolution-side state.
#[derive(Debug, Default)]
struct ResObj {
    state: ResState,
    /// Attention granted to `(initiator, rid, at)` — the phase-1 lock.
    attention: Option<(NodeId, u64, SimTime)>,
    /// Counter snapshots of this node's own collect answers, keyed by
    /// `(initiator, rid)`; FIFO-bounded by [`ACKED_SNAPSHOT_CAP`].
    acked: VecDeque<((NodeId, u64), VersionVector)>,
}

impl ResObj {
    fn remember_ack(&mut self, from: NodeId, rid: u64, counts: VersionVector) {
        self.acked.retain(|(key, _)| *key != (from, rid));
        if self.acked.len() >= ACKED_SNAPSHOT_CAP {
            self.acked.pop_front();
        }
        self.acked.push_back(((from, rid), counts));
    }

    fn take_ack(&mut self, from: NodeId, rid: u64) -> Option<VersionVector> {
        let idx = self.acked.iter().position(|(key, _)| *key == (from, rid))?;
        self.acked.remove(idx).map(|(_, counts)| counts)
    }
}

/// The resolution subsystem.
#[derive(Default)]
pub(crate) struct ResolutionDriver {
    states: BTreeMap<ObjectId, ResObj>,
    /// Completed resolution records (Table 2 / Figure 9 raw data).
    log: Vec<ResolutionRecord>,
    /// Resolution rounds this node initiated to completion.
    completed: u64,
}

/// Snapshots the initiator's replica for a compact collect round; `None`
/// when the legacy full-EVV wire is configured. The wire summary carries
/// a zero-length timestamp tail: members only diff against its counters
/// (`suffix_since`), and the initiator reconstructs replies against the
/// full `baseline` it kept locally — shipping a tail would be pure
/// overhead on every collect request.
fn make_probe(core: &mut NodeCore, object: ObjectId) -> Option<Box<CollectProbe>> {
    core.cfg.compact_resolution.then(|| {
        let baseline = core.store.open(object).version().clone();
        Box::new(CollectProbe { summary: baseline.summary(0), baseline })
    })
}

impl ResolutionDriver {
    fn state(&mut self, object: ObjectId) -> &mut ResObj {
        self.states.entry(object).or_default()
    }

    /// Completed resolution records.
    pub fn log(&self) -> &[ResolutionRecord] {
        &self.log
    }

    /// Resolution rounds this node initiated to completion.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True while a resolution round involves this node as initiator (or it
    /// is backing off from one).
    pub fn is_resolving(&self, object: ObjectId) -> bool {
        self.states.get(&object).is_some_and(|s| !matches!(s.state, ResState::Idle))
    }

    /// Starts an active two-phase resolution (phase 1: call for attention).
    pub fn start_active(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if !matches!(self.state(object).state, ResState::Idle) {
            return; // already resolving or backing off
        }
        let me = core.me;
        let members = core.obj_mut(object).layer.top_peers(me);
        if members.is_empty() {
            return;
        }
        let rid = core.fresh_id();
        let dispatch = core.cfg.dispatch_cost.saturating_mul(members.len() as u64);
        self.state(object).state =
            ResState::Phase1 { rid, awaiting: members.clone(), started: ctx.now(), dispatch };
        for m in members {
            ctx.send(m, IdeaMsg::CallForAttention { rid, object });
        }
    }

    /// Member side of phase 1: grant or refuse attention. Contending
    /// initiators tie-break by id — the larger id proceeds, the smaller
    /// backs off (a deterministic rendering of §4.5.2's "back-off and retry
    /// after a random amount of time").
    pub fn on_call_for_attention(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        core.store.open(object);
        core.ensure_obj(object);
        let lease = core.cfg.attention_lease;
        let now = ctx.now();
        let me = core.me;
        let st = self.state(object);

        let i_am_initiating = matches!(st.state, ResState::Phase1 { .. });
        if i_am_initiating && from < me {
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: false });
            return;
        }
        if i_am_initiating && from > me {
            // Yield: abandon my round and retry later.
            let my_rid = match st.state {
                ResState::Phase1 { rid, .. } => rid,
                _ => unreachable!("checked above"),
            };
            st.state = ResState::BackOff { rid: my_rid };
            let delay = backoff_delay(core, ctx);
            ctx.set_timer(delay, pack(K_BACKOFF, core.shard, object.0));
            let st = self.state(object);
            st.attention = Some((from, rid, now));
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: true });
            return;
        }

        // Plain member: grant when the lease is free, expired, already held
        // by this caller, or held by a *lower-id* initiator — the same
        // higher-id-wins tie-break as above, so one contender always
        // assembles a full grant set and the race cannot livelock.
        let grant = match st.attention {
            Some((holder, _, at)) => {
                holder == from || now.saturating_since(at) >= lease || from > holder
            }
            None => true,
        };
        if grant {
            st.attention = Some((from, rid, now));
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: true });
        } else {
            ctx.send(from, IdeaMsg::Attention { rid, object, granted: false });
        }
    }

    /// Initiator side of phase 1: collect acknowledgements; a refusal sends
    /// us into back-off, the final grant moves us to phase 2.
    pub fn on_attention(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        granted: bool,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(st) = self.states.get_mut(&object) else {
            return;
        };
        let (my_rid, mut awaiting, started, dispatch) = match &st.state {
            ResState::Phase1 { rid: r, awaiting, started, dispatch } => {
                (*r, awaiting.clone(), *started, *dispatch)
            }
            _ => return,
        };
        if my_rid != rid {
            return;
        }
        if !granted {
            // Contention: back off and retry (§4.5.2).
            st.state = ResState::BackOff { rid };
            let delay = backoff_delay(core, ctx);
            ctx.set_timer(delay, pack(K_BACKOFF, core.shard, object.0));
            return;
        }
        awaiting.retain(|&n| n != from);
        if awaiting.is_empty() {
            // Phase 1 complete: move to phase 2.
            let now = ctx.now();
            let me = core.me;
            let members = core.obj_mut(object).layer.top_peers(me);
            let probe = make_probe(core, object);
            let summary = probe.as_ref().map(|p| p.summary.clone());
            let st = self.state(object);
            st.state = ResState::Phase2 {
                rid,
                kind: ResolutionKind::Active,
                members: members.clone(),
                collected: Vec::new(),
                next: 0,
                started,
                phase2_started: now,
                phase1_dispatch: dispatch,
                phase1_acked: now.saturating_since(started),
                probe,
            };
            send_collects(core, object, rid, &members, 0, summary.as_ref(), ctx);
        } else {
            st.state = ResState::Phase1 { rid, awaiting, started, dispatch };
        }
    }

    /// Background resolution timer fired: the lowest-id top-layer member
    /// initiates a collect round directly (no phase 1, §4.5.2).
    pub fn on_background_timer(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(period) = core.cfg.background_period else {
            return;
        };
        ctx.set_timer(period, pack(K_BACKGROUND, core.shard, object.0));
        let Some(shared) = core.objs.get_mut(&object) else {
            return;
        };
        let members = shared.layer.top_members().to_vec();
        let initiator = members.first().copied();
        if initiator != Some(core.me) || !matches!(self.state(object).state, ResState::Idle) {
            return;
        }
        let me = core.me;
        let peers = core.obj_mut(object).layer.top_peers(me);
        if peers.is_empty() {
            return;
        }
        let rid = core.fresh_id();
        let now = ctx.now();
        let probe = make_probe(core, object);
        let summary = probe.as_ref().map(|p| p.summary.clone());
        self.state(object).state = ResState::Phase2 {
            rid,
            kind: ResolutionKind::Background,
            members: peers.clone(),
            collected: Vec::new(),
            next: 0,
            started: now,
            phase2_started: now,
            phase1_dispatch: idea_types::SimDuration::ZERO,
            phase1_acked: idea_types::SimDuration::ZERO,
            probe,
        };
        send_collects(core, object, rid, &peers, 0, summary.as_ref(), ctx);
    }

    /// Member side of phase 2: report our vector — as suffixes beyond the
    /// request's probe when one was carried, as the legacy full vector
    /// otherwise. Either way the counters we answered with are snapshotted
    /// so a delta-encoded `Inform` of the same round can resolve against
    /// them. The probe is deliberately *not* folded into our own known
    /// counts: observing it would perturb detection state and break the
    /// bit-for-bit equivalence between the compact and legacy wires.
    pub fn on_collect_request(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        probe: Option<idea_vv::VvSummary>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        core.store.open(object);
        let evv = core.store.replica(object).expect("opened").version().clone();
        self.state(object).remember_ack(from, rid, evv.counters().clone());
        match probe {
            Some(probe) => {
                let delta = evv.suffix_since(&probe.counters);
                ctx.send(from, IdeaMsg::CollectDelta { rid, object, delta });
            }
            None => ctx.send(from, IdeaMsg::CollectReply { rid, object, evv }),
        }
    }

    /// Initiator side of phase 2, compact form: reconstruct the member's
    /// full vector against the round's probe baseline, then proceed
    /// exactly as for a legacy reply — reference selection cannot tell the
    /// two wires apart.
    pub fn on_collect_delta(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        delta: idea_vv::VvDelta,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(st) = self.states.get_mut(&object) else {
            return;
        };
        let evv = match &st.state {
            ResState::Phase2 { rid: r, probe: Some(probe), .. } if *r == rid => {
                probe.baseline.reconstruct(&delta)
            }
            _ => return,
        };
        self.on_collect_reply(core, from, rid, object, evv, ctx);
    }

    /// Initiator side of phase 2: gather vectors (sequentially or in
    /// parallel per the config), then pick and publish the reference.
    pub fn on_collect_reply(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        evv: idea_vv::ExtendedVersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let now = ctx.now();
        core.note_counters(object, evv.counters(), now);
        let Some(st) = self.states.get_mut(&object) else {
            return;
        };
        let parallel = core.cfg.parallel_phase2;
        match &mut st.state {
            ResState::Phase2 { rid: r, members, collected, next, probe, .. } if *r == rid => {
                if collected.iter().any(|(n, _)| *n == from) {
                    return;
                }
                collected.push((from, evv));
                *next += 1;
                let done = collected.len() == members.len();
                let summary = probe.as_ref().map(|p| p.summary.clone());
                let (members, next) = (members.clone(), *next);
                if done {
                    self.finish(core, object, ctx);
                } else if !parallel {
                    send_collects(core, object, rid, &members, next, summary.as_ref(), ctx);
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self, core: &mut NodeCore, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        let mine = core.store.replica(object).expect("opened").version().clone();
        let st = self.state(object);
        let (rid, kind, members, collected, started, phase2_started, p1d, p1a, compact) =
            match std::mem::take(&mut st.state) {
                ResState::Phase2 {
                    rid,
                    kind,
                    members,
                    collected,
                    started,
                    phase2_started,
                    phase1_dispatch,
                    phase1_acked,
                    probe,
                    ..
                } => (
                    rid,
                    kind,
                    members,
                    collected,
                    started,
                    phase2_started,
                    phase1_dispatch,
                    phase1_acked,
                    probe.is_some(),
                ),
                other => {
                    st.state = other;
                    return;
                }
            };

        let mut candidates = collected;
        candidates.push((core.me, mine));
        let any_conflict = {
            let (_, first) = &candidates[0];
            candidates
                .iter()
                .any(|(_, evv)| !matches!(evv.compare(first), idea_vv::VvOrdering::Equal))
        };
        let reference = choose_reference(core.cfg.policy, &candidates, &core.priorities);

        // Inform every member (parallel fan-out), then reconcile locally.
        // In compact rounds each member gets the reference encoded against
        // the counters it itself reported — typically a handful of
        // override entries; the self-contained full form is the fallback
        // for legacy rounds and for whichever member a delta would not
        // shrink.
        for &m in &members {
            let wire = if compact {
                candidates
                    .iter()
                    .find(|(n, _)| *n == m)
                    .map(|(_, evv)| ReferenceWire::encode(&reference, evv.counters()))
                    .unwrap_or_else(|| ReferenceWire::Full(reference.clone()))
            } else {
                ReferenceWire::Full(reference.clone())
            };
            ctx.send(m, IdeaMsg::Inform { rid, object, reference: wire });
        }
        let inform_dispatch = core.cfg.dispatch_cost.saturating_mul(members.len() as u64);
        let now = ctx.now();
        apply_reference(core, object, &reference, ctx);

        self.log.push(ResolutionRecord {
            rid,
            kind,
            members: members.len(),
            started,
            phase1_dispatch: p1d,
            phase1_acked: p1a,
            phase2: now.saturating_since(phase2_started) + inform_dispatch,
            resolved_conflict: any_conflict,
        });
        self.completed += 1;
    }

    /// Member side of the inform: release the attention lease, cancel a
    /// pending back-off (consistency was just restored by someone else,
    /// §4.5.2), and adopt the reference. A delta-encoded reference
    /// resolves against the counter snapshot stored when this node
    /// answered the round's collect; on the (eviction-only) snapshot miss
    /// the adoption is skipped and the next background round reconciles.
    pub fn on_inform(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        rid: u64,
        object: ObjectId,
        reference: ReferenceWire,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        core.store.open(object);
        core.ensure_obj(object);
        let st = self.state(object);
        let acked = st.take_ack(from, rid);
        if let Some((holder, held_rid, _)) = st.attention {
            if holder == from && held_rid == rid {
                st.attention = None;
            }
        }
        if matches!(st.state, ResState::BackOff { .. }) {
            st.state = ResState::Idle;
        }
        let reference = match (reference.needs_snapshot(), acked) {
            (true, None) => return,
            (_, acked) => reference.resolve(&acked.unwrap_or_default()),
        };
        let now = ctx.now();
        core.note_counters(object, &reference.counts, now);
        apply_reference(core, object, &reference, ctx);
    }

    /// Back-off expired: retry only if the level still violates the floor
    /// (the other initiator's resolution may already have fixed it).
    pub fn on_backoff_timer(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(st) = self.states.get_mut(&object) else {
            return;
        };
        if matches!(st.state, ResState::BackOff { .. }) {
            st.state = ResState::Idle;
            let Some(shared) = core.objs.get_mut(&object) else {
                return;
            };
            let level = shared.level;
            if core.hint_sample(level) == AdaptAction::Resolve {
                self.start_active(core, object, ctx);
            }
        }
    }
}
