//! The IDEA node: detection, quantification, resolution and adaptation
//! wired into one protocol (Figure 3 of the paper), decomposed into
//! layered subsystems and partitioned into per-object **shards**.
//!
//! Triggers (§4.2): every local **write** starts a top-layer detection
//! round; **reads** start one per the [`crate::config::ReadPolicy`]; the
//! adaptive layer starts **active resolution** when the quantified level
//! falls below the learned floor; a timer starts **background resolution**
//! periodically; every `sweep_every`-th detection round launches a
//! TTL-bounded **bottom-layer sweep** whose verdict can demand a rollback.
//!
//! ## Module layout
//!
//! | module | subsystem | owns |
//! |---|---|---|
//! | `write_path` | local writes, read policies, snapshot serving, update transfer | per-object read/announce bookkeeping |
//! | `detection` | top-layer temperature rounds + bottom-layer gossip sweeps | in-flight rounds, sweep collectors, timer routing |
//! | `resolution` | active two-phase + background periodic resolution | per-object resolution state machine, attention leases, the resolution log |
//! | `node` | [`IdeaNode`] composing the shards; implements [`idea_net::Proto`] | the shard vector and the `SharedCore` |
//!
//! ## Sharding
//!
//! Every per-object structure — the replica store, the per-object overlay
//! view (`ObjShared`), and each subsystem's per-object state — lives in
//! exactly one `node::ProtocolShard`, selected by
//! [`idea_types::ShardId::of`] over the object id
//! ([`crate::config::IdeaConfig::store_shards`] shards per node). A shard's
//! working state is a `NodeCore`; the few genuinely node-wide pieces (the
//! adaptive hint floor, the correlation-id counter, the rollback count) sit
//! behind the `SharedCore` every shard holds an `Arc` to. The borrow
//! structure makes the independence explicit: handling a message touches
//! `&mut NodeCore` of one shard plus the (internally synchronised)
//! `SharedCore`, never another shard.
//!
//! On the deterministic simulator [`IdeaNode`] routes events to shards
//! in-process, so semantics are engine-independent; the threaded engine can
//! instead split the shards onto per-node workers
//! (`idea_net::ShardedEngine`) and process disjoint objects concurrently.
//!
//! Each subsystem is a narrow struct with an explicit handle-message /
//! handle-timer surface; cross-subsystem effects flow through return values
//! (e.g. `Trigger::Resolve`) that the shard routes, so the store can be
//! re-partitioned, detection batched, or the resolution strategy swapped
//! without touching the other subsystems.
//!
//! ## Conventions
//!
//! * Writer homes: writer `w` lives on node `w` (the experiments' layout;
//!   `NodeCore::home` centralises the mapping).
//! * Sequence reuse: when resolution invalidates a writer's updates, the
//!   writer's sequence counter resumes from the last *sanctioned* number, so
//!   counters stay dense. Stale copies of invalidated updates are
//!   superseded by identity — the same trade the paper's version-vector
//!   scheme makes implicitly.
//! * Correlation ids (`round`, `rid`) are initiator-local; members key
//!   their state by `(initiator, id)`.
//! * Timer kinds pack `(kind, shard, payload)`, so a fired timer finds its
//!   shard without a global lookup — and on the threaded engine without
//!   leaving the worker that armed it.

mod detection;
mod lazy;
mod node;
mod reference;
mod resolution;
mod write_path;

#[cfg(test)]
mod tests;

pub use node::{IdeaNode, NodeReport, ProtocolShard};

use crate::adapt::{AdaptAction, HintController};
use crate::config::IdeaConfig;
use crate::quantify::Quantifier;
use idea_overlay::gossip::GossipRouter;
use idea_overlay::temperature::TwoLayer;
use idea_store::StoreShard;
use idea_types::{ConsistencyLevel, NodeId, ObjectId, ShardId, SimTime, WriterId};
use idea_vv::VersionVector;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Timer kinds (packed as `kind << 56 | shard << 48 | payload`).
pub(crate) const K_DETECT: u64 = 1;
pub(crate) const K_BACKGROUND: u64 = 2;
pub(crate) const K_BACKOFF: u64 = 3;
pub(crate) const K_SWEEP: u64 = 4;
pub(crate) const K_BATCH: u64 = 5;
pub(crate) const K_LAZY_FLUSH: u64 = 6;
pub(crate) const K_PULL: u64 = 7;

/// Most shards a node may be configured with (the timer encoding carries
/// the shard in one byte).
pub const MAX_SHARDS: usize = 256;

pub(crate) fn pack(base: u64, shard: ShardId, low: u64) -> u64 {
    (base << 56) | ((shard.0 as u64) << 48) | (low & 0xffff_ffff_ffff)
}

pub(crate) fn unpack(kind: u64) -> (u64, usize, u64) {
    (kind >> 56, ((kind >> 48) & 0xff) as usize, kind & 0xffff_ffff_ffff)
}

/// A follow-up action a subsystem requests from the composing shard.
///
/// Subsystems never call into each other directly; they report what the
/// adaptive layer decided and [`node::ProtocolShard`] routes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Trigger {
    /// No follow-up needed.
    None,
    /// The adaptive layer demands an active resolution of the object.
    Resolve,
}

/// Per-object state shared by every subsystem *of the owning shard*: the
/// two-layer overlay view, the gossip router, learned writer activity, and
/// the current level estimate. Subsystem-private state lives inside each
/// subsystem instead.
pub(crate) struct ObjShared {
    /// Top-layer membership driven by update temperature (§4.1).
    pub layer: TwoLayer,
    /// TTL-bounded gossip router for announcements and sweeps.
    pub gossip: GossipRouter,
    /// Highest per-writer counts this node has seen anywhere.
    pub known_counts: VersionVector,
    /// Current consistency-level estimate for the object.
    pub level: ConsistencyLevel,
    /// Lazy gossip plane: body cache, digest outbox, missing/pull state.
    pub lazy: lazy::LazyPlane,
}

/// The genuinely node-wide state, shared by all shards of one node.
///
/// Everything here is either atomic or behind a short-critical-section
/// mutex, so shard workers on different threads can touch it without
/// ordering constraints; on the single-threaded engines the synchronisation
/// is uncontended and the behaviour deterministic.
pub(crate) struct SharedCore {
    /// The adaptive hint controller: one learned floor per node (§4.6).
    hint: Mutex<HintController>,
    /// Correlation-id allocator (detection rounds + resolution rounds share
    /// it, so ids never collide between the two).
    next_id: AtomicU64,
    /// Rollback events (bottom-layer discrepancies confirmed), node-wide.
    rollbacks: AtomicU64,
}

impl SharedCore {
    fn new(hint: HintController) -> Self {
        SharedCore {
            hint: Mutex::new(hint),
            next_id: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }
}

/// One shard's working state: identity, configuration, the shard of the
/// store, the quantifier, and the per-object [`ObjShared`] map — plus the
/// `Arc` to the node-wide [`SharedCore`].
///
/// `cfg`, `quant` and `priorities` are read on every event, so each shard
/// keeps its own copy; the node-level setters fan updates out to all
/// shards. Only state that must be observed *across* shards (the hint
/// floor, id allocation, rollback counting) goes through [`SharedCore`].
pub(crate) struct NodeCore {
    pub me: NodeId,
    /// This shard's index within the node.
    pub shard: ShardId,
    pub cfg: IdeaConfig,
    pub quant: Quantifier,
    pub store: StoreShard,
    pub priorities: BTreeMap<NodeId, u8>,
    pub objs: BTreeMap<ObjectId, ObjShared>,
    /// All node ids in the deployment, cached so gossip fan-out never
    /// re-allocates the peer list per received rumor (refreshed by
    /// [`NodeCore::ensure_everyone`] if the deployment size changes).
    pub everyone: Vec<NodeId>,
    shared: Arc<SharedCore>,
}

impl NodeCore {
    /// Builds the shard's core hosting `objects` (already filtered to this
    /// shard by the caller).
    pub fn new(
        me: NodeId,
        shard: ShardId,
        cfg: IdeaConfig,
        objects: &[ObjectId],
        shared: Arc<SharedCore>,
    ) -> Self {
        let store = StoreShard::new(me, WriterId(me.0));
        let mut core = NodeCore {
            me,
            shard,
            quant: Quantifier::new(cfg.weights, cfg.bounds),
            cfg,
            store,
            priorities: BTreeMap::new(),
            objs: BTreeMap::new(),
            everyone: Vec::new(),
            shared,
        };
        for &o in objects {
            core.store.open(o);
            core.ensure_obj(o);
        }
        core
    }

    /// Writer `w` lives on node `w` (experiment convention; see module docs).
    pub fn home(writer: WriterId) -> NodeId {
        NodeId(writer.0)
    }

    /// The node-wide shared core this shard participates in.
    pub fn shared_handle(&self) -> &Arc<SharedCore> {
        &self.shared
    }

    /// Allocates the next correlation id (node-wide, shared across shards
    /// and across detection/resolution so ids never collide).
    pub fn fresh_id(&mut self) -> u64 {
        self.shared.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Feeds a consistency sample to the node-wide hint controller.
    pub fn hint_sample(&self, level: ConsistencyLevel) -> AdaptAction {
        self.shared.hint.lock().on_sample(level)
    }

    /// Reports user dissatisfaction to the node-wide hint controller.
    pub fn hint_user_dissatisfied(&self) -> AdaptAction {
        self.shared.hint.lock().on_user_dissatisfied()
    }

    /// The hint floor currently in force.
    pub fn hint_floor(&self) -> ConsistencyLevel {
        self.shared.hint.lock().floor()
    }

    /// Counts a confirmed bottom-layer discrepancy (node-wide).
    pub fn note_rollback(&self) {
        self.shared.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Rollback events confirmed by any shard of this node.
    pub fn rollbacks(&self) -> u64 {
        self.shared.rollbacks.load(Ordering::Relaxed)
    }

    /// Refreshes the cached deployment-wide node list (a no-op once built;
    /// engines never resize mid-run, but the cache re-derives defensively).
    pub fn ensure_everyone(&mut self, n: usize) {
        if self.everyone.len() != n {
            self.everyone = (0..n as u32).map(NodeId).collect();
        }
    }

    /// Creates the shared state of `object` on first contact.
    pub fn ensure_obj(&mut self, object: ObjectId) {
        let (me, top_layer, gossip) = (self.me, self.cfg.top_layer, self.cfg.gossip);
        self.objs.entry(object).or_insert_with(|| ObjShared {
            layer: TwoLayer::new(object, top_layer),
            gossip: GossipRouter::new(me, gossip),
            known_counts: VersionVector::new(),
            level: ConsistencyLevel::PERFECT,
            lazy: lazy::LazyPlane::default(),
        });
    }

    /// Shared state of `object`, if this shard has touched it.
    pub fn obj(&self, object: ObjectId) -> Option<&ObjShared> {
        self.objs.get(&object)
    }

    /// Shared state of `object`; panics when the object was never opened.
    pub fn obj_mut(&mut self, object: ObjectId) -> &mut ObjShared {
        self.objs.get_mut(&object).expect("object state")
    }

    /// Learns writer activity from any counters that pass by (detection,
    /// collection, gossip), feeding the temperature overlay.
    pub fn note_counters(&mut self, object: ObjectId, counters: &VersionVector, now: SimTime) {
        let st = self.objs.get_mut(&object).expect("object state");
        for (writer, count) in counters.iter() {
            let known = st.known_counts.get(writer);
            if count > known {
                let node = Self::home(writer);
                for _ in known..count {
                    st.layer.observe_update(node, now);
                }
                st.known_counts.observe(writer, count);
            }
        }
    }
}
