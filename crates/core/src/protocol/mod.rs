//! The IDEA node: detection, quantification, resolution and adaptation
//! wired into one protocol (Figure 3 of the paper), decomposed into
//! layered subsystems.
//!
//! Triggers (§4.2): every local **write** starts a top-layer detection
//! round; **reads** start one per the [`crate::config::ReadPolicy`]; the
//! adaptive layer starts **active resolution** when the quantified level
//! falls below the learned floor; a timer starts **background resolution**
//! periodically; every `sweep_every`-th detection round launches a
//! TTL-bounded **bottom-layer sweep** whose verdict can demand a rollback.
//!
//! ## Module layout
//!
//! | module | subsystem | owns |
//! |---|---|---|
//! | [`write_path`] | local writes, read policies, snapshot serving, update transfer | per-object read/announce bookkeeping |
//! | [`detection`] | top-layer temperature rounds + bottom-layer gossip sweeps | in-flight rounds, sweep collectors, timer routing |
//! | [`resolution`] | active two-phase + background periodic resolution | per-object resolution state machine, attention leases, the resolution log |
//! | [`node`] | thin [`IdeaNode`] composing the subsystems; implements [`idea_net::Proto`] | the [`NodeCore`] shared by all subsystems |
//!
//! Each subsystem is a narrow struct with an explicit handle-message /
//! handle-timer surface; cross-subsystem effects flow through return values
//! (e.g. [`Trigger::Resolve`]) that [`node`] routes, so the store can be
//! sharded, detection batched, or the resolution strategy swapped without
//! touching the other subsystems.
//!
//! ## Conventions
//!
//! * Writer homes: writer `w` lives on node `w` (the experiments' layout;
//!   [`NodeCore::home`] centralises the mapping).
//! * Sequence reuse: when resolution invalidates a writer's updates, the
//!   writer's sequence counter resumes from the last *sanctioned* number, so
//!   counters stay dense. Stale copies of invalidated updates are
//!   superseded by identity — the same trade the paper's version-vector
//!   scheme makes implicitly.
//! * Correlation ids (`round`, `rid`) are initiator-local; members key
//!   their state by `(initiator, id)`.

mod detection;
mod node;
mod reference;
mod resolution;
mod write_path;

#[cfg(test)]
mod tests;

pub use node::{IdeaNode, NodeReport};

use crate::adapt::HintController;
use crate::config::IdeaConfig;
use crate::quantify::Quantifier;
use idea_overlay::gossip::GossipRouter;
use idea_overlay::temperature::TwoLayer;
use idea_store::NodeStore;
use idea_types::{ConsistencyLevel, NodeId, ObjectId, SimTime, WriterId};
use idea_vv::VersionVector;
use std::collections::BTreeMap;

// Timer kinds (packed with a 48-bit payload).
pub(crate) const K_DETECT: u64 = 1;
pub(crate) const K_BACKGROUND: u64 = 2;
pub(crate) const K_BACKOFF: u64 = 3;
pub(crate) const K_SWEEP: u64 = 4;
pub(crate) const K_BATCH: u64 = 5;

pub(crate) fn pack(base: u64, low: u64) -> u64 {
    (base << 48) | (low & 0xffff_ffff_ffff)
}

pub(crate) fn unpack(kind: u64) -> (u64, u64) {
    (kind >> 48, kind & 0xffff_ffff_ffff)
}

/// A follow-up action a subsystem requests from the composing node.
///
/// Subsystems never call into each other directly; they report what the
/// adaptive layer decided and [`node::IdeaNode`] routes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Trigger {
    /// No follow-up needed.
    None,
    /// The adaptive layer demands an active resolution of the object.
    Resolve,
}

/// Per-object state shared by every subsystem: the two-layer overlay view,
/// the gossip router, learned writer activity, and the current level
/// estimate. Subsystem-private state lives inside each subsystem instead.
pub(crate) struct ObjShared {
    /// Top-layer membership driven by update temperature (§4.1).
    pub layer: TwoLayer,
    /// TTL-bounded gossip router for announcements and sweeps.
    pub gossip: GossipRouter,
    /// Highest per-writer counts this node has seen anywhere.
    pub known_counts: VersionVector,
    /// Current consistency-level estimate for the object.
    pub level: ConsistencyLevel,
}

/// Node-wide state shared by every subsystem: identity, configuration, the
/// store, the quantifier, the adaptive controller, and the per-object
/// [`ObjShared`] map.
pub(crate) struct NodeCore {
    pub me: NodeId,
    pub cfg: IdeaConfig,
    pub quant: Quantifier,
    pub store: NodeStore,
    pub hint: HintController,
    pub priorities: BTreeMap<NodeId, u8>,
    pub objs: BTreeMap<ObjectId, ObjShared>,
    /// Rollback events (bottom-layer discrepancies confirmed).
    pub rollbacks: u64,
    /// All node ids in the deployment, cached so gossip fan-out never
    /// re-allocates the peer list per received rumor (refreshed by
    /// [`NodeCore::ensure_everyone`] if the deployment size changes).
    pub everyone: Vec<NodeId>,
    next_id: u64,
}

impl NodeCore {
    pub fn new(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Self {
        let store = NodeStore::new(me, WriterId(me.0));
        let hint = HintController::new(cfg.hint, cfg.hint_delta);
        let mut core = NodeCore {
            me,
            quant: Quantifier::new(cfg.weights, cfg.bounds),
            cfg,
            store,
            hint,
            priorities: BTreeMap::new(),
            objs: BTreeMap::new(),
            rollbacks: 0,
            everyone: Vec::new(),
            next_id: 0,
        };
        for &o in objects {
            core.store.open(o);
            core.ensure_obj(o);
        }
        core
    }

    /// Writer `w` lives on node `w` (experiment convention; see module docs).
    pub fn home(writer: WriterId) -> NodeId {
        NodeId(writer.0)
    }

    /// Allocates the next correlation id (shared across detection rounds and
    /// resolution rounds, so ids never collide between the two).
    pub fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Refreshes the cached deployment-wide node list (a no-op once built;
    /// engines never resize mid-run, but the cache re-derives defensively).
    pub fn ensure_everyone(&mut self, n: usize) {
        if self.everyone.len() != n {
            self.everyone = (0..n as u32).map(NodeId).collect();
        }
    }

    /// Creates the shared state of `object` on first contact.
    pub fn ensure_obj(&mut self, object: ObjectId) {
        let (me, top_layer, gossip) = (self.me, self.cfg.top_layer, self.cfg.gossip);
        self.objs.entry(object).or_insert_with(|| ObjShared {
            layer: TwoLayer::new(object, top_layer),
            gossip: GossipRouter::new(me, gossip),
            known_counts: VersionVector::new(),
            level: ConsistencyLevel::PERFECT,
        });
    }

    /// Shared state of `object`, if this node has touched it.
    pub fn obj(&self, object: ObjectId) -> Option<&ObjShared> {
        self.objs.get(&object)
    }

    /// Shared state of `object`; panics when the object was never opened.
    pub fn obj_mut(&mut self, object: ObjectId) -> &mut ObjShared {
        self.objs.get_mut(&object).expect("object state")
    }

    /// Learns writer activity from any counters that pass by (detection,
    /// collection, gossip), feeding the temperature overlay.
    pub fn note_counters(&mut self, object: ObjectId, counters: &VersionVector, now: SimTime) {
        let st = self.objs.get_mut(&object).expect("object state");
        for (writer, count) in counters.iter() {
            let known = st.known_counts.get(writer);
            if count > known {
                let node = Self::home(writer);
                for _ in known..count {
                    st.layer.observe_update(node, now);
                }
                st.known_counts.observe(writer, count);
            }
        }
    }
}
