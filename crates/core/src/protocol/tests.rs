//! End-to-end tests of the composed protocol, driven on the deterministic
//! simulator. These predate the subsystem decomposition and pin its
//! behaviour; `same_seed_produces_identical_reports` additionally proves
//! the split node is bit-deterministic under a fixed engine seed.

use super::*;
use crate::config::IdeaConfig;
use crate::resolution::{ResolutionKind, ResolutionPolicy};
use idea_net::{SimConfig, SimEngine, Topology};
use idea_types::{ConsistencyLevel, NodeId, ObjectId, SimDuration, UpdatePayload};

const OBJ: ObjectId = ObjectId(1);

fn cluster(n: usize, cfg: IdeaConfig, seed: u64) -> SimEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    SimEngine::new(Topology::planetlab(n, seed), SimConfig { seed, ..Default::default() }, nodes)
}

fn write(eng: &mut SimEngine<IdeaNode>, node: u32, delta: i64) {
    eng.with_node(NodeId(node), |p, ctx| {
        p.local_write(OBJ, delta, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
    });
}

/// Warm up: every writer writes twice so the top layer forms.
fn warm_up(eng: &mut SimEngine<IdeaNode>, writers: &[u32]) {
    for round in 0..2 {
        for &w in writers {
            write(eng, w, 1);
            eng.run_for(SimDuration::from_millis(500));
        }
        let _ = round;
    }
    eng.run_for(SimDuration::from_secs(2));
}

#[test]
fn top_layer_forms_after_warm_up() {
    let mut eng = cluster(8, IdeaConfig::default(), 1);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    for w in 0..4u32 {
        let members = eng.node(NodeId(w)).report(OBJ).top_members;
        assert_eq!(
            members,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            "writer {w} sees the wrong top layer"
        );
    }
    // A bottom node learned about the writers from announce rumors.
    let bottom_view = eng.node(NodeId(6)).report(OBJ).top_members;
    assert!(!bottom_view.is_empty(), "bottom nodes discover hot writers");
}

#[test]
fn writes_degrade_consistency_levels() {
    let mut eng = cluster(8, IdeaConfig::default(), 2);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    // Pile on divergent writes without any resolution.
    for wave in 0..4 {
        for w in 0..4u32 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
        let _ = wave;
    }
    let worst = (0..4u32).map(|w| eng.node(NodeId(w)).level(OBJ)).min().unwrap();
    assert!(
        worst < ConsistencyLevel::new(0.97),
        "divergence must show up in the level, got {worst}"
    );
}

#[test]
fn demanded_resolution_converges_replicas() {
    let mut eng = cluster(6, IdeaConfig::default(), 3);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    for w in 0..4u32 {
        write(&mut eng, w, 2);
    }
    eng.run_for(SimDuration::from_secs(2));
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(5));

    // All top-layer replicas match the reference (highest id = node 3).
    let reference_meta = eng.node(NodeId(3)).report(OBJ).meta;
    for w in 0..4u32 {
        let rep = eng.node(NodeId(w)).report(OBJ);
        assert_eq!(rep.meta, reference_meta, "node {w} diverges after resolution");
        assert_eq!(rep.level, ConsistencyLevel::PERFECT, "node {w} level");
    }
    let log = eng.node(NodeId(0)).resolution_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].kind, ResolutionKind::Active);
    assert_eq!(log[0].members, 3);
    assert!(log[0].resolved_conflict);
    assert!(log[0].phase1_acked > SimDuration::ZERO);
    assert!(log[0].phase2 > SimDuration::from_millis(100));
}

#[test]
fn hint_floor_triggers_automatic_resolution() {
    let mut cfg = IdeaConfig::whiteboard(0.95);
    cfg.hint_delta = 0.01;
    let mut eng = cluster(6, cfg, 4);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    // Divergent writes for 30 s; the hint controller must fire at least
    // one active resolution on its own.
    for _ in 0..6 {
        for w in 0..4u32 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
    }
    let total_resolutions: u64 =
        (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).resolutions_initiated).sum();
    assert!(total_resolutions >= 1, "hint-driven resolution never fired");
    // And levels were pulled back up.
    let worst = (0..4u32).map(|w| eng.node(NodeId(w)).level(OBJ)).min().unwrap();
    assert!(worst >= ConsistencyLevel::new(0.85), "worst {worst}");
}

#[test]
fn background_resolution_runs_periodically() {
    let cfg = IdeaConfig::booking(SimDuration::from_secs(20));
    let mut eng = cluster(6, cfg, 5);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    for wave in 0..20 {
        for w in 0..4u32 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
        let _ = wave;
    }
    // 100 s of writes with a 20 s period: the lowest-id top member
    // (node 0) initiated several background rounds.
    let rep = eng.node(NodeId(0)).report(OBJ);
    assert!(
        rep.resolutions_initiated >= 3,
        "expected several background rounds, got {}",
        rep.resolutions_initiated
    );
    let log = eng.node(NodeId(0)).resolution_log();
    assert!(log.iter().all(|r| r.kind == ResolutionKind::Background));
    assert!(log.iter().all(|r| r.phase1_dispatch.is_zero()), "no phase 1 in background");
    // Nobody else initiated.
    for w in 1..4u32 {
        assert_eq!(eng.node(NodeId(w)).report(OBJ).resolutions_initiated, 0);
    }
}

#[test]
fn contended_active_resolution_backs_off() {
    let mut eng = cluster(6, IdeaConfig::default(), 6);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    for w in 0..4u32 {
        write(&mut eng, w, 1);
    }
    eng.run_for(SimDuration::from_secs(2));
    // Two initiators demand resolution simultaneously.
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.with_node(NodeId(2), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(8));
    // At least one completed; replicas converged.
    let completed: u64 =
        (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).resolutions_initiated).sum();
    assert!(completed >= 1);
    let reference_meta = eng.node(NodeId(3)).report(OBJ).meta;
    for w in 0..4u32 {
        assert_eq!(eng.node(NodeId(w)).report(OBJ).meta, reference_meta);
    }
}

#[test]
fn sweep_detects_bottom_layer_writer_and_rolls_back() {
    let cfg = IdeaConfig {
        sweep_every: Some(1), // sweep after every detection round
        sweep_deadline: SimDuration::from_secs(3),
        rollback_resolve: false,
        ..Default::default()
    };
    let mut eng = cluster(10, cfg, 7);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    // A bottom-layer node (8) writes once — invisible to the top layer.
    write(&mut eng, 8, 50);
    eng.run_for(SimDuration::from_secs(1));
    // Top-layer writer probes; its sweep should find node 8's update.
    for _ in 0..4 {
        write(&mut eng, 0, 1);
        eng.run_for(SimDuration::from_secs(4));
    }
    let rep = eng.node(NodeId(0)).report(OBJ);
    assert!(rep.rollbacks >= 1, "bottom-layer divergence never confirmed");
}

#[test]
fn read_triggers_detection_per_policy() {
    let mut eng = cluster(6, IdeaConfig::default(), 8);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    write(&mut eng, 1, 3);
    eng.run_for(SimDuration::from_secs(1));
    // A fresh read on node 2 triggers a detection round; afterwards its
    // level reflects the divergence.
    let before = eng.node(NodeId(2)).level(OBJ);
    eng.with_node(NodeId(2), |p, ctx| {
        let snap = p.read(OBJ, ctx).expect("replica exists");
        assert_eq!(snap.object, OBJ);
    });
    eng.run_for(SimDuration::from_secs(2));
    let after = eng.node(NodeId(2)).level(OBJ);
    assert!(after <= before, "read-triggered round must refresh the level");
}

#[test]
fn invalidate_both_policy_truncates_to_common_prefix() {
    let cfg = IdeaConfig { policy: ResolutionPolicy::InvalidateBoth, ..Default::default() };
    let mut eng = cluster(6, cfg, 9);
    warm_up(&mut eng, &[0, 1, 2, 3]);
    let warm_updates = eng.node(NodeId(3)).report(OBJ).updates;
    let _ = warm_updates;
    for w in 0..4u32 {
        write(&mut eng, w, 7);
    }
    eng.run_for(SimDuration::from_secs(1));
    eng.with_node(NodeId(1), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(5));
    // Everyone ends identical (the common prefix), conflicting updates
    // of ALL writers invalidated.
    let metas: Vec<i64> = (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).meta).collect();
    assert!(metas.windows(2).all(|m| m[0] == m[1]), "metas diverge: {metas:?}");
    let counts: Vec<usize> = (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).updates).collect();
    assert!(counts.windows(2).all(|c| c[0] == c[1]));
}

#[test]
fn priority_policy_prefers_the_supervisor() {
    let cfg = IdeaConfig { policy: ResolutionPolicy::PriorityWins, ..Default::default() };
    let mut eng = cluster(6, cfg, 10);
    // Node 1 is the supervisor everywhere.
    for n in 0..6u32 {
        eng.node_mut(NodeId(n)).set_priority(NodeId(1), 9);
    }
    warm_up(&mut eng, &[0, 1, 2, 3]);
    for w in 0..4u32 {
        write(&mut eng, w, (w as i64 + 1) * 10);
    }
    eng.run_for(SimDuration::from_secs(1));
    let supervisor_meta = eng.node(NodeId(1)).report(OBJ).meta;
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(5));
    for w in 0..4u32 {
        assert_eq!(
            eng.node(NodeId(w)).report(OBJ).meta,
            supervisor_meta,
            "node {w} must adopt the supervisor's state"
        );
    }
}

#[test]
fn parallel_phase2_is_faster_than_sequential() {
    let run = |parallel: bool| -> SimDuration {
        let cfg = IdeaConfig { parallel_phase2: parallel, ..Default::default() };
        let mut eng = cluster(6, cfg, 11);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        for w in 0..4u32 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(1));
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(5));
        let log = eng.node(NodeId(0)).resolution_log();
        assert!(!log.is_empty());
        log[0].phase2
    };
    let seq = run(false);
    let par = run(true);
    assert!(
        par < seq,
        "parallel phase 2 ({par}) must beat sequential ({seq}) — §6.2's suggested optimisation"
    );
}

/// Two objects sweeping concurrently at the same node: each object's
/// gossip router allocates rumor seqs independently, so sweep deadlines
/// are routed by node-unique ticket, never by seq alone (colliding seqs
/// once settled the wrong object's collector, dropping or delaying
/// rollbacks). Pins that both objects' discrepancies are confirmed and
/// both hidden updates are fetched under interleaved sweeps.
#[test]
fn sweeps_on_two_objects_do_not_cross_wires() {
    const OBJ_B: ObjectId = ObjectId(2);
    let cfg = IdeaConfig {
        sweep_every: Some(1),
        sweep_deadline: SimDuration::from_secs(3),
        rollback_resolve: false,
        ..Default::default()
    };
    let nodes: Vec<IdeaNode> =
        (0..10).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ, OBJ_B])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(10, 13),
        SimConfig { seed: 13, ..Default::default() },
        nodes,
    );
    let write_obj = |eng: &mut SimEngine<IdeaNode>, node: u32, obj: ObjectId, delta: i64| {
        eng.with_node(NodeId(node), |p, ctx| {
            p.local_write(obj, delta, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
    };
    // Warm both objects so their top layers form (interleaved, which also
    // interleaves their gossip seq allocation).
    for _ in 0..2 {
        for w in 0..4u32 {
            write_obj(&mut eng, w, OBJ, 1);
            write_obj(&mut eng, w, OBJ_B, 1);
            eng.run_for(SimDuration::from_millis(500));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
    // Hidden bottom-layer writes on both objects.
    write_obj(&mut eng, 8, OBJ, 50);
    write_obj(&mut eng, 9, OBJ_B, 50);
    eng.run_for(SimDuration::from_secs(1));
    // Concurrent probes sweep both objects from node 0.
    for _ in 0..4 {
        write_obj(&mut eng, 0, OBJ, 1);
        write_obj(&mut eng, 0, OBJ_B, 1);
        eng.run_for(SimDuration::from_secs(4));
    }
    let rep = eng.node(NodeId(0)).report(OBJ);
    assert!(rep.rollbacks >= 2, "both objects' sweeps must settle, got {}", rep.rollbacks);
    // Both objects' replicas at node 0 learned the hidden updates.
    for obj in [OBJ, OBJ_B] {
        let vv = eng.node(NodeId(0)).replica(obj).expect("open").version().counters();
        let hidden_writer = if obj == OBJ { 8 } else { 9 };
        assert!(
            vv.get(idea_types::WriterId(hidden_writer)) >= 1,
            "hidden update of object {obj} never fetched"
        );
    }
}

/// Replays one scenario that exercises every subsystem (writes, reads,
/// detection rounds, sweeps, hint-driven and demanded resolution) and
/// asserts a fixed `SimEngine` seed yields bit-identical [`NodeReport`]s —
/// the acceptance criterion for the subsystem decomposition.
#[test]
fn same_seed_produces_identical_reports() {
    fn scenario(seed: u64) -> (Vec<NodeReport>, usize) {
        let mut cfg = IdeaConfig::whiteboard(0.93);
        cfg.sweep_every = Some(2);
        cfg.sweep_deadline = SimDuration::from_secs(3);
        let mut eng = cluster(8, cfg, seed);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        // Bottom-layer write hidden from the top layer, then write waves.
        write(&mut eng, 6, 17);
        for wave in 0..4 {
            for w in 0..4u32 {
                write(&mut eng, w, wave + 1);
            }
            eng.run_for(SimDuration::from_secs(3));
        }
        // A policy-triggered read probe and two contending demands.
        eng.with_node(NodeId(5), |p, ctx| {
            let _ = p.read(OBJ, ctx);
        });
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.with_node(NodeId(3), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(10));
        let reports = (0..8u32).map(|n| eng.node(NodeId(n)).report(OBJ)).collect();
        let log_len: usize = (0..8u32).map(|n| eng.node(NodeId(n)).resolution_log().len()).sum();
        (reports, log_len)
    }

    let (first, first_log) = scenario(2024);
    let (second, second_log) = scenario(2024);
    assert_eq!(first, second, "same seed must reproduce identical node reports");
    assert_eq!(first_log, second_log, "same seed must reproduce the resolution log");
    // A different seed must still converge but is allowed to differ.
    let (third, _) = scenario(2025);
    assert_eq!(third.len(), first.len());
}

/// Detection batching must be an *optimisation*, not a semantic change:
/// under the same workload, a cluster probing per write and one coalescing
/// probes in a window converge to the same per-object levels and the same
/// replica contents — while the batched cluster sends measurably fewer
/// detect messages under bursty writes.
#[test]
fn batched_detection_converges_like_per_write_probing() {
    fn scenario(window: Option<SimDuration>) -> (Vec<ConsistencyLevel>, Vec<i64>, u64) {
        let cfg = IdeaConfig { detect_batch_window: window, ..Default::default() };
        let mut eng = cluster(8, cfg, 21);
        warm_up(&mut eng, &[0, 1, 2, 3]);
        // Bursty waves: four writes per writer spaced wider than a round
        // trip but inside the window — the shape where per-write probing
        // pays O(writes × peers) and in-flight suppression cannot help.
        for _ in 0..3 {
            for _ in 0..4 {
                for w in 0..4u32 {
                    write(&mut eng, w, 1);
                }
                eng.run_for(SimDuration::from_millis(500));
            }
            eng.run_for(SimDuration::from_secs(5));
        }
        // A final demanded resolution settles every replica.
        eng.with_node(NodeId(3), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(10));
        let levels = (0..8u32).map(|n| eng.node(NodeId(n)).level(OBJ)).collect();
        let metas = (0..4u32).map(|n| eng.node(NodeId(n)).report(OBJ).meta).collect();
        (levels, metas, eng.stats().messages(idea_net::MsgClass::Detect))
    }

    let (per_write_levels, per_write_metas, per_write_msgs) = scenario(None);
    let (batched_levels, batched_metas, batched_msgs) =
        scenario(Some(SimDuration::from_millis(2_500)));

    // Both schemes settle every top-layer replica on one reference.
    assert!(per_write_metas.windows(2).all(|m| m[0] == m[1]), "{per_write_metas:?}");
    assert!(batched_metas.windows(2).all(|m| m[0] == m[1]), "{batched_metas:?}");
    assert_eq!(per_write_metas[0], batched_metas[0], "schemes must converge on the same state");
    // And to the same per-object levels.
    assert_eq!(batched_levels, per_write_levels);
    for (w, level) in batched_levels.iter().take(4).enumerate() {
        assert_eq!(*level, ConsistencyLevel::PERFECT, "writer {w} not settled");
    }
    // The whole point: coalescing cuts probe traffic under bursts.
    assert!(
        batched_msgs * 2 <= per_write_msgs,
        "batching must at least halve detect messages: {batched_msgs} vs {per_write_msgs}"
    );
}

/// The decomposition keeps subsystem state disjoint: an object only ever
/// touched by *remote* traffic (no local write) must still answer reports
/// and reads without panicking — the lazy per-subsystem state paths.
#[test]
fn remote_only_objects_materialise_lazily() {
    let mut eng = cluster(4, IdeaConfig::default(), 12);
    warm_up(&mut eng, &[0, 1]);
    // Node 3 never wrote; its state was created by incoming messages only.
    let rep = eng.node(NodeId(3)).report(OBJ);
    assert_eq!(rep.node, NodeId(3));
    assert_eq!(rep.resolutions_initiated, 0);
    assert!(!eng.node(NodeId(3)).is_resolving(OBJ));
    eng.with_node(NodeId(3), |p, ctx| {
        let snap = p.read(OBJ, ctx).expect("replica opened by remote traffic");
        assert_eq!(snap.object, OBJ);
    });
}

/// Chunked-fetch satellite pin, at the frame level: for every
/// `max_fetch_updates` bound, no `FetchReply` frame ever carries more
/// than the bound, only the final frame says `done`, and the chunks
/// reassemble exactly the update set the unbounded reply ships in one
/// frame. The requester side is emulated directly (its advanced counters
/// are the continuation cursor), so each reply frame can be inspected.
#[test]
fn chunked_fetch_frames_respect_the_bound_and_reassemble_identically() {
    use crate::messages::IdeaMsg;
    use idea_net::{Context, Proto, TimerId};
    use idea_types::{SimTime, Update};
    use idea_vv::VersionVector;

    struct RecCtx {
        sent: Vec<(NodeId, IdeaMsg)>,
        rng: rand::rngs::mock::StepRng,
    }
    impl Context<IdeaMsg> for RecCtx {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn me(&self) -> NodeId {
            NodeId(0)
        }
        fn node_count(&self) -> usize {
            2
        }
        fn send(&mut self, to: NodeId, msg: IdeaMsg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _delay: SimDuration, _kind: u64) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _timer: TimerId) {}
        fn rng(&mut self) -> &mut dyn rand::RngCore {
            &mut self.rng
        }
    }

    const BACKLOG: usize = 200;

    fn drain(cap: Option<usize>) -> Vec<Update> {
        let cfg = IdeaConfig { max_fetch_updates: cap, ..Default::default() };
        let mut node = IdeaNode::new(NodeId(0), cfg, &[OBJ]);
        let mut ctx = RecCtx { sent: vec![], rng: rand::rngs::mock::StepRng::new(0, 1) };
        for i in 0..BACKLOG as i64 {
            node.local_write(OBJ, i, UpdatePayload::none(), &mut ctx);
        }
        let mut have = VersionVector::new();
        let mut got = Vec::new();
        let mut frames = 0usize;
        loop {
            ctx.sent.clear();
            node.on_message(
                NodeId(1),
                IdeaMsg::FetchRequest { object: OBJ, have: have.clone() },
                &mut ctx,
            );
            let replies: Vec<_> = ctx
                .sent
                .iter()
                .filter_map(|(to, m)| match m {
                    IdeaMsg::FetchReply { updates, done, .. } => Some((*to, updates, *done)),
                    _ => None,
                })
                .collect();
            assert_eq!(replies.len(), 1, "one request, one reply frame");
            let (to, updates, done) = (replies[0].0, replies[0].1.clone(), replies[0].2);
            assert_eq!(to, NodeId(1));
            if let Some(cap) = cap {
                assert!(
                    updates.len() <= cap,
                    "frame carries {} updates over the configured bound {cap}",
                    updates.len()
                );
            }
            frames += 1;
            for u in &updates {
                have.observe(u.id.writer, u.id.seq);
            }
            got.extend(updates);
            if done {
                break;
            }
            assert!(frames <= BACKLOG + 1, "continuation never finished");
        }
        let expected_frames = cap.map_or(1, |c| BACKLOG.div_ceil(c));
        assert_eq!(frames, expected_frames, "cap {cap:?} used the wrong number of frames");
        got
    }

    let unbounded = drain(None);
    assert_eq!(unbounded.len(), BACKLOG);
    for cap in [1usize, 7, 64] {
        assert_eq!(drain(Some(cap)), unbounded, "cap {cap} reassembled a different set");
    }
}
