//! The thin [`IdeaNode`]: composes the write-path, detection and resolution
//! subsystems over one shared [`NodeCore`], implements [`Proto`], and
//! routes cross-subsystem triggers (the adaptive layer demanding a
//! resolution) between them.

use super::detection::Detection;
use super::resolution::ResolutionDriver;
use super::write_path::WritePath;
use super::{unpack, NodeCore, Trigger, K_BACKGROUND, K_BACKOFF, K_BATCH, K_DETECT, K_SWEEP};
use crate::adapt::{AdaptAction, HintController};
use crate::config::IdeaConfig;
use crate::messages::IdeaMsg;
use crate::quantify::{Quantifier, Weights};
use crate::resolution::{ResolutionPolicy, ResolutionRecord};
use idea_net::{Context, Proto, TimerId};
use idea_store::NodeStore;
use idea_store::Snapshot;
use idea_types::{ConsistencyLevel, NodeId, ObjectId, Result, Update, UpdatePayload};
use serde::{Deserialize, Serialize};

/// Snapshot of one node's IDEA state for the harness and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Its current consistency-level estimate for the object.
    pub level: ConsistencyLevel,
    /// The hint floor currently in force (0 when disabled).
    pub hint_floor: ConsistencyLevel,
    /// Resolution rounds this node initiated to completion.
    pub resolutions_initiated: u64,
    /// Rollback events (bottom-layer discrepancies confirmed).
    pub rollbacks: u64,
    /// The node's view of the top-layer membership.
    pub top_members: Vec<NodeId>,
    /// Replica metadata value.
    pub meta: i64,
    /// Updates applied at the replica.
    pub updates: usize,
}

/// The IDEA middleware node.
pub struct IdeaNode {
    core: NodeCore,
    write_path: WritePath,
    detection: Detection,
    resolution: ResolutionDriver,
}

impl IdeaNode {
    /// Builds a node hosting `objects`, writing as writer `me.0`.
    pub fn new(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Self {
        IdeaNode {
            core: NodeCore::new(me, cfg, objects),
            write_path: WritePath::default(),
            detection: Detection::default(),
            resolution: ResolutionDriver::default(),
        }
    }

    /// Node identity.
    pub fn id(&self) -> NodeId {
        self.core.me
    }

    /// The configuration in force.
    pub fn config(&self) -> &IdeaConfig {
        &self.core.cfg
    }

    /// The quantifier in force.
    pub fn quantifier(&self) -> &Quantifier {
        &self.core.quant
    }

    /// Mutable quantifier access (Table-1 setters go through
    /// [`crate::api::DeveloperApi`]).
    pub fn quantifier_mut(&mut self) -> &mut Quantifier {
        &mut self.core.quant
    }

    /// The hint controller.
    pub fn hint(&self) -> &HintController {
        &self.core.hint
    }

    /// Mutable hint-controller access.
    pub fn hint_mut(&mut self) -> &mut HintController {
        &mut self.core.hint
    }

    /// Sets the resolution policy (the `set_resolution` API).
    pub fn set_policy(&mut self, policy: ResolutionPolicy) {
        self.core.cfg.policy = policy;
    }

    /// Sets or clears the background-resolution period
    /// (the `set_background_freq` API). Takes effect at the next timer fire.
    pub fn set_background_period(&mut self, period: Option<idea_types::SimDuration>) {
        self.core.cfg.background_period = period;
    }

    /// Assigns a priority rank to a node (for
    /// [`ResolutionPolicy::PriorityWins`]).
    pub fn set_priority(&mut self, node: NodeId, priority: u8) {
        self.core.priorities.insert(node, priority);
    }

    /// Completed resolution records (Table 2 / Figure 9 raw data).
    pub fn resolution_log(&self) -> &[ResolutionRecord] {
        self.resolution.log()
    }

    /// The underlying store (read access for the harness).
    pub fn store(&self) -> &NodeStore {
        &self.core.store
    }

    /// This node's current consistency-level estimate for `object`.
    pub fn level(&self, object: ObjectId) -> ConsistencyLevel {
        self.core.obj(object).map_or(ConsistencyLevel::PERFECT, |s| s.level)
    }

    /// True while a resolution round involves this node as initiator (or it
    /// is backing off from one). The booking application treats this as the
    /// "system is kind of locked" window of §5.2.
    pub fn is_resolving(&self, object: ObjectId) -> bool {
        self.resolution.is_resolving(object)
    }

    /// Full report for the harness.
    pub fn report(&self, object: ObjectId) -> NodeReport {
        let st = self.core.obj(object);
        let replica = self.core.store.replica(object).ok();
        NodeReport {
            node: self.core.me,
            level: st.map_or(ConsistencyLevel::PERFECT, |s| s.level),
            hint_floor: self.core.hint.floor(),
            resolutions_initiated: self.resolution.completed(),
            rollbacks: self.core.rollbacks,
            top_members: st.map_or_else(Vec::new, |s| s.layer.top_members().to_vec()),
            meta: replica.map_or(0, |r| r.meta()),
            updates: replica.map_or(0, |r| r.len()),
        }
    }

    /// Routes a subsystem trigger to the resolution driver.
    fn route(&mut self, trigger: Trigger, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        match trigger {
            Trigger::None => {}
            Trigger::Resolve => self.resolution.start_active(&mut self.core, object, ctx),
        }
    }

    // ----------------------------------------------------------- triggers

    /// Issues a local write and triggers the protocol (§4.2).
    pub fn local_write(
        &mut self,
        object: ObjectId,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Update {
        let update = self.write_path.local_write(&mut self.core, object, meta_delta, payload, ctx);
        self.detection.request_round(&mut self.core, object, ctx);
        update
    }

    /// Reads the object, triggering detection per the read policy (§4.2).
    pub fn read(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) -> Result<Snapshot> {
        let (snapshot, probe) = self.write_path.read(&mut self.core, object, ctx)?;
        if probe {
            self.detection.request_round(&mut self.core, object, ctx);
        }
        Ok(snapshot)
    }

    /// Explicit user demand for resolution (the `demand_active_resolution`
    /// API and the adaptive layer's trigger).
    pub fn demand_active_resolution(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        self.resolution.start_active(&mut self.core, object, ctx);
    }

    /// The user told IDEA the current consistency is unacceptable (§5.1):
    /// optionally re-weight the metrics, always raise the floor by Δ and
    /// resolve.
    pub fn user_dissatisfied(
        &mut self,
        object: ObjectId,
        new_weights: Option<Weights>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if let Some(w) = new_weights {
            self.core.quant.set_weights(w);
        }
        if self.core.hint.on_user_dissatisfied() == AdaptAction::Resolve {
            self.resolution.start_active(&mut self.core, object, ctx);
        }
    }
}

impl Proto for IdeaNode {
    type Msg = IdeaMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        if let Some(period) = self.core.cfg.background_period {
            for object in self.core.store.objects() {
                ctx.set_timer(period, super::pack(K_BACKGROUND, object.0));
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        let core = &mut self.core;
        match msg {
            IdeaMsg::DetectRequest { round, object, summary } => {
                let t = self.detection.on_request(core, from, round, object, summary, ctx);
                self.route(t, object, ctx);
            }
            IdeaMsg::DetectReply { round, object, delta } => {
                let t = self.detection.on_reply(core, from, round, object, delta, ctx);
                self.route(t, object, ctx);
            }
            IdeaMsg::CallForAttention { rid, object } => {
                self.resolution.on_call_for_attention(core, from, rid, object, ctx)
            }
            IdeaMsg::Attention { rid, object, granted } => {
                self.resolution.on_attention(core, from, rid, object, granted, ctx)
            }
            IdeaMsg::CollectRequest { rid, object } => {
                self.resolution.on_collect_request(core, from, rid, object, ctx)
            }
            IdeaMsg::CollectReply { rid, object, evv } => {
                self.resolution.on_collect_reply(core, from, rid, object, evv, ctx)
            }
            IdeaMsg::Inform { rid, object, reference } => {
                self.resolution.on_inform(core, from, rid, object, reference, ctx)
            }
            IdeaMsg::FetchRequest { object, have } => {
                self.write_path.on_fetch_request(core, from, object, have, ctx)
            }
            IdeaMsg::FetchReply { object, updates } => {
                self.write_path.on_fetch_reply(core, object, updates)
            }
            IdeaMsg::SweepRumor { id, ttl, object, counters } => {
                self.detection.on_sweep_rumor(core, id, ttl, object, counters, ctx)
            }
            IdeaMsg::SweepDivergence { object, sweep, delta } => {
                self.detection.on_sweep_divergence(core, from, object, sweep, delta)
            }
        }
    }

    fn on_timer(&mut self, _timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        let (base, low) = unpack(kind);
        match base {
            K_DETECT => {
                if let Some((object, t)) = self.detection.on_deadline(&mut self.core, low, ctx) {
                    self.route(t, object, ctx);
                }
            }
            K_BACKGROUND => self.resolution.on_background_timer(&mut self.core, ObjectId(low), ctx),
            K_BACKOFF => self.resolution.on_backoff_timer(&mut self.core, ObjectId(low), ctx),
            K_SWEEP => {
                if let Some((object, t)) =
                    self.detection.on_sweep_deadline(&mut self.core, low, ctx)
                {
                    self.route(t, object, ctx);
                }
            }
            K_BATCH => self.detection.on_batch_timer(&mut self.core, ctx),
            _ => {}
        }
    }
}
