//! The [`IdeaNode`]: a vector of [`ProtocolShard`]s — each composing the
//! write-path, detection and resolution subsystems over its own
//! `NodeCore` — routed by `ObjectId` hash, plus the node-wide
//! `SharedCore`. Implements [`Proto`] for the single-threaded engines;
//! the threaded engine may instead split the shards onto workers via
//! [`idea_net::ShardedProto`].

use super::detection::Detection;
use super::resolution::ResolutionDriver;
use super::write_path::WritePath;
use super::{
    unpack, NodeCore, SharedCore, Trigger, K_BACKGROUND, K_BACKOFF, K_BATCH, K_DETECT,
    K_LAZY_FLUSH, K_PULL, K_SWEEP, MAX_SHARDS,
};
use crate::adapt::{AdaptAction, HintController};
use crate::client::ReadConsistency;
use crate::config::IdeaConfig;
use crate::messages::IdeaMsg;
use crate::quantify::{MaxBounds, Quantifier, Weights};
use crate::resolution::{ResolutionPolicy, ResolutionRecord};
use idea_net::{Context, Proto, ShardedProto, TimerId};
use idea_store::{Replica, Snapshot, SnapshotView, StoreShard};
use idea_types::{
    ConsistencyLevel, NodeId, ObjectId, Result, ShardId, Update, UpdatePayload, WriterId,
};
use idea_wal::ShardWal;
use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Snapshot of one node's IDEA state for the harness and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Its current consistency-level estimate for the object.
    pub level: ConsistencyLevel,
    /// The hint floor currently in force (0 when disabled).
    pub hint_floor: ConsistencyLevel,
    /// Resolution rounds this node initiated to completion.
    pub resolutions_initiated: u64,
    /// Rollback events (bottom-layer discrepancies confirmed).
    pub rollbacks: u64,
    /// The node's view of the top-layer membership.
    pub top_members: Vec<NodeId>,
    /// Replica metadata value.
    pub meta: i64,
    /// Updates applied at the replica.
    pub updates: usize,
}

/// One shard of the IDEA middleware: the subsystems plus the shard's
/// `NodeCore`. All per-object protocol state of the objects this shard
/// owns lives here and nowhere else, which is what lets the threaded
/// engine's shard workers drive disjoint objects concurrently.
pub struct ProtocolShard {
    core: NodeCore,
    write_path: WritePath,
    detection: Detection,
    resolution: ResolutionDriver,
}

impl ProtocolShard {
    fn new(core: NodeCore) -> Self {
        ProtocolShard {
            core,
            write_path: WritePath::default(),
            detection: Detection::default(),
            resolution: ResolutionDriver::default(),
        }
    }

    /// The owning node's identity.
    pub fn node_id(&self) -> NodeId {
        self.core.me
    }

    /// This shard's index within its node.
    pub fn shard_id(&self) -> ShardId {
        self.core.shard
    }

    /// The shard of the store this shard owns.
    pub fn store(&self) -> &StoreShard {
        &self.core.store
    }

    /// Routes a subsystem trigger to the resolution driver.
    fn route(&mut self, trigger: Trigger, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        match trigger {
            Trigger::None => {}
            Trigger::Resolve => self.resolution.start_active(&mut self.core, object, ctx),
        }
    }

    /// Applies the per-object digest groups piggybacked on a detect frame.
    /// One frame may batch advertisements for every object of this shard;
    /// groups for a foreign shard (a routing bug) are skipped defensively.
    fn apply_digest_groups(
        &mut self,
        from: NodeId,
        digests: Vec<crate::messages::DigestGroup>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let shards = self.core.cfg.store_shards.max(1);
        for g in digests {
            debug_assert_eq!(
                ShardId::of(g.object, shards),
                self.core.shard,
                "digest group routed to the wrong shard"
            );
            if ShardId::of(g.object, shards) != self.core.shard {
                continue;
            }
            self.detection.on_digests(&mut self.core, from, g.object, g.ids, ctx);
        }
    }

    /// Arms this shard's start-of-run timers (background resolution).
    pub fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        if let Some(period) = self.core.cfg.background_period {
            let shard = self.core.shard;
            for object in self.core.store.objects() {
                ctx.set_timer(period, super::pack(K_BACKGROUND, shard, object.0));
            }
        }
    }

    /// Handles one protocol message addressed to an object of this shard.
    pub fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        debug_assert_eq!(
            ShardId::of(msg.object(), self.core.cfg.store_shards.max(1)),
            self.core.shard,
            "message routed to the wrong shard"
        );
        let core = &mut self.core;
        match msg {
            IdeaMsg::DetectRequest { round, object, summary, digests } => {
                // Piggybacked lazy-gossip advertisements first, so their
                // pull grace timers are armed before the reply goes out.
                self.apply_digest_groups(from, digests, ctx);
                let core = &mut self.core;
                let t = self.detection.on_request(core, from, round, object, summary, ctx);
                self.route(t, object, ctx);
            }
            IdeaMsg::DetectReply { round, object, delta, digests } => {
                self.apply_digest_groups(from, digests, ctx);
                let core = &mut self.core;
                let t = self.detection.on_reply(core, from, round, object, delta, ctx);
                self.route(t, object, ctx);
            }
            IdeaMsg::CallForAttention { rid, object } => {
                self.resolution.on_call_for_attention(core, from, rid, object, ctx)
            }
            IdeaMsg::Attention { rid, object, granted } => {
                self.resolution.on_attention(core, from, rid, object, granted, ctx)
            }
            IdeaMsg::CollectRequest { rid, object, probe } => {
                self.resolution.on_collect_request(core, from, rid, object, probe, ctx)
            }
            IdeaMsg::CollectReply { rid, object, evv } => {
                self.resolution.on_collect_reply(core, from, rid, object, evv, ctx)
            }
            IdeaMsg::CollectDelta { rid, object, delta } => {
                self.resolution.on_collect_delta(core, from, rid, object, delta, ctx)
            }
            IdeaMsg::Inform { rid, object, reference } => {
                self.resolution.on_inform(core, from, rid, object, reference, ctx)
            }
            IdeaMsg::FetchRequest { object, have } => {
                self.write_path.on_fetch_request(core, from, object, have, ctx)
            }
            IdeaMsg::FetchReply { object, updates, done } => {
                self.write_path.on_fetch_reply(core, from, object, updates, done, ctx)
            }
            IdeaMsg::SweepRumor { id, ttl, object, counters } => {
                self.detection.on_sweep_rumor(core, from, id, ttl, object, counters, ctx)
            }
            IdeaMsg::SweepDivergence { object, sweep, delta } => {
                self.detection.on_sweep_divergence(core, from, object, sweep, delta)
            }
            IdeaMsg::GossipDigest { object, ids } => {
                self.detection.on_digests(core, from, object, ids, ctx)
            }
            IdeaMsg::GossipPull { object, id } => {
                self.detection.on_pull(core, from, object, id, ctx)
            }
            IdeaMsg::GossipPrune { object } => self.detection.on_prune(core, from, object),
        }
    }

    /// Handles a timer armed by this shard.
    pub fn on_timer(&mut self, _timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        let (base, _shard, low) = unpack(kind);
        match base {
            K_DETECT => {
                if let Some((object, t)) = self.detection.on_deadline(&mut self.core, low, ctx) {
                    self.route(t, object, ctx);
                }
            }
            K_BACKGROUND => self.resolution.on_background_timer(&mut self.core, ObjectId(low), ctx),
            K_BACKOFF => self.resolution.on_backoff_timer(&mut self.core, ObjectId(low), ctx),
            K_SWEEP => {
                if let Some((object, t)) =
                    self.detection.on_sweep_deadline(&mut self.core, low, ctx)
                {
                    self.route(t, object, ctx);
                }
            }
            K_BATCH => self.detection.on_batch_timer(&mut self.core, ctx),
            K_LAZY_FLUSH => self.detection.on_flush_timer(&mut self.core, ObjectId(low), ctx),
            K_PULL => self.detection.on_pull_timer(&mut self.core, low, ctx),
            _ => {}
        }
    }

    // -------------------------------------------------- external triggers

    /// Issues a local write and triggers the protocol (§4.2). The object
    /// must belong to this shard.
    pub fn local_write(
        &mut self,
        object: ObjectId,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Update {
        let update = self.write_path.local_write(&mut self.core, object, meta_delta, payload, ctx);
        self.detection.request_round(&mut self.core, object, ctx);
        update
    }

    /// Reads the object, triggering detection per the read policy (§4.2).
    pub fn read(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) -> Result<Snapshot> {
        Ok(self.read_with(object, ReadConsistency::Any, ctx)?.0)
    }

    /// Consistency-aware read (the client layer's `Read` command): serves
    /// the local replica and decides the detection probe from both the
    /// configured read policy *and* the requested [`ReadConsistency`] —
    /// `AtLeast` probes on demand when the current estimate sits below the
    /// floor, `Fresh` always probes. Returns the snapshot plus whether a
    /// probe was launched.
    ///
    /// # Errors
    /// Fails when this shard hosts no replica of the object.
    pub fn read_with(
        &mut self,
        object: ObjectId,
        consistency: ReadConsistency,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Result<(Snapshot, bool)> {
        let (snapshot, policy_probe) = self.write_path.read(&mut self.core, object, ctx)?;
        let probe = match consistency {
            ReadConsistency::Any => policy_probe,
            ReadConsistency::AtLeast(floor) => policy_probe || self.level(object) < floor,
            ReadConsistency::Fresh => true,
        };
        if probe {
            self.detection.request_round(&mut self.core, object, ctx);
        }
        Ok((snapshot, probe))
    }

    /// Reads the object's value view without cloning its version vector and
    /// without triggering detection — the cheap poll for callers that only
    /// need meta/recency (the consistency level is served by
    /// [`ProtocolShard::level`], already allocation-free).
    pub fn peek(&self, object: ObjectId) -> Result<SnapshotView<'_>> {
        self.core.store.read_view(object)
    }

    /// Explicit user demand for resolution of an object of this shard.
    pub fn demand_active_resolution(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        self.resolution.start_active(&mut self.core, object, ctx);
    }

    /// User dissatisfaction routed to this shard (§5.1): raise the node-wide
    /// hint floor by Δ and resolve the object. `new_weights`, when given,
    /// re-weights *this shard's* quantifier — on the sharded runtime,
    /// node-wide re-weighting is the composing layer's job
    /// ([`IdeaNode::user_dissatisfied`] fans it out to every shard).
    pub fn user_dissatisfied(
        &mut self,
        object: ObjectId,
        new_weights: Option<Weights>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if let Some(w) = new_weights {
            self.core.quant.set_weights(w);
            self.core.cfg.weights = w;
        }
        if self.core.hint_user_dissatisfied() == AdaptAction::Resolve {
            self.resolution.start_active(&mut self.core, object, ctx);
        }
    }

    /// This shard's current consistency-level estimate for `object`.
    pub fn level(&self, object: ObjectId) -> ConsistencyLevel {
        self.core.obj(object).map_or(ConsistencyLevel::PERFECT, |s| s.level)
    }

    /// Report over this shard's view. `resolutions_initiated` counts only
    /// rounds initiated by *this shard*; [`IdeaNode::report`] aggregates
    /// across shards.
    pub fn report(&self, object: ObjectId) -> NodeReport {
        let st = self.core.obj(object);
        let replica = self.core.store.replica(object).ok();
        NodeReport {
            node: self.core.me,
            level: st.map_or(ConsistencyLevel::PERFECT, |s| s.level),
            hint_floor: self.core.hint_floor(),
            resolutions_initiated: self.resolution.completed(),
            rollbacks: self.core.rollbacks(),
            top_members: st.map_or_else(Vec::new, |s| s.layer.top_members().to_vec()),
            meta: replica.map_or(0, |r| r.meta()),
            updates: replica.map_or(0, |r| r.len()),
        }
    }

    /// The gossip rumor ids this shard's router remembers delivering for
    /// `object`, sorted. Test/harness introspection: delivery-set
    /// equivalence between eager and lazy modes compares these.
    pub fn gossip_seen(&self, object: ObjectId) -> Vec<idea_overlay::RumorId> {
        self.core.obj(object).map_or_else(Vec::new, |s| s.gossip.seen_ids())
    }

    // ------------------------------------------- per-shard configuration
    //
    // The client layer's node-wide setters are fanned out shard by shard on
    // the sharded runtime; these are the per-worker halves. On a composed
    // `IdeaNode` the node-level setters below iterate the same methods.

    /// Sets the Formula-1 weights on this shard.
    pub fn set_weights(&mut self, w: Weights) {
        self.core.quant.set_weights(w);
        self.core.cfg.weights = w;
    }

    /// Sets the Formula-1 saturation bounds on this shard.
    pub fn set_bounds(&mut self, b: MaxBounds) {
        self.core.quant.set_bounds(b);
        self.core.cfg.bounds = b;
    }

    /// Sets the resolution policy on this shard.
    pub fn set_policy(&mut self, policy: ResolutionPolicy) {
        self.core.cfg.policy = policy;
    }

    /// Sets or clears the background-resolution period on this shard.
    pub fn set_background_period(&mut self, period: Option<idea_types::SimDuration>) {
        self.core.cfg.background_period = period;
    }

    /// Assigns a priority rank to a node in this shard's table.
    pub fn set_priority(&mut self, node: NodeId, priority: u8) {
        self.core.priorities.insert(node, priority);
    }

    /// Sets the hint floor. The hint controller is *node-wide* (behind the
    /// shared core), so applying this on any — or every — shard of a node
    /// is equivalent.
    pub fn set_hint_floor(&mut self, hint: f64) {
        self.core.shared_handle().hint.lock().set_hint(hint);
    }

    /// Resolution rounds this shard initiated to completion (the sharded
    /// engine sums these across workers when assembling a node report).
    pub fn resolutions_completed(&self) -> u64 {
        self.resolution.completed()
    }

    /// This shard's quantifier (each shard keeps its own copy; node-level
    /// setters fan updates out, so shards normally agree).
    pub fn quantifier(&self) -> &Quantifier {
        &self.core.quant
    }

    // ------------------------------------------------- durability & rejoin

    /// The rolling content digest of this shard's replicas (see
    /// [`StoreShard::state_hash`]).
    pub fn state_hash(&self) -> u64 {
        self.core.store.state_hash()
    }

    /// Installs a final durable snapshot so the WAL tail is empty — the
    /// clean-shutdown invariant. No-op without durability.
    pub fn flush_durability(&mut self) {
        self.core.store.snapshot_now();
    }

    /// Announces this (restarted) shard back to the deployment: for every
    /// hosted object, asks `peer` for the suffix beyond our recovered
    /// counters (the chunked fetch path — a *delta* resync, not a full
    /// state transfer) and starts a detection round so peers relearn our
    /// version vector.
    pub fn rejoin_from(&mut self, peer: NodeId, ctx: &mut dyn Context<IdeaMsg>) {
        let objects: Vec<ObjectId> = self.core.store.objects().collect();
        for object in objects {
            self.core.ensure_obj(object);
            if peer != self.core.me {
                let have = self
                    .core
                    .store
                    .replica(object)
                    .expect("just listed")
                    .version()
                    .counters()
                    .clone();
                ctx.send(peer, IdeaMsg::FetchRequest { object, have });
            }
            self.detection.request_round(&mut self.core, object, ctx);
        }
    }
}

/// The IDEA middleware node: per-object shards plus node-wide shared state.
pub struct IdeaNode {
    shards: Vec<ProtocolShard>,
    shared: Arc<SharedCore>,
}

impl IdeaNode {
    /// Builds a node hosting `objects`, writing as writer `me.0`, with
    /// `cfg.store_shards` store/protocol shards.
    ///
    /// # Panics
    /// Panics when the configuration fails [`IdeaConfig::validate`]
    /// (e.g. `store_shards` outside `1..=`[`MAX_SHARDS`]); use
    /// [`IdeaNode::try_new`] to surface the violation as an error instead.
    pub fn new(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Self {
        match Self::try_new(me, cfg, objects) {
            Ok(node) => node,
            Err(e) => panic!("invalid IdeaConfig: {e}"),
        }
    }

    /// Fallible twin of [`IdeaNode::new`]: validates the configuration
    /// first and returns the typed violation instead of panicking. With
    /// durability enabled this is a **fresh genesis** — any previous WAL
    /// and snapshot files of this identity are discarded; restarting an
    /// existing identity goes through [`IdeaNode::recover`].
    ///
    /// # Errors
    /// Propagates [`IdeaConfig::validate`]'s [`idea_types::IdeaError`].
    ///
    /// # Panics
    /// Panics when durability is enabled but the WAL files cannot be
    /// created under `cfg.durability.dir` (fail-stop: a node that cannot
    /// persist must not acknowledge writes).
    pub fn try_new(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Result<Self> {
        let mut node = Self::build(me, cfg, objects)?;
        let dcfg = node.config().durability.clone();
        if dcfg.enabled() {
            for (i, s) in node.shards.iter_mut().enumerate() {
                let wal = ShardWal::create(&dcfg, me, i as u32).unwrap_or_else(|e| {
                    panic!("cannot create WAL files under {:?}: {e}", dcfg.dir)
                });
                s.core.store.attach_wal(wal);
            }
        }
        Ok(node)
    }

    /// Builds the in-memory node (no WAL attached yet).
    fn build(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Result<Self> {
        cfg.validate()?;
        let nshards = cfg.store_shards;
        debug_assert!((1..=MAX_SHARDS).contains(&nshards), "validate() bounds store_shards");
        let shared = Arc::new(SharedCore::new(HintController::new(cfg.hint, cfg.hint_delta)));
        let shards = (0..nshards)
            .map(|s| {
                let shard = ShardId(s as u32);
                let mine: Vec<ObjectId> =
                    objects.iter().copied().filter(|&o| ShardId::of(o, nshards) == shard).collect();
                ProtocolShard::new(NodeCore::new(
                    me,
                    shard,
                    cfg.clone(),
                    &mine,
                    Arc::clone(&shared),
                ))
            })
            .collect();
        Ok(IdeaNode { shards, shared })
    }

    /// Restarts an existing node identity from its durable state: each
    /// shard loads its last snapshot, replays the log tail (torn final
    /// frame tolerated and truncated), and reattaches the WAL handle for
    /// appending. Objects in `objects` that were never persisted open
    /// fresh, so a restart also picks up newly configured objects.
    ///
    /// The recovered node carries only what *it* had persisted; updates it
    /// missed while down are pulled from live peers with
    /// [`IdeaNode::rejoin_from`] (delta resync over the chunked fetch
    /// path).
    ///
    /// # Errors
    /// Propagates [`IdeaConfig::validate`]'s [`idea_types::IdeaError`].
    ///
    /// # Panics
    /// Panics when `cfg.durability` is disabled, or when the durable files
    /// are unreadable or corrupt beyond torn-tail tolerance — fail-stop: a
    /// restart from a bad log must not silently come back empty.
    pub fn recover(me: NodeId, cfg: IdeaConfig, objects: &[ObjectId]) -> Result<Self> {
        assert!(cfg.durability.enabled(), "IdeaNode::recover needs durability enabled");
        let dcfg = cfg.durability.clone();
        let mut node = Self::build(me, cfg, objects)?;
        for (i, shard) in node.shards.iter_mut().enumerate() {
            let (wal, recovered) = ShardWal::open(&dcfg, me, i as u32).unwrap_or_else(|e| {
                panic!("cannot recover WAL shard {i} under {:?}: {e}", dcfg.dir)
            });
            if !recovered.is_empty() {
                let mut store = StoreShard::recover(me, WriterId(me.0), &recovered);
                // Keep newly configured objects that never hit the log.
                for o in shard.core.store.objects().collect::<Vec<_>>() {
                    store.open(o);
                }
                shard.core.store = store;
            }
            // Recovered objects need their protocol-plane state too.
            for o in shard.core.store.objects().collect::<Vec<_>>() {
                shard.core.ensure_obj(o);
            }
            shard.core.store.attach_wal(wal);
        }
        Ok(node)
    }

    #[inline]
    fn shard_idx(&self, object: ObjectId) -> usize {
        ShardId::of(object, self.shards.len()).index()
    }

    #[inline]
    fn shard_for(&mut self, object: ObjectId) -> &mut ProtocolShard {
        let s = self.shard_idx(object);
        &mut self.shards[s]
    }

    /// Node identity.
    pub fn id(&self) -> NodeId {
        self.shards[0].core.me
    }

    /// Number of protocol shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Immutable access to the shards, in index order.
    pub fn shards(&self) -> &[ProtocolShard] {
        &self.shards
    }

    /// The configuration in force.
    pub fn config(&self) -> &IdeaConfig {
        &self.shards[0].core.cfg
    }

    /// The quantifier in force.
    pub fn quantifier(&self) -> &Quantifier {
        &self.shards[0].core.quant
    }

    /// Sets the Formula-1 weights on every shard (Table-1 `set_weight`).
    pub fn set_weights(&mut self, w: Weights) {
        for s in &mut self.shards {
            s.set_weights(w);
        }
    }

    /// Sets the Formula-1 saturation bounds on every shard (Table-1
    /// `set_consistency_metric`).
    pub fn set_bounds(&mut self, b: MaxBounds) {
        for s in &mut self.shards {
            s.set_bounds(b);
        }
    }

    /// The hint controller (node-wide; short lock).
    pub fn hint(&self) -> impl Deref<Target = HintController> + '_ {
        self.shared.hint.lock()
    }

    /// Mutable hint-controller access (node-wide; short lock).
    pub fn hint_mut(&mut self) -> impl DerefMut<Target = HintController> + '_ {
        self.shared.hint.lock()
    }

    /// Sets the resolution policy (the `set_resolution` API).
    pub fn set_policy(&mut self, policy: ResolutionPolicy) {
        for s in &mut self.shards {
            s.set_policy(policy);
        }
    }

    /// Sets or clears the background-resolution period
    /// (the `set_background_freq` API). Takes effect at the next timer fire.
    pub fn set_background_period(&mut self, period: Option<idea_types::SimDuration>) {
        for s in &mut self.shards {
            s.set_background_period(period);
        }
    }

    /// Assigns a priority rank to a node (for
    /// [`ResolutionPolicy::PriorityWins`]).
    pub fn set_priority(&mut self, node: NodeId, priority: u8) {
        for s in &mut self.shards {
            s.set_priority(node, priority);
        }
    }

    /// The priority rank assigned to `node`, if any.
    pub fn priority_of(&self, node: NodeId) -> Option<u8> {
        self.shards[0].core.priorities.get(&node).copied()
    }

    /// Number of completed resolution records across all shards. Cheap
    /// (no clone); prefer this over `resolution_log().len()` in loops.
    pub fn resolution_count(&self) -> usize {
        self.shards.iter().map(|s| s.resolution.log().len()).sum()
    }

    /// Completed resolution records across all shards (Table 2 / Figure 9
    /// raw data), ordered by start time. Clones the records — for a bare
    /// count use [`IdeaNode::resolution_count`].
    pub fn resolution_log(&self) -> Vec<ResolutionRecord> {
        let mut log: Vec<ResolutionRecord> =
            self.shards.iter().flat_map(|s| s.resolution.log().iter().cloned()).collect();
        log.sort_by_key(|r| (r.started, r.rid));
        log
    }

    /// Immutable access to a hosted replica (routed to the owning shard).
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn replica(&self, object: ObjectId) -> Result<&Replica> {
        self.shards[self.shard_idx(object)].core.store.replica(object)
    }

    /// This node's current consistency-level estimate for `object`.
    pub fn level(&self, object: ObjectId) -> ConsistencyLevel {
        self.shards[self.shard_idx(object)].level(object)
    }

    /// True while a resolution round involves this node as initiator (or it
    /// is backing off from one). The booking application treats this as the
    /// "system is kind of locked" window of §5.2.
    pub fn is_resolving(&self, object: ObjectId) -> bool {
        self.shards[self.shard_idx(object)].resolution.is_resolving(object)
    }

    /// Full report for the harness: the owning shard's per-object view plus
    /// the node-wide aggregates (resolutions across shards, rollbacks, hint
    /// floor).
    pub fn report(&self, object: ObjectId) -> NodeReport {
        let mut rep = self.shards[self.shard_idx(object)].report(object);
        rep.resolutions_initiated = self.shards.iter().map(|s| s.resolution.completed()).sum();
        rep
    }

    /// The gossip rumor ids this node delivered for `object`, sorted (see
    /// [`ProtocolShard::gossip_seen`]).
    pub fn gossip_seen(&self, object: ObjectId) -> Vec<idea_overlay::RumorId> {
        self.shards[self.shard_idx(object)].gossip_seen(object)
    }

    // ----------------------------------------------------------- triggers

    /// Issues a local write and triggers the protocol (§4.2).
    pub fn local_write(
        &mut self,
        object: ObjectId,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Update {
        self.shard_for(object).local_write(object, meta_delta, payload, ctx)
    }

    /// Reads the object, triggering detection per the read policy (§4.2).
    pub fn read(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) -> Result<Snapshot> {
        self.shard_for(object).read(object, ctx)
    }

    /// Consistency-aware read (see [`ProtocolShard::read_with`]): serves
    /// the local replica and launches an on-demand detection probe per the
    /// requested [`ReadConsistency`].
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read_with(
        &mut self,
        object: ObjectId,
        consistency: ReadConsistency,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Result<(Snapshot, bool)> {
        self.shard_for(object).read_with(object, consistency, ctx)
    }

    /// Reads the object's value view without cloning its version vector and
    /// without triggering detection (see [`ProtocolShard::peek`]).
    pub fn peek(&self, object: ObjectId) -> Result<SnapshotView<'_>> {
        self.shards[self.shard_idx(object)].peek(object)
    }

    /// Explicit user demand for resolution (the `demand_active_resolution`
    /// API and the adaptive layer's trigger).
    pub fn demand_active_resolution(&mut self, object: ObjectId, ctx: &mut dyn Context<IdeaMsg>) {
        self.shard_for(object).demand_active_resolution(object, ctx);
    }

    /// The user told IDEA the current consistency is unacceptable (§5.1):
    /// optionally re-weight the metrics, always raise the floor by Δ and
    /// resolve.
    pub fn user_dissatisfied(
        &mut self,
        object: ObjectId,
        new_weights: Option<Weights>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if let Some(w) = new_weights {
            self.set_weights(w);
        }
        self.shard_for(object).user_dissatisfied(object, None, ctx);
    }

    // ------------------------------------------------- durability & rejoin

    /// The rolling content digest of every replica this node hosts, XOR'd
    /// across shards — independent of shard count and delivery
    /// interleaving, so two converged nodes hosting the same objects
    /// report equal digests. The one-integer pin the recovery and rejoin
    /// tests (and the crash-recovery CI gate) compare.
    pub fn state_hash(&self) -> u64 {
        self.shards.iter().fold(0, |acc, s| acc ^ s.state_hash())
    }

    /// Flushes the durability plane for a clean shutdown: every shard
    /// installs a final snapshot, leaving an empty WAL tail — the next
    /// [`IdeaNode::recover`] replays nothing. No-op without durability.
    pub fn flush_durability(&mut self) {
        for s in &mut self.shards {
            s.flush_durability();
        }
    }

    /// Announces this (restarted) node back to the deployment: every shard
    /// requests the updates it missed from `peer` as a *delta* against its
    /// recovered version vectors (the chunked fetch path) and starts
    /// detection rounds so peers relearn our counters. See
    /// [`ProtocolShard::rejoin_from`].
    pub fn rejoin_from(&mut self, peer: NodeId, ctx: &mut dyn Context<IdeaMsg>) {
        for s in &mut self.shards {
            s.rejoin_from(peer, ctx);
        }
    }
}

impl Proto for IdeaNode {
    type Msg = IdeaMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        for s in &mut self.shards {
            s.on_start(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        self.shard_for(msg.object()).on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        let (_, shard, _) = unpack(kind);
        if let Some(s) = self.shards.get_mut(shard) {
            s.on_timer(timer, kind, ctx);
        }
    }
}

impl ShardedProto for IdeaNode {
    type Shard = ProtocolShard;

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(msg: &IdeaMsg, shards: usize) -> usize {
        ShardId::of(msg.object(), shards).index()
    }

    fn into_shards(self) -> Vec<ProtocolShard> {
        self.shards
    }

    fn from_shards(shards: Vec<ProtocolShard>) -> Self {
        assert!(!shards.is_empty(), "a node needs at least one shard");
        let shared = Arc::clone(shards[0].core.shared_handle());
        IdeaNode { shards, shared }
    }

    fn shard_on_start(shard: &mut ProtocolShard, ctx: &mut dyn Context<IdeaMsg>) {
        shard.on_start(ctx);
    }

    fn shard_on_message(
        shard: &mut ProtocolShard,
        from: NodeId,
        msg: IdeaMsg,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        shard.on_message(from, msg, ctx);
    }

    fn shard_on_timer(
        shard: &mut ProtocolShard,
        timer: TimerId,
        kind: u64,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        shard.on_timer(timer, kind, ctx);
    }
}
