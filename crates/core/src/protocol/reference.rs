//! Helpers shared by both resolution kinds: the phase-2 fan-out policy,
//! the reconciliation that adopts a chosen reference consistent state, and
//! the contention back-off delay (§4.5.2).

use super::NodeCore;
use crate::messages::IdeaMsg;
use crate::resolution::ReferenceState;
use idea_net::Context;
use idea_types::{ConsistencyLevel, NodeId, ObjectId};
use rand::Rng;

/// Phase-2 fan-out: all members at once when `parallel_phase2` is set, one
/// member at a time (the paper's design) otherwise. `probe` is the
/// initiator's own vector summary in compact rounds — members answer with
/// a delta against it instead of their full vector.
pub(super) fn send_collects(
    core: &NodeCore,
    object: ObjectId,
    rid: u64,
    members: &[NodeId],
    from_index: usize,
    probe: Option<&idea_vv::VvSummary>,
    ctx: &mut dyn Context<IdeaMsg>,
) {
    if core.cfg.parallel_phase2 {
        if from_index == 0 {
            for &m in members {
                ctx.send(m, IdeaMsg::CollectRequest { rid, object, probe: probe.cloned() });
            }
        }
    } else if let Some(&m) = members.get(from_index) {
        ctx.send(m, IdeaMsg::CollectRequest { rid, object, probe: probe.cloned() });
    }
}

/// Brings the local replica to the reference state: drop unsanctioned
/// updates, fetch missing ones from the winner.
pub(super) fn apply_reference(
    core: &mut NodeCore,
    object: ObjectId,
    reference: &ReferenceState,
    ctx: &mut dyn Context<IdeaMsg>,
) {
    let my_writer = core.store.writer();
    core.store.open(object);
    // Through the store wrapper so the transition is WAL-logged when
    // durability is on (a recovering node must not resurrect updates the
    // reference dropped).
    let _invalidated = core.store.drop_extras(object, &reference.counts).expect("opened above");
    let have = core.store.replica(object).expect("opened above").version().counters().clone();
    // Local sequencing resumes from the sanctioned count (see module docs
    // on sequence reuse).
    let resume = reference.counts.get(my_writer).max(have.get(my_writer));
    core.store.resume_writes_after(object, resume);

    let need = have.missing_from(&reference.counts);
    match reference.winner {
        Some(w) if w != core.me && need > 0 => {
            ctx.send(w, IdeaMsg::FetchRequest { object, have });
            // Level settles when the fetch lands.
        }
        _ => {
            core.obj_mut(object).level = ConsistencyLevel::PERFECT;
        }
    }
}

/// Uniform back-off delay in `[backoff_min, backoff_max)` (§4.5.2).
pub(super) fn backoff_delay(
    core: &NodeCore,
    ctx: &mut dyn Context<IdeaMsg>,
) -> idea_types::SimDuration {
    let lo = core.cfg.backoff_min.as_micros();
    let hi = core.cfg.backoff_max.as_micros().max(lo + 1);
    idea_types::SimDuration::from_micros(ctx.rng().gen_range(lo..hi))
}
