//! The lazy gossip plane: rumor body caching, per-peer digest outboxes,
//! and the missing-body pull state.
//!
//! In [`idea_overlay::GossipMode::Lazy`], a relay plan's lazy links carry
//! only rumor ids. This module owns the node-side state that makes those
//! ids useful: the **body cache** answering [`crate::messages::IdeaMsg::GossipPull`]s,
//! the **outbox** of pending advertisements (piggybacked on outgoing
//! detect traffic, flushed by the `K_LAZY_FLUSH` timer otherwise), and the
//! **missing map** tracking bodies advertised-but-not-held, whose
//! `K_PULL` timer both delays the first pull (giving in-flight eager
//! copies a grace window) and retries against backup advertisers.
//!
//! All state is per-object (it lives inside [`super::ObjShared`]), so the
//! sharded runtime needs no cross-shard coordination. Piggybacked digests
//! are grouped per object ([`crate::messages::DigestGroup`]); with
//! [`crate::IdeaConfig::batch_digests`] set, one detect frame batches the
//! groups of **every** object in its shard that has advertisements queued
//! for the receiving peer — objects never cross shards, so the routing
//! invariant is preserved while one frame drains what would otherwise
//! take one flush timer per object. The batching is opt-in because it
//! delivers adverts earlier the more objects share a shard, which makes
//! message timing shard-count-dependent.

use super::{pack, NodeCore, K_LAZY_FLUSH};
use crate::messages::IdeaMsg;
use idea_net::{Context, TimerId};
use idea_overlay::gossip::{GossipMode, RelayPlan, RumorId};
use idea_types::{NodeId, ObjectId};
use idea_vv::VersionVector;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Bodies kept per object for answering pulls. Old entries are evicted
/// FIFO; a pull for an evicted body is simply unanswered and the puller's
/// retry timer moves on to a backup advertiser.
const CACHE_CAP: usize = 1024;

/// A rumor advertised to us whose body has not arrived yet. No pull has
/// gone out while the `K_PULL` timer is pending: the grace window lets an
/// eager copy already in flight win, so only genuinely flood-missed nodes
/// ever pull (immediate pulls would race the flood and churn the overlay
/// with graft/prune oscillation).
pub(crate) struct Missing {
    /// Advertisers to pull from, tried one per timer firing.
    pub advertisers: Vec<NodeId>,
    /// The armed `K_PULL` grace/retry timer.
    pub timer: TimerId,
    /// Ticket keying [`super::detection::Detection`]'s pull-ticket map.
    pub ticket: u64,
}

/// Per-object lazy-plane state (see module docs).
#[derive(Default)]
pub(crate) struct LazyPlane {
    /// Rumor bodies held for answering pulls: id → counters. Pull replies
    /// are stamped ttl 0 (terminal): a pull satisfies the one node the
    /// flood missed, it must not re-flood past the sweep's TTL budget.
    cache: HashMap<RumorId, VersionVector>,
    /// FIFO eviction order of `cache`.
    cache_order: VecDeque<RumorId>,
    /// Pending advertisements per peer, drained by piggybacking and the
    /// flush timer.
    outbox: BTreeMap<NodeId, Vec<(RumorId, u8)>>,
    /// Advertised-but-missing bodies with their pull state.
    pub missing: HashMap<RumorId, Missing>,
    /// Whether a `K_LAZY_FLUSH` timer is armed for this object.
    pub flush_armed: bool,
}

impl LazyPlane {
    /// Caches a body for answering pulls, evicting FIFO at capacity.
    pub fn cache_body(&mut self, id: RumorId, counters: VersionVector) {
        if self.cache.insert(id, counters).is_none() {
            self.cache_order.push_back(id);
            if self.cache_order.len() > CACHE_CAP {
                if let Some(old) = self.cache_order.pop_front() {
                    self.cache.remove(&old);
                }
            }
        }
    }

    /// The cached body of `id`, if still held.
    pub fn cached(&self, id: RumorId) -> Option<&VersionVector> {
        self.cache.get(&id)
    }

    /// Queues an advertisement of `id` towards `peer`.
    pub fn enqueue_digest(&mut self, peer: NodeId, id: RumorId, ttl: u8) {
        self.outbox.entry(peer).or_default().push((id, ttl));
    }

    /// Drains the advertisements queued for `peer` (for piggybacking on a
    /// detect message headed there). Empty in eager mode by construction.
    pub fn take_outbox(&mut self, peer: NodeId) -> Vec<(RumorId, u8)> {
        self.outbox.remove(&peer).unwrap_or_default()
    }

    /// Drains the whole outbox (for the flush timer).
    pub fn drain_outbox(&mut self) -> BTreeMap<NodeId, Vec<(RumorId, u8)>> {
        std::mem::take(&mut self.outbox)
    }
}

/// Sends a relay plan on the wire: full [`IdeaMsg::SweepRumor`] bodies on
/// the eager links, queued digests (piggyback or flush) on the lazy links.
/// In lazy mode the body is also cached so later pulls can be answered.
pub(crate) fn dispatch_rumor(
    core: &mut NodeCore,
    object: ObjectId,
    id: RumorId,
    plan: RelayPlan,
    counters: &VersionVector,
    ctx: &mut dyn Context<IdeaMsg>,
) {
    for &t in &plan.eager {
        ctx.send(t, IdeaMsg::SweepRumor { id, ttl: plan.ttl, object, counters: counters.clone() });
    }
    if core.cfg.gossip.mode != GossipMode::Lazy {
        return; // eager plans never carry lazy links
    }
    let shard = core.shard;
    let flush_after = core.cfg.gossip_digest_flush;
    let shared = core.objs.get_mut(&object).expect("object state");
    shared.lazy.cache_body(id, counters.clone());
    if plan.lazy.is_empty() {
        return;
    }
    for &p in &plan.lazy {
        shared.lazy.enqueue_digest(p, id, plan.ttl);
    }
    if !shared.lazy.flush_armed {
        shared.lazy.flush_armed = true;
        ctx.set_timer(flush_after, pack(K_LAZY_FLUSH, shard, object.index() as u64));
    }
}
