//! The detection subsystem: top-layer temperature rounds (§4.3/§4.4.1) and
//! the TTL-bounded bottom-layer gossip sweeps that double-check them
//! (§4.4.2), both driving the quantified consistency level.
//!
//! Owns the in-flight [`DetectRound`] per object, the sweep collectors, and
//! the timer-id routing for both. Every handler reports a [`Trigger`] so
//! the composing node can forward adaptive-layer decisions (resolve now) to
//! the resolution subsystem without this module knowing it exists.
//!
//! ## Hot-path economics
//!
//! Probes carry a compact [`VvSummary`] and answers a [`VvDelta`]
//! (suffixes beyond the probe's counters), so detection traffic scales with
//! divergence, not history; the initiator reconstructs each peer's full
//! vector from the delta plus the round's baseline snapshot. When
//! [`crate::config::IdeaConfig::detect_batch_window`] is set, probe starts
//! requested inside the window coalesce into one round per dirty object —
//! one timer, one fan-out per peer — turning O(writes × peers) steady-state
//! probe traffic into O(peers) per window.

use super::lazy::{dispatch_rumor, Missing};
use super::{pack, NodeCore, Trigger, K_BATCH, K_DETECT, K_PULL, K_SWEEP};
use crate::adapt::AdaptAction;
use crate::messages::{DigestGroup, IdeaMsg};
use idea_detect::bottom::{BottomReport, SweepCollector};
use idea_detect::round::DetectRound;
use idea_net::{Context, TimerId};
use idea_overlay::gossip::{GossipMode, RumorId};
use idea_types::{NodeId, ObjectId};
use idea_vv::{VersionVector, VvDelta, VvSummary};
use std::collections::{BTreeMap, HashMap};

/// Per-object detection state.
#[derive(Default)]
struct DetectState {
    /// The one in-flight round this node may have as initiator.
    round: Option<DetectRound>,
    /// Deadline timer of the in-flight round.
    timer: Option<TimerId>,
    /// Completed rounds (drives the sweep cadence).
    completed: u64,
    /// Sweep collectors keyed by rumor sequence.
    collectors: HashMap<u64, SweepCollector>,
}

/// The detection subsystem.
#[derive(Default)]
pub(crate) struct Detection {
    states: BTreeMap<ObjectId, DetectState>,
    /// Detect round id → object, for deadline timers.
    round_objects: HashMap<u64, ObjectId>,
    /// Sweep-deadline ticket → (object, rumor seq). Tickets come from the
    /// node-wide id counter because gossip seqs are only per-object unique.
    sweep_tickets: HashMap<u64, (ObjectId, u64)>,
    /// Pull-retry ticket → (object, rumor id), for `K_PULL` timers.
    pull_tickets: HashMap<u64, (ObjectId, RumorId)>,
    /// Whether a batching-window timer is armed. The dirty objects the
    /// window will probe live in the store shard's dirty-set
    /// ([`idea_store::StoreShard::take_dirty`]): local writes mark it at
    /// the store layer, read-triggered probes via `mark_dirty`.
    batch_armed: bool,
}

/// Drains the pending IHAVEs bound for `peer` into per-object digest
/// groups for piggybacking on a detect frame. Always drains the probed
/// object's outbox; with [`crate::IdeaConfig::batch_digests`] set it also
/// drains **every other** object of the shard (its groups follow the
/// probed object's, in object order), so one frame flushes the shard's
/// whole outbox for that peer instead of waiting on each object's own
/// detect traffic or flush timer (cross-object digest batching).
fn batched_digests(core: &mut NodeCore, primary: ObjectId, peer: NodeId) -> Vec<DigestGroup> {
    let mut groups = Vec::new();
    let ids = core.obj_mut(primary).lazy.take_outbox(peer);
    if !ids.is_empty() {
        groups.push(DigestGroup { object: primary, ids });
    }
    if !core.cfg.batch_digests {
        return groups;
    }
    for (&object, shared) in core.objs.iter_mut() {
        if object == primary {
            continue;
        }
        let ids = shared.lazy.take_outbox(peer);
        if !ids.is_empty() {
            groups.push(DigestGroup { object, ids });
        }
    }
    groups
}

impl Detection {
    fn state(&mut self, object: ObjectId) -> &mut DetectState {
        self.states.entry(object).or_default()
    }

    /// Requests a detection round for `object`. Without a batching window
    /// the round starts immediately (the paper's per-trigger probing); with
    /// one, the object is marked dirty in the store shard and a single
    /// window timer fires one round per dirty object.
    pub fn request_round(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        match core.cfg.detect_batch_window {
            None => self.begin_round(core, object, ctx),
            Some(window) => {
                // Local writes already marked the store dirty; this covers
                // read-triggered probes (and is idempotent for writes).
                core.store.mark_dirty(object);
                if !self.batch_armed {
                    self.batch_armed = true;
                    ctx.set_timer(window, pack(K_BATCH, core.shard, 0));
                }
            }
        }
    }

    /// The batching window closed: start one round per dirty object.
    pub fn on_batch_timer(&mut self, core: &mut NodeCore, ctx: &mut dyn Context<IdeaMsg>) {
        self.batch_armed = false;
        let pending = core.store.take_dirty();
        for object in pending {
            self.begin_round(core, object, ctx);
        }
    }

    /// Starts a detection round towards the top-layer peers (one in flight
    /// per object; a no-op for unknown objects or an empty top layer).
    fn begin_round(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if self.states.get(&object).is_some_and(|st| st.round.is_some()) {
            return; // one round in flight per object
        }
        let evv = match core.store.replica(object) {
            Ok(r) => r.version().clone(),
            Err(_) => return,
        };
        let me = core.me;
        let peers = core.obj_mut(object).layer.top_peers(me);
        if peers.is_empty() {
            return;
        }
        let rid = core.fresh_id();
        let summary = evv.summary(core.cfg.summary_tail);
        let st = self.state(object);
        st.round = Some(DetectRound::start(me, rid, &peers, ctx.now(), evv));
        st.timer = Some(ctx.set_timer(core.cfg.detect_deadline, pack(K_DETECT, core.shard, rid)));
        self.round_objects.insert(rid, object);
        for p in peers {
            // Pending lazy-gossip advertisements for this peer hitch a ride
            // (zero wire bytes when none are queued) — from every object of
            // the shard, not just the probed one.
            let digests = batched_digests(core, object, p);
            ctx.send(
                p,
                IdeaMsg::DetectRequest { round: rid, object, summary: summary.clone(), digests },
            );
        }
    }

    /// A peer probes us: reply with our suffixes beyond its counters, then
    /// refresh the local estimate pairwise (higher id is the pair's
    /// reference, §4.4.1 — the pairwise path only ever *lowers* the
    /// estimate; a full round or a resolution raises it).
    pub fn on_request(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        round: u64,
        object: ObjectId,
        summary: VvSummary,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Trigger {
        core.store.open(object);
        core.ensure_obj(object);
        let me = core.me;
        let quant = core.quant;
        let (delta, pair) = {
            let mine = core.store.replica(object).expect("opened").version();
            let delta = mine.suffix_since(&summary.counters);
            let pair = if from > me {
                quant.level(&mine.triple_against_summary(&summary))
            } else {
                quant.level(&summary.triple_against(mine))
            };
            (delta, pair)
        };
        // Reply first, then update local estimates.
        let digests = batched_digests(core, object, from);
        ctx.send(from, IdeaMsg::DetectReply { round, object, delta, digests });
        let now = ctx.now();
        core.note_counters(object, &summary.counters, now);
        let st = core.obj_mut(object);
        let pair_level = if from > me { pair } else { pair.max(st.level) };
        st.level = st.level.min(pair_level);
        let level = st.level;
        if core.hint_sample(level) == AdaptAction::Resolve {
            Trigger::Resolve
        } else {
            Trigger::None
        }
    }

    /// A probed peer answered; completes the round when everyone has. The
    /// peer's full vector is rebuilt from its delta over the round's
    /// baseline — nothing history-sized crossed the wire.
    pub fn on_reply(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        round: u64,
        object: ObjectId,
        delta: VvDelta,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Trigger {
        let now = ctx.now();
        core.note_counters(object, &delta.counters, now);
        let Some(st) = self.states.get_mut(&object) else {
            return Trigger::None;
        };
        let complete = match st.round.as_mut() {
            Some(r) if r.round_id == round => {
                let evv = r.baseline().reconstruct(&delta);
                r.on_reply(from, evv)
            }
            _ => return Trigger::None,
        };
        if complete {
            self.finish_round(core, object, ctx)
        } else {
            Trigger::None
        }
    }

    /// The round deadline passed: complete with whoever answered. Returns
    /// the affected object and the adaptive layer's verdict.
    pub fn on_deadline(
        &mut self,
        core: &mut NodeCore,
        rid: u64,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Option<(ObjectId, Trigger)> {
        let object = self.round_objects.remove(&rid)?;
        let has_round = self.states.get(&object).map(|st| st.round.is_some()).unwrap_or(false);
        if has_round {
            Some((object, self.finish_round(core, object, ctx)))
        } else {
            None
        }
    }

    fn finish_round(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Trigger {
        let mine = core.store.replica(object).expect("opened").version().clone();
        let st = self.state(object);
        let Some(round) = st.round.take() else {
            return Trigger::None;
        };
        if let Some(t) = st.timer.take() {
            ctx.cancel_timer(t);
        }
        self.round_objects.remove(&round.round_id);
        let st = self.state(object);
        let report = round.complete(&mine, ctx.now());
        st.completed += 1;
        let rounds = st.completed;
        let triple = report.triple_of(core.me).expect("initiator always appears in its own report");
        let level = core.quant.level(&triple);
        core.obj_mut(object).level = level;
        // Bottom-layer double-check every sweep_every-th round (§4.4.2).
        if let Some(k) = core.cfg.sweep_every {
            if k > 0 && rounds.is_multiple_of(k) {
                self.start_sweep(core, object, ctx);
            }
        }
        if core.hint_sample(level) == AdaptAction::Resolve {
            Trigger::Resolve
        } else {
            Trigger::None
        }
    }

    // ------------------------------------------------------------- sweeps

    fn start_sweep(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let counters = core.store.replica(object).expect("opened").version().counters().clone();
        core.ensure_everyone(ctx.node_count());
        let deadline = ctx.now() + core.cfg.sweep_deadline;
        let epsilon = core.cfg.sweep_epsilon;
        // Field-disjoint borrows: the cached node list stays shared while
        // the object state is mutated.
        let everyone = &core.everyone;
        let shared = core.objs.get_mut(&object).expect("object state");
        let level = shared.level;
        let (id, _ttl, plan) = shared.gossip.originate(everyone, ctx.rng());
        self.state(object).collectors.insert(id.seq, SweepCollector::new(level, epsilon, deadline));
        dispatch_rumor(core, object, id, plan, &counters, ctx);
        // Deadline timers route through a node-unique ticket: gossip seqs
        // are allocated per object, so two objects at one node can emit the
        // same `id.seq` and a seq-keyed map would settle the wrong sweep.
        let ticket = core.fresh_id();
        ctx.set_timer(core.cfg.sweep_deadline, pack(K_SWEEP, core.shard, ticket));
        self.sweep_tickets.insert(ticket, (object, id.seq));
    }

    /// A sweep (or bootstrap announce) rumor arrived: relay it per the
    /// gossip policy, and report divergence straight to the origin when we
    /// hold updates it has not seen (§4.4.2 — the bottom layer "can cause
    /// inconsistencies too").
    ///
    /// `from` is the pushing (or pull-answering) peer: it is excluded from
    /// the relay targets, and a duplicate push demotes it to the lazy side.
    #[allow(clippy::too_many_arguments)]
    pub fn on_sweep_rumor(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        id: RumorId,
        ttl: u8,
        object: ObjectId,
        counters: VersionVector,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        core.store.open(object);
        core.ensure_obj(object);
        let now = ctx.now();
        core.note_counters(object, &counters, now);
        core.ensure_everyone(ctx.node_count());
        let lazy_mode = core.cfg.gossip.mode == GossipMode::Lazy;
        let everyone = &core.everyone;
        let shared = core.objs.get_mut(&object).expect("object state");
        let dup = shared.gossip.has_seen(id);
        let plan = shared.gossip.on_receive(id, ttl, Some(from), everyone, ctx.rng());
        if dup && lazy_mode {
            // Plumtree repair: the pusher's eager link to us is redundant.
            // Tell it to go lazy (our own link to it is demoted inside
            // `on_receive`); the eager overlay trims towards a tree.
            ctx.send(from, IdeaMsg::GossipPrune { object });
        }
        // The body closes any pending pull for it, however it got here,
        // and grafts the deliverer — its link just proved load-bearing.
        if let Some(miss) = shared.lazy.missing.remove(&id) {
            shared.gossip.graft(from);
            ctx.cancel_timer(miss.timer);
            self.pull_tickets.remove(&miss.ticket);
        }
        if let Some(plan) = plan {
            dispatch_rumor(core, object, id, plan, &counters, ctx);
        }
        let mine = core.store.replica(object).expect("opened").version();
        if counters.missing_from(mine.counters()) > 0 {
            ctx.send(
                id.origin,
                IdeaMsg::SweepDivergence {
                    object,
                    sweep: id.seq,
                    delta: mine.suffix_since(&counters),
                },
            );
        }
    }

    // --------------------------------------------------- lazy gossip plane

    /// Rumor advertisements arrived (piggybacked on detect traffic or in a
    /// dedicated [`IdeaMsg::GossipDigest`]): for every body we miss, arm a
    /// `K_PULL` grace timer remembering the advertiser. **No pull goes out
    /// yet** — if an eager copy is already in flight the body lands first
    /// and cancels the timer, so only genuinely flood-missed nodes pull
    /// (and graft). Extra advertisers pile up as retry backups.
    pub fn on_digests(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        object: ObjectId,
        ids: Vec<(RumorId, u8)>,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        if ids.is_empty() {
            return;
        }
        core.store.open(object);
        core.ensure_obj(object);
        let shard = core.shard;
        let timeout = core.cfg.gossip_pull_timeout;
        // Pass 1: classify under the object borrow.
        let mut fresh = Vec::new();
        {
            let shared = core.objs.get_mut(&object).expect("object state");
            for (id, _ttl) in ids {
                if !shared.gossip.wants_body(id) {
                    continue; // body already processed here
                }
                match shared.lazy.missing.get_mut(&id) {
                    Some(miss) => {
                        if !miss.advertisers.contains(&from) {
                            miss.advertisers.push(from);
                        }
                    }
                    None => {
                        if !fresh.contains(&id) {
                            fresh.push(id);
                        }
                    }
                }
            }
        }
        // Pass 2: arm grace timers (needs the id allocator, so outside
        // the object borrow).
        for id in fresh {
            let ticket = core.fresh_id();
            let timer = ctx.set_timer(timeout, pack(K_PULL, shard, ticket));
            self.pull_tickets.insert(ticket, (object, id));
            let shared = core.objs.get_mut(&object).expect("object state");
            shared.lazy.missing.insert(id, Missing { advertisers: vec![from], timer, ticket });
        }
    }

    /// A peer pulls a rumor body we advertised: answer from the cache and
    /// graft the puller (its lazy link was load-bearing). The reply is
    /// stamped ttl 0 — a pull repairs exactly the one delivery the flood
    /// missed; re-flooding from the puller would blow past the sweep's TTL
    /// budget. A cache miss is silently dropped — the puller's retry timer
    /// tries a backup.
    pub fn on_pull(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        object: ObjectId,
        id: RumorId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(shared) = core.objs.get_mut(&object) else {
            return;
        };
        if let Some(counters) = shared.lazy.cached(id) {
            let counters = counters.clone();
            shared.gossip.graft(from);
            ctx.send(from, IdeaMsg::SweepRumor { id, ttl: 0, object, counters });
        }
    }

    /// A pull grace/retry timer fired: if the body is still missing, pull
    /// from the next advertiser and re-arm; give up (background detection
    /// still covers the divergence) when none remain.
    pub fn on_pull_timer(
        &mut self,
        core: &mut NodeCore,
        ticket: u64,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some((object, id)) = self.pull_tickets.remove(&ticket) else {
            return;
        };
        let shard = core.shard;
        let timeout = core.cfg.gossip_pull_timeout;
        let next = {
            let Some(shared) = core.objs.get_mut(&object) else {
                return;
            };
            if !shared.gossip.wants_body(id) {
                shared.lazy.missing.remove(&id);
                return;
            }
            match shared.lazy.missing.get_mut(&id) {
                Some(miss) if !miss.advertisers.is_empty() => Some(miss.advertisers.remove(0)),
                _ => {
                    shared.lazy.missing.remove(&id);
                    return;
                }
            }
        };
        if let Some(peer) = next {
            let fresh = core.fresh_id();
            let timer = ctx.set_timer(timeout, pack(K_PULL, shard, fresh));
            self.pull_tickets.insert(fresh, (object, id));
            let shared = core.objs.get_mut(&object).expect("object state");
            if let Some(miss) = shared.lazy.missing.get_mut(&id) {
                miss.timer = timer;
                miss.ticket = fresh;
            }
            ctx.send(peer, IdeaMsg::GossipPull { object, id });
        }
    }

    /// A peer found our eager push redundant ([`IdeaMsg::GossipPrune`]):
    /// demote our link to it. Its next genuine miss grafts the link back.
    pub fn on_prune(&mut self, core: &mut NodeCore, from: NodeId, object: ObjectId) {
        if let Some(shared) = core.objs.get_mut(&object) {
            shared.gossip.demote(from);
        }
    }

    /// The digest flush window closed: advertisements that found no detect
    /// traffic to ride go out in dedicated [`IdeaMsg::GossipDigest`]s.
    pub fn on_flush_timer(
        &mut self,
        core: &mut NodeCore,
        object: ObjectId,
        ctx: &mut dyn Context<IdeaMsg>,
    ) {
        let Some(shared) = core.objs.get_mut(&object) else {
            return;
        };
        shared.lazy.flush_armed = false;
        for (peer, ids) in shared.lazy.drain_outbox() {
            ctx.send(peer, IdeaMsg::GossipDigest { object, ids });
        }
    }

    /// A bottom node reported divergence against one of our sweeps.
    pub fn on_sweep_divergence(
        &mut self,
        core: &mut NodeCore,
        from: NodeId,
        object: ObjectId,
        sweep: u64,
        delta: VvDelta,
    ) {
        let Ok(replica) = core.store.replica(object) else {
            return;
        };
        let mine = replica.version();
        let Some(st) = self.states.get_mut(&object) else {
            return;
        };
        if let Some(collector) = st.collectors.get_mut(&sweep) {
            // Rebuild the diverging replica's vector over our own history
            // (the delta is relative to the counters our rumor carried).
            let theirs = mine.reconstruct(&delta);
            let triple = mine.triple_against(&theirs);
            collector.on_divergence(from, triple);
        }
    }

    /// A sweep deadline fired: settle the collector's verdict. A confirmed
    /// discrepancy counts a rollback, corrects the level, pulls the hidden
    /// updates in, and (configurably) demands a resolution. Returns the
    /// affected object and the adaptive layer's verdict.
    pub fn on_sweep_deadline(
        &mut self,
        core: &mut NodeCore,
        ticket: u64,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> Option<(ObjectId, Trigger)> {
        let (object, seq) = self.sweep_tickets.remove(&ticket)?;
        let st = self.states.get_mut(&object)?;
        let collector = st.collectors.remove(&seq)?;
        let quant = core.quant;
        let report = collector.finish(|t| quant.level(t));
        let trigger = match report {
            BottomReport::Confirmed { .. } => Trigger::None,
            BottomReport::Discrepancy { bottom_level, worst_node, .. } => {
                core.note_rollback();
                let shared = core.obj_mut(object);
                shared.level = shared.level.min(bottom_level);
                let have = core.store.replica(object).expect("opened").version().counters().clone();
                ctx.send(worst_node, IdeaMsg::FetchRequest { object, have });
                if core.cfg.rollback_resolve {
                    Trigger::Resolve
                } else {
                    Trigger::None
                }
            }
        };
        Some((object, trigger))
    }
}
