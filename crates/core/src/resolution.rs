//! Inconsistency resolution: policies, reference-state selection, and the
//! bookkeeping records the evaluation measures (§4.5).
//!
//! Resolution has two triggers — periodic **background** rounds and
//! user-demanded **active** rounds (two-phase: call-for-attention, then
//! collect/inform) — but one core: pick a *reference consistent state* from
//! the collected version vectors and bring every member to it.

use idea_types::{NodeId, SimDuration, SimTime, WriterId};
use idea_vv::{ExtendedVersionVector, VersionVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Conflict-resolution policies of §4.5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionPolicy {
    /// Both conflicting versions are invalidated; everyone rolls back to the
    /// last commonly-sanctioned prefix.
    InvalidateBoth,
    /// The replica held by the largest node id wins (ids are randomly
    /// assigned, so this is fair in expectation) — the policy the paper's
    /// evaluation uses ("we simply choose the one with higher ID as the
    /// perfect image", §6).
    HighestIdWins,
    /// The replica of the highest-priority node wins; ties break by id.
    PriorityWins,
}

impl ResolutionPolicy {
    /// Decodes the Table-1 `set_resolution(r)` integer parameter.
    pub fn from_code(r: u8) -> Option<ResolutionPolicy> {
        match r {
            1 => Some(ResolutionPolicy::InvalidateBoth),
            2 => Some(ResolutionPolicy::HighestIdWins),
            3 => Some(ResolutionPolicy::PriorityWins),
            _ => None,
        }
    }

    /// The Table-1 integer code of this policy.
    pub fn code(self) -> u8 {
        match self {
            ResolutionPolicy::InvalidateBoth => 1,
            ResolutionPolicy::HighestIdWins => 2,
            ResolutionPolicy::PriorityWins => 3,
        }
    }
}

/// The chosen reference consistent state of one resolution round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceState {
    /// The node whose replica is the reference, when a replica wins;
    /// `None` for [`ResolutionPolicy::InvalidateBoth`] (the reference is
    /// the common prefix, which nobody needs to fetch).
    pub winner: Option<NodeId>,
    /// Per-writer sanctioned update counts. Members drop updates beyond
    /// these counts and fetch the ones they miss from the winner.
    pub counts: VersionVector,
}

/// Wire encoding of a [`ReferenceState`] inside an `Inform`.
///
/// The initiator holds every member's collected counters, so instead of
/// shipping the full sanctioned vector it can ship only the per-writer
/// **overrides** against what that member itself reported — usually a
/// handful of entries, independent of how many writers the object has.
/// [`ReferenceWire::Delta`] carries those overrides (explicit zeros mark
/// invalidated writers); [`ReferenceWire::Full`] remains as the
/// self-contained fallback and the legacy (non-compact) form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReferenceWire {
    /// Self-contained: the complete reference state.
    Full(ReferenceState),
    /// Overrides against the counters the receiving member reported in its
    /// own collect answer of the same round.
    Delta {
        /// The winning node, as in [`ReferenceState::winner`].
        winner: Option<NodeId>,
        /// `(writer, sanctioned count)` overrides; unlisted writers keep
        /// the count the member reported.
        diffs: Vec<(WriterId, u64)>,
    },
}

impl ReferenceWire {
    /// Picks the smaller encoding of `reference` for a member that reported
    /// `acked` in its collect answer: the delta against `acked` when it
    /// beats the full vector on the wire, the full form otherwise.
    pub fn encode(reference: &ReferenceState, acked: &VersionVector) -> ReferenceWire {
        let diffs = reference.counts.diff_from(acked);
        if diffs.len() < reference.counts.writers() {
            ReferenceWire::Delta { winner: reference.winner, diffs }
        } else {
            ReferenceWire::Full(reference.clone())
        }
    }

    /// Reconstructs the exact [`ReferenceState`] on the member side.
    /// `acked` is the counter snapshot the member stored when it answered
    /// the round's collect; it is only consulted by the delta form.
    pub fn resolve(&self, acked: &VersionVector) -> ReferenceState {
        match self {
            ReferenceWire::Full(reference) => reference.clone(),
            ReferenceWire::Delta { winner, diffs } => {
                ReferenceState { winner: *winner, counts: acked.with_overrides(diffs) }
            }
        }
    }

    /// Whether this form needs the member's acked-counter snapshot to
    /// resolve (the delta form is meaningless without it).
    pub fn needs_snapshot(&self) -> bool {
        matches!(self, ReferenceWire::Delta { .. })
    }

    /// Approximate serialized size in bytes: an 8-byte winner/tag header
    /// plus 12 bytes per carried `(writer, count)` entry.
    pub fn wire_bytes(&self) -> usize {
        match self {
            ReferenceWire::Full(reference) => 8 + 12 * reference.counts.writers(),
            ReferenceWire::Delta { diffs, .. } => 8 + 12 * diffs.len(),
        }
    }
}

/// Selects the reference state from the collected `(node, vector)` pairs
/// according to `policy`. `priorities` maps nodes to a priority rank
/// (higher wins) and is only consulted by [`ResolutionPolicy::PriorityWins`].
///
/// # Panics
/// Panics if `candidates` is empty — a resolution round always includes at
/// least the initiator's own replica.
pub fn choose_reference(
    policy: ResolutionPolicy,
    candidates: &[(NodeId, ExtendedVersionVector)],
    priorities: &BTreeMap<NodeId, u8>,
) -> ReferenceState {
    assert!(!candidates.is_empty(), "resolution requires at least one replica");
    match policy {
        ResolutionPolicy::InvalidateBoth => {
            // Common prefix: component-wise minimum over all candidates.
            let mut counts: Option<BTreeMap<idea_types::WriterId, u64>> = None;
            for (_, evv) in candidates {
                let these: BTreeMap<_, _> = evv.counters().iter().collect();
                counts = Some(match counts {
                    None => these,
                    Some(acc) => acc
                        .into_iter()
                        .filter_map(|(w, c)| these.get(&w).map(|&o| (w, c.min(o))))
                        .collect(),
                });
            }
            let counts = VersionVector::from_pairs(counts.unwrap_or_default());
            ReferenceState { winner: None, counts }
        }
        ResolutionPolicy::HighestIdWins => {
            let (node, evv) =
                candidates.iter().max_by_key(|(n, _)| *n).expect("non-empty candidates");
            ReferenceState { winner: Some(*node), counts: evv.counters().clone() }
        }
        ResolutionPolicy::PriorityWins => {
            let (node, evv) = candidates
                .iter()
                .max_by_key(|(n, _)| (priorities.get(n).copied().unwrap_or(0), *n))
                .expect("non-empty candidates");
            ReferenceState { winner: Some(*node), counts: evv.counters().clone() }
        }
    }
}

/// How a resolution round was initiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionKind {
    /// Periodic background round (§4.5.2).
    Background,
    /// User-demanded active round (two-phase).
    Active,
}

/// Timing record of one completed resolution round — the raw material of
/// Table 2, Figure 9 and Formula 2/3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionRecord {
    /// Correlation id of the round.
    pub rid: u64,
    /// Background or active.
    pub kind: ResolutionKind,
    /// Number of top-layer members contacted (excluding the initiator).
    pub members: usize,
    /// When the round started.
    pub started: SimTime,
    /// Phase-1 dispatch cost: time to fan out call-for-attention messages
    /// (zero for background rounds, which skip phase 1).
    pub phase1_dispatch: SimDuration,
    /// Phase-1 completion including acknowledgements (one WAN RTT); zero
    /// for background rounds.
    pub phase1_acked: SimDuration,
    /// Phase-2 duration: sequential collect + decide + inform dispatch.
    pub phase2: SimDuration,
    /// Whether the round actually changed any replica.
    pub resolved_conflict: bool,
}

impl ResolutionRecord {
    /// Total round delay as the paper reports it: phase-1 dispatch plus
    /// phase 2 (Formula 2 adds exactly these two terms).
    pub fn total_delay(&self) -> SimDuration {
        self.phase1_dispatch + self.phase2
    }
}

/// Formula 2 of the paper: extrapolated active-resolution delay (ms) for a
/// top layer of size `n`, fitted from the Table-2 measurement
/// (`0.46825 + 104.747 · (n − 1)`).
pub fn formula2_active_delay_ms(n: usize) -> f64 {
    0.46825 + 104.747 * (n.saturating_sub(1)) as f64
}

/// Formula 3: extrapolated background-resolution delay (ms) — phase 2 only
/// (`104.747 · (n − 1)`).
pub fn formula3_background_delay_ms(n: usize) -> f64 {
    104.747 * (n.saturating_sub(1)) as f64
}

/// Formula 4: optimal background-resolution rate (rounds per second) given
/// available bandwidth `b` (bits/s), the cap fraction `x` (e.g. `0.2` for
/// 20 %), and the per-round communication cost `c` (bits).
pub fn formula4_optimal_rate(b: f64, x: f64, c: f64) -> f64 {
    if c <= 0.0 || b <= 0.0 || x <= 0.0 {
        return 0.0;
    }
    b * x / c
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::WriterId;

    fn evv(updates: &[(u32, u64, u64, i64)]) -> ExtendedVersionVector {
        let mut v = ExtendedVersionVector::new();
        for &(w, seq, at, delta) in updates {
            v.record(WriterId(w), seq, SimTime::from_secs(at), delta);
        }
        v
    }

    #[test]
    fn policy_codes_round_trip() {
        for p in [
            ResolutionPolicy::InvalidateBoth,
            ResolutionPolicy::HighestIdWins,
            ResolutionPolicy::PriorityWins,
        ] {
            assert_eq!(ResolutionPolicy::from_code(p.code()), Some(p));
        }
        assert_eq!(ResolutionPolicy::from_code(0), None);
        assert_eq!(ResolutionPolicy::from_code(9), None);
    }

    #[test]
    fn highest_id_wins_picks_largest_node() {
        let candidates = vec![
            (NodeId(2), evv(&[(0, 1, 1, 1)])),
            (NodeId(7), evv(&[(1, 1, 2, 5)])),
            (NodeId(4), evv(&[(2, 1, 3, 2)])),
        ];
        let r = choose_reference(ResolutionPolicy::HighestIdWins, &candidates, &BTreeMap::new());
        assert_eq!(r.winner, Some(NodeId(7)));
        assert_eq!(r.counts.get(WriterId(1)), 1);
        assert_eq!(r.counts.get(WriterId(0)), 0);
    }

    #[test]
    fn priority_wins_overrides_id() {
        let candidates = vec![(NodeId(2), evv(&[(0, 1, 1, 1)])), (NodeId(7), evv(&[(1, 1, 2, 5)]))];
        let mut prio = BTreeMap::new();
        prio.insert(NodeId(2), 10); // the supervisor of §4.5.1
        let r = choose_reference(ResolutionPolicy::PriorityWins, &candidates, &prio);
        assert_eq!(r.winner, Some(NodeId(2)));
        // Ties fall back to id.
        let r2 = choose_reference(ResolutionPolicy::PriorityWins, &candidates, &BTreeMap::new());
        assert_eq!(r2.winner, Some(NodeId(7)));
    }

    #[test]
    fn invalidate_both_takes_common_prefix() {
        let candidates = vec![
            (NodeId(0), evv(&[(0, 1, 1, 1), (0, 2, 2, 1), (1, 1, 3, 1)])),
            (NodeId(1), evv(&[(0, 1, 1, 1), (2, 1, 4, 1)])),
        ];
        let r = choose_reference(ResolutionPolicy::InvalidateBoth, &candidates, &BTreeMap::new());
        assert_eq!(r.winner, None);
        assert_eq!(r.counts.get(WriterId(0)), 1, "only the shared w0:1 survives");
        assert_eq!(r.counts.get(WriterId(1)), 0);
        assert_eq!(r.counts.get(WriterId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_candidates_panic() {
        let _ = choose_reference(ResolutionPolicy::HighestIdWins, &[], &BTreeMap::new());
    }

    #[test]
    fn reference_wire_delta_resolves_exactly() {
        let reference = ReferenceState {
            winner: Some(NodeId(3)),
            counts: VersionVector::from_pairs([(WriterId(0), 5), (WriterId(2), 1)]),
        };
        // The member reported w0:4 w1:2 — the delta must raise w0, zero out
        // the invalidated w1 and introduce w2.
        let acked = VersionVector::from_pairs([(WriterId(0), 4), (WriterId(1), 2)]);
        let wire = ReferenceWire::encode(&reference, &acked);
        assert_eq!(wire.resolve(&acked), reference);
        // A member already at the reference gets an empty (minimal) delta.
        let at_ref = ReferenceWire::encode(&reference, &reference.counts);
        assert!(matches!(&at_ref, ReferenceWire::Delta { diffs, .. } if diffs.is_empty()));
        assert_eq!(at_ref.resolve(&reference.counts), reference);
        assert!(at_ref.wire_bytes() <= wire.wire_bytes());
    }

    #[test]
    fn reference_wire_falls_back_to_full_when_delta_is_larger() {
        // A member that reported a disjoint writer set would need one
        // override per reference writer *plus* zeroing entries — the full
        // form is strictly smaller, and self-contained.
        let reference = ReferenceState {
            winner: None,
            counts: VersionVector::from_pairs([(WriterId(0), 1), (WriterId(1), 1)]),
        };
        let acked = VersionVector::from_pairs([(WriterId(5), 3), (WriterId(6), 4)]);
        let wire = ReferenceWire::encode(&reference, &acked);
        assert!(matches!(wire, ReferenceWire::Full(_)));
        assert!(!wire.needs_snapshot());
        assert_eq!(wire.resolve(&acked), reference);
        assert_eq!(wire.wire_bytes(), 8 + 12 * 2);
    }

    #[test]
    fn formula2_matches_paper_anchors() {
        // Table 2's top layer of four: 0.468 + 104.747·3 ≈ 314.7 ms.
        let d4 = formula2_active_delay_ms(4);
        assert!((d4 - 314.709).abs() < 0.1, "got {d4}");
        // Figure 9's headline: even at n = 10 the cost stays under 1 s.
        assert!(formula2_active_delay_ms(10) < 1_000.0);
        assert!((formula2_active_delay_ms(1) - 0.46825).abs() < 1e-9);
    }

    #[test]
    fn formula3_is_phase2_only() {
        assert_eq!(formula3_background_delay_ms(1), 0.0);
        assert!(formula3_background_delay_ms(4) < formula2_active_delay_ms(4));
    }

    #[test]
    fn formula4_examples() {
        // 1 Mbit/s available, 20 % cap, 44 KB per round (paper's estimate of
        // 44 messages × 1 KB): rate = 10^6 · 0.2 / (44 · 8192) ≈ 0.55 Hz.
        let rate = formula4_optimal_rate(1e6, 0.2, 44.0 * 8192.0);
        assert!((rate - 0.5549).abs() < 0.01, "got {rate}");
        assert_eq!(formula4_optimal_rate(0.0, 0.2, 1.0), 0.0);
        assert_eq!(formula4_optimal_rate(1e6, 0.2, 0.0), 0.0);
    }

    #[test]
    fn record_total_delay_adds_dispatch_and_phase2() {
        let rec = ResolutionRecord {
            rid: 1,
            kind: ResolutionKind::Active,
            members: 3,
            started: SimTime::ZERO,
            phase1_dispatch: SimDuration::from_micros(468),
            phase1_acked: SimDuration::from_millis(100),
            phase2: SimDuration::from_millis(314),
            resolved_conflict: true,
        };
        assert_eq!(rec.total_delay(), SimDuration::from_micros(314_468));
    }
}
