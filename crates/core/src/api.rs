//! The developer API of Table 1 (§4.7) — the paper-faithful
//! integer-coded surface, kept as a thin compatibility shim.
//!
//! IDEA exposes two interfaces (Figure 6): one to application *developers* —
//! this module — and one to *end users* (satisfaction feedback, resolution
//! demands). Both are first-class operations of the typed client layer now:
//! [`crate::client::Command`] carries every Table-1 setter plus the
//! end-user operations as plain serializable data, routed to a running node
//! through any engine's [`crate::client::EngineHandle`]. Each
//! [`DeveloperApi`] setter below delegates to a one-field
//! [`crate::client::ConsistencySpec`], so both surfaces validate and apply
//! identically (pinned by the `spec_shim` test suite).
//!
//! | Paper function | Shim method | Typed form |
//! |---|---|---|
//! | `set_consistency_metric(a, b, c)` | [`DeveloperApi::set_consistency_metric`] | [`crate::client::ConsistencySpecBuilder::metric`] |
//! | `set_weight(a, b, c)` | [`DeveloperApi::set_weight`] | [`crate::client::ConsistencySpecBuilder::weights`] |
//! | `set_resolution(r)` | [`DeveloperApi::set_resolution`] | [`crate::client::ConsistencySpecBuilder::resolution`] |
//! | `set_hint(h)` | [`DeveloperApi::set_hint`] | [`crate::client::ConsistencySpecBuilder::hint`] |
//! | `demand_active_resolution()` | — | [`crate::client::Command::DemandResolution`] |
//! | `set_background_freq(f)` | [`DeveloperApi::set_background_freq`] | [`crate::client::ConsistencySpecBuilder::background_every`] |
//!
//! (`demand_active_resolution` needs no shim: it was never a setter.
//! Sessions issue it as a command; protocol-embedded callers keep using
//! [`IdeaNode::demand_active_resolution`] with their live context.)

use crate::client::ConsistencySpec;
use crate::protocol::IdeaNode;
use idea_types::{Result, SimDuration};

/// The Table-1 configuration surface.
pub trait DeveloperApi {
    /// Casts the application onto IDEA's consistency metric: defines what
    /// one unit of numerical/order error means by fixing the saturation
    /// maxima (`a` = numerical max, `b` = order max, `c` = staleness max).
    fn set_consistency_metric(&mut self, a: f64, b: f64, c: SimDuration) -> Result<()>;

    /// Sets the Formula-1 weights. A metric is disabled by weight 0 (the
    /// paper's `weight<0.4, 0, 0.6>` example).
    fn set_weight(&mut self, a: f64, b: f64, c: f64) -> Result<()>;

    /// Selects the resolution strategy by its integer code
    /// (1 = invalidate both, 2 = user-ID based, 3 = priority based).
    fn set_resolution(&mut self, r: u8) -> Result<()>;

    /// Sets the hint level in `[0, 1]`. `0` marks the system as not
    /// hint-based; `1` means the user tolerates no inconsistency.
    fn set_hint(&mut self, h: f64) -> Result<()>;

    /// Sets the background-resolution frequency (as a period); `None`
    /// disables background resolution.
    fn set_background_freq(&mut self, period: Option<SimDuration>) -> Result<()>;
}

impl DeveloperApi for IdeaNode {
    fn set_consistency_metric(&mut self, a: f64, b: f64, c: SimDuration) -> Result<()> {
        ConsistencySpec::builder().metric(a, b, c).build()?.apply_to(self)
    }

    fn set_weight(&mut self, a: f64, b: f64, c: f64) -> Result<()> {
        ConsistencySpec::builder().weights(a, b, c).build()?.apply_to(self)
    }

    fn set_resolution(&mut self, r: u8) -> Result<()> {
        ConsistencySpec::builder().resolution_code(r).build()?.apply_to(self)
    }

    fn set_hint(&mut self, h: f64) -> Result<()> {
        ConsistencySpec::builder().hint(h).build()?.apply_to(self)
    }

    fn set_background_freq(&mut self, period: Option<SimDuration>) -> Result<()> {
        let b = ConsistencySpec::builder();
        match period {
            Some(p) => b.background_every(p),
            None => b.no_background(),
        }
        .build()?
        .apply_to(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdeaConfig;
    use crate::resolution::ResolutionPolicy;
    use idea_types::{NodeId, ObjectId};

    fn node() -> IdeaNode {
        IdeaNode::new(NodeId(0), IdeaConfig::default(), &[ObjectId(1)])
    }

    #[test]
    fn set_consistency_metric_updates_bounds() {
        let mut n = node();
        n.set_consistency_metric(5.0, 6.0, SimDuration::from_secs(7)).unwrap();
        let b = n.quantifier().bounds();
        assert_eq!(b.numerical, 5.0);
        assert_eq!(b.order, 6.0);
        assert_eq!(b.staleness, SimDuration::from_secs(7));
    }

    #[test]
    fn set_consistency_metric_rejects_bad_domain() {
        let mut n = node();
        assert!(n.set_consistency_metric(0.0, 1.0, SimDuration::from_secs(1)).is_err());
        assert!(n.set_consistency_metric(1.0, 1.0, SimDuration::ZERO).is_err());
    }

    #[test]
    fn set_weight_normalises() {
        let mut n = node();
        n.set_weight(0.4, 0.0, 0.6).unwrap();
        let w = n.quantifier().weights();
        assert!((w.numerical - 0.4).abs() < 1e-12);
        assert_eq!(w.order, 0.0);
        assert!(n.set_weight(-1.0, 1.0, 1.0).is_err());
        assert!(n.set_weight(0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn set_resolution_accepts_paper_codes() {
        let mut n = node();
        n.set_resolution(1).unwrap();
        assert_eq!(n.config().policy, ResolutionPolicy::InvalidateBoth);
        n.set_resolution(2).unwrap();
        assert_eq!(n.config().policy, ResolutionPolicy::HighestIdWins);
        n.set_resolution(3).unwrap();
        assert_eq!(n.config().policy, ResolutionPolicy::PriorityWins);
        assert!(n.set_resolution(0).is_err());
        assert!(n.set_resolution(4).is_err());
    }

    #[test]
    fn set_hint_domain() {
        let mut n = node();
        n.set_hint(0.85).unwrap();
        assert!((n.hint().floor().value() - 0.85).abs() < 1e-12);
        n.set_hint(0.0).unwrap(); // not hint-based
        assert!(!n.hint().enabled());
        n.set_hint(1.0).unwrap(); // zero tolerance
        assert!(n.set_hint(1.1).is_err());
        assert!(n.set_hint(-0.1).is_err());
    }

    #[test]
    fn set_background_freq_round_trips() {
        let mut n = node();
        n.set_background_freq(Some(SimDuration::from_secs(20))).unwrap();
        assert_eq!(n.config().background_period, Some(SimDuration::from_secs(20)));
        n.set_background_freq(None).unwrap();
        assert_eq!(n.config().background_period, None);
        assert!(n.set_background_freq(Some(SimDuration::ZERO)).is_err());
    }
}
