//! IDEA — the Infrastructure for DEtection-based Adaptive consistency
//! control (the paper's primary contribution).
//!
//! IDEA sits between replicated applications and the object store, and
//! instead of enforcing a predefined consistency level it:
//!
//! 1. **detects** inconsistency when it arises — fast among the top-layer
//!    hot writers, exhaustively (in the background) over the bottom layer;
//! 2. **quantifies** it with the TACT triple collapsed to a single level
//!    ([`quantify`], Formula 1);
//! 3. **resolves** it only when the application's *current* requirement
//!    demands ([`resolution`]): on explicit user demand (active, two-phase)
//!    or periodically (background);
//! 4. **adapts** the requirement itself from user feedback ([`adapt`]):
//!    hint floors that learn upward, or the fully-automatic frequency
//!    controller with under/oversell bounds and the Formula-4 rate cap.
//!
//! [`protocol::IdeaNode`] wires all of it into one [`idea_net::Proto`] state
//! machine; [`client`] exposes the typed application surface (sessions,
//! commands, consistency-aware reads) over every engine, and [`api`] keeps
//! the paper's integer-coded Table-1 interface as a compatibility shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod api;
pub mod client;
pub mod config;
pub mod messages;
pub mod protocol;
pub mod quantify;
pub mod resolution;

pub use adapt::{AutoController, HintController};
pub use api::DeveloperApi;
pub use client::{
    apply_to_node, apply_to_shard, Command, CommandError, CommandExecutor, ConsistencySpec,
    EngineHandle, IdeaHost, LockedEngine, ObjectHandle, ReadConsistency, ReadResult, ReplyFn,
    Response, Session,
};
pub use config::{IdeaConfig, ReadPolicy};
pub use idea_wal::{DurabilityConfig, DurabilityMode};
pub use messages::IdeaMsg;
pub use protocol::{IdeaNode, NodeReport};
pub use quantify::{MaxBounds, Quantifier, Weights};
pub use resolution::{ReferenceState, ResolutionPolicy, ResolutionRecord};
