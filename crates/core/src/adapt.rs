//! Adaptive consistency control (§4.6): the three application schemes.
//!
//! * **On-demand** — users explicitly request resolution; IDEA only runs
//!   background rounds otherwise. (No controller state needed: the node
//!   exposes `demand_active_resolution`.)
//! * **Hint-based** — [`HintController`]: users give an approximate floor
//!   `L1`; IDEA resolves whenever the level drops below it, and when a user
//!   is still unsatisfied the floor *learns upward* by `Δ` ("L1 + Δ will
//!   then become the new desired consistency level … to avoid annoying the
//!   user again in the future", §2).
//! * **Fully automatic** — [`AutoController`]: no user in the loop; the
//!   background frequency is adjusted inside learned bounds (oversell ⇒
//!   frequency must stay *above* the offending rate; undersell ⇒ *below*),
//!   subject to the Formula-4 bandwidth cap (§4.6, §5.2).

use crate::resolution::formula4_optimal_rate;
use idea_types::{ConsistencyLevel, SimDuration};
use serde::{Deserialize, Serialize};

/// What the adaptive layer asks the protocol to do after a new sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptAction {
    /// Nothing to do.
    None,
    /// Trigger an active resolution now.
    Resolve,
}

/// Hint-based adaptation (§4.6 "Hint-based", §6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HintController {
    /// Current floor `L1` (0 disables the controller).
    floor: f64,
    /// Learning step `Δ` applied on user dissatisfaction.
    delta: f64,
    /// Dissatisfaction events absorbed so far.
    complaints: u64,
}

impl HintController {
    /// Builds a controller with initial hint `floor` and step `delta`.
    ///
    /// # Panics
    /// Panics if the floor is outside `[0, 1]` or delta is negative.
    pub fn new(floor: f64, delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor), "hint must be within [0, 1]");
        assert!(delta >= 0.0, "delta must be non-negative");
        HintController { floor, delta, complaints: 0 }
    }

    /// True when hint-based control is active.
    pub fn enabled(&self) -> bool {
        self.floor > 0.0
    }

    /// The current floor.
    pub fn floor(&self) -> ConsistencyLevel {
        ConsistencyLevel::new(self.floor)
    }

    /// Dissatisfaction events absorbed.
    pub fn complaints(&self) -> u64 {
        self.complaints
    }

    /// Replaces the hint (the `set_hint` API — including the Figure-8 reset
    /// from 95 % to 90 % mid-run).
    pub fn set_hint(&mut self, floor: f64) {
        assert!((0.0..=1.0).contains(&floor), "hint must be within [0, 1]");
        self.floor = floor;
    }

    /// Feeds a fresh consistency sample; asks for resolution when the level
    /// has fallen below the floor.
    pub fn on_sample(&mut self, level: ConsistencyLevel) -> AdaptAction {
        if self.enabled() && !level.satisfies(self.floor()) {
            AdaptAction::Resolve
        } else {
            AdaptAction::None
        }
    }

    /// A user explicitly said the current consistency is not good enough:
    /// raise the floor by `Δ` (clamped to 1) and resolve immediately.
    pub fn on_user_dissatisfied(&mut self) -> AdaptAction {
        self.complaints += 1;
        self.floor = (self.floor + self.delta).min(1.0);
        AdaptAction::Resolve
    }
}

impl Default for HintController {
    fn default() -> Self {
        HintController::new(0.0, 0.02)
    }
}

/// Fully-automatic frequency control for background resolution (§5.2).
///
/// Periods (not frequencies) are stored: `period = 1 / frequency`. The
/// learned window is `[min_period, max_period]`: overselling events shrink
/// `max_period` (resolve more often), underselling events raise
/// `min_period` (resolve less often).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoController {
    period: SimDuration,
    /// Lower bound learned from underselling (locking too often).
    min_period: SimDuration,
    /// Upper bound learned from overselling (resolving too rarely).
    max_period: SimDuration,
    /// Fraction of available bandwidth IDEA may consume (Formula 4's `x`).
    bandwidth_cap: f64,
    oversell_events: u64,
    undersell_events: u64,
}

impl AutoController {
    /// Builds a controller starting at `period`, free to move within
    /// `[hard_min, hard_max]` until events tighten the window.
    pub fn new(period: SimDuration, hard_min: SimDuration, hard_max: SimDuration) -> Self {
        assert!(hard_min <= hard_max, "period window must be ordered");
        assert!(!hard_min.is_zero(), "period must stay positive");
        AutoController {
            period: period.max(hard_min).min(hard_max),
            min_period: hard_min,
            max_period: hard_max,
            bandwidth_cap: 0.2,
            oversell_events: 0,
            undersell_events: 0,
        }
    }

    /// Current background-resolution period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The learned `[min, max]` period window.
    pub fn window(&self) -> (SimDuration, SimDuration) {
        (self.min_period, self.max_period)
    }

    /// Oversell events observed.
    pub fn oversells(&self) -> u64 {
        self.oversell_events
    }

    /// Undersell events observed.
    pub fn undersells(&self) -> u64 {
        self.undersell_events
    }

    /// Sets the bandwidth cap fraction `x` of Formula 4.
    pub fn set_bandwidth_cap(&mut self, x: f64) {
        assert!((0.0..=1.0).contains(&x), "cap must be a fraction");
        self.bandwidth_cap = x;
    }

    /// An oversell was detected while running at the current period: the
    /// frequency was too low. Keep the frequency *above* this point from now
    /// on (§5.2): the offending period becomes (just under) the new maximum.
    pub fn on_oversell(&mut self) {
        self.oversell_events += 1;
        let new_max = self.period.mul_f64(0.9).max(self.min_period);
        self.max_period = new_max;
        self.period = self.period.min(self.max_period);
    }

    /// An undersell was detected (resolution locking blocked sales): the
    /// frequency was too high. Keep it *below* this point: the offending
    /// period becomes (just above) the new minimum.
    pub fn on_undersell(&mut self) {
        self.undersell_events += 1;
        let new_min = self.period.mul_f64(1.1).min(self.max_period);
        self.min_period = new_min;
        self.period = self.period.max(self.min_period);
    }

    /// Adjusts the period to the Formula-4 optimal rate given currently
    /// `available_bps` of bandwidth and a measured per-round cost of
    /// `round_cost_bits`, clamped into the learned window. Returns the
    /// period now in force.
    pub fn adjust_for_load(&mut self, available_bps: f64, round_cost_bits: f64) -> SimDuration {
        let rate = formula4_optimal_rate(available_bps, self.bandwidth_cap, round_cost_bits);
        if rate > 0.0 {
            let ideal = SimDuration::from_secs_f64(1.0 / rate);
            self.period = ideal.max(self.min_period).min(self.max_period);
        }
        self.period
    }
}

impl Default for AutoController {
    fn default() -> Self {
        AutoController::new(
            SimDuration::from_secs(20),
            SimDuration::from_secs(2),
            SimDuration::from_secs(120),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lvl(v: f64) -> ConsistencyLevel {
        ConsistencyLevel::new(v)
    }

    #[test]
    fn hint_triggers_below_floor() {
        let mut h = HintController::new(0.95, 0.02);
        assert!(h.enabled());
        assert_eq!(h.on_sample(lvl(0.97)), AdaptAction::None);
        assert_eq!(h.on_sample(lvl(0.95)), AdaptAction::None, "at floor is fine");
        assert_eq!(h.on_sample(lvl(0.93)), AdaptAction::Resolve);
    }

    #[test]
    fn zero_hint_disables_control() {
        let mut h = HintController::new(0.0, 0.02);
        assert!(!h.enabled());
        assert_eq!(h.on_sample(lvl(0.01)), AdaptAction::None);
    }

    #[test]
    fn dissatisfaction_learns_upward() {
        let mut h = HintController::new(0.90, 0.02);
        assert_eq!(h.on_user_dissatisfied(), AdaptAction::Resolve);
        assert!((h.floor().value() - 0.92).abs() < 1e-9);
        assert_eq!(h.complaints(), 1);
        // The floor saturates at 1.
        for _ in 0..10 {
            h.on_user_dissatisfied();
        }
        assert_eq!(h.floor(), ConsistencyLevel::PERFECT);
    }

    #[test]
    fn figure8_hint_reset_mid_run() {
        let mut h = HintController::new(0.95, 0.02);
        assert_eq!(h.on_sample(lvl(0.93)), AdaptAction::Resolve);
        h.set_hint(0.90); // the t = 100 s reset of Figure 8
        assert_eq!(h.on_sample(lvl(0.93)), AdaptAction::None);
        assert_eq!(h.on_sample(lvl(0.89)), AdaptAction::Resolve);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn hint_out_of_range_rejected() {
        let _ = HintController::new(1.2, 0.02);
    }

    #[test]
    fn oversell_shrinks_max_period() {
        let mut a = AutoController::default();
        let before = a.period();
        a.on_oversell();
        assert!(a.period() <= before);
        assert!(a.window().1 < SimDuration::from_secs(120));
        assert_eq!(a.oversells(), 1);
    }

    #[test]
    fn undersell_raises_min_period() {
        let mut a = AutoController::default();
        a.on_undersell();
        assert!(a.window().0 > SimDuration::from_secs(2));
        assert!(a.period() >= a.window().0);
        assert_eq!(a.undersells(), 1);
    }

    #[test]
    fn window_never_inverts() {
        let mut a = AutoController::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(8),
            SimDuration::from_secs(12),
        );
        for _ in 0..20 {
            a.on_oversell();
            a.on_undersell();
        }
        let (min, max) = a.window();
        assert!(min <= max, "window inverted: {min} > {max}");
        assert!(a.period() >= min && a.period() <= max);
    }

    #[test]
    fn formula4_drives_load_adaptation() {
        let mut a = AutoController::new(
            SimDuration::from_secs(20),
            SimDuration::from_secs(1),
            SimDuration::from_secs(300),
        );
        a.set_bandwidth_cap(0.2);
        // 1 Mbit/s available, 15 messages × 1 KB per round = 122 880 bits:
        // optimal rate ≈ 1.63 Hz → period ≈ 0.61 s → clamps to min 1 s.
        let p = a.adjust_for_load(1e6, 15.0 * 8192.0);
        assert_eq!(p, SimDuration::from_secs(1));
        // Starved bandwidth pushes the period up towards the max.
        let p2 = a.adjust_for_load(1e3, 15.0 * 8192.0);
        assert!(p2 > SimDuration::from_secs(100));
    }

    #[test]
    fn zero_rate_keeps_period() {
        let mut a = AutoController::default();
        let before = a.period();
        assert_eq!(a.adjust_for_load(0.0, 1000.0), before);
    }

    proptest! {
        #[test]
        fn auto_controller_period_always_in_window(
            events in prop::collection::vec(prop::bool::ANY, 0..40),
            bw in 0.0f64..1e7, cost in 1.0f64..1e6,
        ) {
            let mut a = AutoController::default();
            for oversell in events {
                if oversell { a.on_oversell() } else { a.on_undersell() }
                a.adjust_for_load(bw, cost);
                let (min, max) = a.window();
                prop_assert!(min <= max);
                prop_assert!(a.period() >= min && a.period() <= max);
            }
        }

        #[test]
        fn hint_floor_is_monotone_under_complaints(
            start in 0.5f64..0.99, delta in 0.001f64..0.1, n in 1usize..30,
        ) {
            let mut h = HintController::new(start, delta);
            let mut last = h.floor();
            for _ in 0..n {
                h.on_user_dissatisfied();
                prop_assert!(h.floor() >= last);
                last = h.floor();
            }
        }
    }
}
