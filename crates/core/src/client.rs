//! The typed client layer: Figure 6's application-facing interface as
//! plain-data commands over engine-agnostic sessions.
//!
//! The paper splits IDEA's surface into a *developer* interface (Table 1)
//! and an *end-user* interface (resolution demands, satisfaction feedback).
//! Historically both were raw methods on [`IdeaNode`] that callers could
//! only reach from inside an engine callback. This module lifts them into a
//! serializable [`Command`]/[`Response`] pair — the exact unit a network
//! frontend can carry — executed through the [`EngineHandle`] trait, which
//! all three engines implement:
//!
//! * [`idea_net::SimEngine`] — commands run deterministically in virtual
//!   time via `with_node`;
//! * [`idea_net::ThreadedEngine`] — commands post to the node thread's
//!   mailbox and block for the response;
//! * [`idea_net::ShardedEngine`] — commands route to the shard worker
//!   owning the object (`ShardId::of`, the same hash the message mailboxes
//!   use); node-wide commands fan out to every shard worker.
//!
//! On top of the command layer sit [`Session`] and [`ObjectHandle`] — the
//! ergonomic application API with per-session defaults (read consistency,
//! hint, priority). The same session code compiles once and runs unchanged
//! on any engine.
//!
//! Reads are consistency-aware ([`ReadConsistency`]): `Any` serves the
//! local replica under the configured [`crate::config::ReadPolicy`],
//! `AtLeast(level)` additionally starts an on-demand detection probe when
//! the current estimate sits below the requested floor, and `Fresh` always
//! probes. The probe is asynchronous (§4.2's trigger semantics): the
//! response reports the level at read time plus whether a probe was
//! launched, so a client can poll until its floor is met.
//!
//! The integer-coded Table-1 setters survive as a compatibility shim
//! ([`crate::api::DeveloperApi`]); new code builds a typed
//! [`ConsistencySpec`] instead, validated at construction.

use crate::messages::IdeaMsg;
use crate::protocol::{IdeaNode, NodeReport, ProtocolShard};
use crate::quantify::{MaxBounds, Weights};
use crate::resolution::ResolutionPolicy;
use idea_net::{Context, Proto, ShardedEngine, ShardedProto, SimEngine, ThreadedEngine};
use idea_store::Snapshot;
use idea_types::{
    ConsistencyLevel, IdeaError, NodeId, ObjectId, Result, SimDuration, SimTime, Update,
    UpdatePayload, WireError,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

// ====================================================================
// Read consistency
// ====================================================================

/// How consistent a session read must be (per-operation choice, as in
/// adaptive-consistency stores that let every read pick its level).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReadConsistency {
    /// Serve the local replica; probe only when the configured
    /// [`crate::config::ReadPolicy`] demands it (the paper's default).
    #[default]
    Any,
    /// Serve the local replica, and start an on-demand detection probe when
    /// the current level estimate is below this floor, so subsequent reads
    /// see a fresher estimate (and the adaptive layer can resolve).
    AtLeast(ConsistencyLevel),
    /// Always start a detection probe alongside the read — the "retrieve a
    /// new file" trigger of §4.2, applied unconditionally.
    Fresh,
}

// ====================================================================
// ConsistencySpec: the typed replacement for the Table-1 integer surface
// ====================================================================

/// Background-resolution choice inside a [`ConsistencySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackgroundFreq {
    /// Disable background resolution.
    Disabled,
    /// Run a background round every `period`.
    Every(SimDuration),
}

/// A validated bundle of consistency configuration — the typed form of the
/// Table-1 surface (`set_consistency_metric`, `set_weight`,
/// `set_resolution`, `set_hint`, `set_background_freq`).
///
/// Build one with [`ConsistencySpec::builder`]; every field is optional
/// ("leave unchanged"), and domains are checked at
/// [`ConsistencySpecBuilder::build`] time, so an applied spec can no longer
/// fail. Specs are plain serializable data and travel inside
/// [`Command::Configure`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConsistencySpec {
    bounds: Option<MaxBounds>,
    weights: Option<Weights>,
    policy: Option<ResolutionPolicy>,
    hint: Option<f64>,
    background: Option<BackgroundFreq>,
}

impl ConsistencySpec {
    /// Starts an empty builder (all fields "leave unchanged").
    pub fn builder() -> ConsistencySpecBuilder {
        ConsistencySpecBuilder::default()
    }

    /// True when the spec changes nothing.
    pub fn is_empty(&self) -> bool {
        *self == ConsistencySpec::default()
    }

    /// The spec's fields, in declaration order — the decomposition a wire
    /// codec serializes (fields are private so hand-built specs cannot skip
    /// validation; this is the sanctioned read path).
    #[allow(clippy::type_complexity)]
    pub fn parts(
        &self,
    ) -> (
        Option<MaxBounds>,
        Option<Weights>,
        Option<ResolutionPolicy>,
        Option<f64>,
        Option<BackgroundFreq>,
    ) {
        (self.bounds, self.weights, self.policy, self.hint, self.background)
    }

    /// Rebuilds a spec from the fields of [`ConsistencySpec::parts`],
    /// re-validating every domain — the decode path of a wire codec.
    ///
    /// # Errors
    /// Returns the same [`IdeaError::InvalidParameter`] the builder would
    /// for out-of-domain fields.
    pub fn from_parts(
        bounds: Option<MaxBounds>,
        weights: Option<Weights>,
        policy: Option<ResolutionPolicy>,
        hint: Option<f64>,
        background: Option<BackgroundFreq>,
    ) -> Result<ConsistencySpec> {
        let spec = ConsistencySpec { bounds, weights, policy, hint, background };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks every field's domain — used on deserialized specs, whose
    /// fields never went through the builder.
    ///
    /// # Errors
    /// Returns the same [`IdeaError::InvalidParameter`] the builder would.
    pub fn validate(&self) -> Result<()> {
        if let Some(b) = &self.bounds {
            let positive = b.numerical > 0.0 && b.order > 0.0;
            if !positive || b.staleness.is_zero() {
                return Err(IdeaError::InvalidParameter(
                    "consistency metric maxima must be positive",
                ));
            }
        }
        if let Some(w) = &self.weights {
            let non_negative = w.numerical >= 0.0 && w.order >= 0.0 && w.staleness >= 0.0;
            let positive_sum = w.numerical + w.order + w.staleness > 0.0;
            if !non_negative || !positive_sum {
                return Err(IdeaError::InvalidParameter(
                    "weights must be non-negative with a positive sum",
                ));
            }
        }
        if let Some(h) = self.hint {
            if !(0.0..=1.0).contains(&h) {
                return Err(IdeaError::InvalidParameter("hint must be within [0, 1]"));
            }
        }
        if let Some(BackgroundFreq::Every(p)) = self.background {
            if p.is_zero() {
                return Err(IdeaError::InvalidParameter("background period must be positive"));
            }
        }
        Ok(())
    }

    /// Applies the spec to a whole node (fans node-wide pieces out to every
    /// shard, exactly like the historical setters).
    ///
    /// # Errors
    /// Fails only when a deserialized spec carries out-of-domain fields
    /// (see [`ConsistencySpec::validate`]).
    pub fn apply_to(&self, node: &mut IdeaNode) -> Result<()> {
        self.validate()?;
        if let Some(b) = self.bounds {
            node.set_bounds(b);
        }
        if let Some(w) = self.weights {
            node.set_weights(w);
        }
        if let Some(p) = self.policy {
            node.set_policy(p);
        }
        if let Some(h) = self.hint {
            node.hint_mut().set_hint(h);
        }
        match self.background {
            Some(BackgroundFreq::Disabled) => node.set_background_period(None),
            Some(BackgroundFreq::Every(p)) => node.set_background_period(Some(p)),
            None => {}
        }
        Ok(())
    }

    /// Applies the spec to one shard (the sharded engine fans the same spec
    /// out to every worker; the hint floor is node-wide behind the shared
    /// core, so repeated application is idempotent).
    ///
    /// # Errors
    /// Fails only when a deserialized spec carries out-of-domain fields.
    pub fn apply_to_shard(&self, shard: &mut ProtocolShard) -> Result<()> {
        self.validate()?;
        if let Some(b) = self.bounds {
            shard.set_bounds(b);
        }
        if let Some(w) = self.weights {
            shard.set_weights(w);
        }
        if let Some(p) = self.policy {
            shard.set_policy(p);
        }
        if let Some(h) = self.hint {
            shard.set_hint_floor(h);
        }
        match self.background {
            Some(BackgroundFreq::Disabled) => shard.set_background_period(None),
            Some(BackgroundFreq::Every(p)) => shard.set_background_period(Some(p)),
            None => {}
        }
        Ok(())
    }
}

/// Builder for [`ConsistencySpec`]; domains are verified in
/// [`ConsistencySpecBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct ConsistencySpecBuilder {
    spec: ConsistencySpec,
    policy_code: Option<u8>,
}

impl ConsistencySpecBuilder {
    /// Casts the application onto IDEA's metric: saturation maxima for the
    /// numerical, order and staleness members (Table-1
    /// `set_consistency_metric(a, b, c)`).
    pub fn metric(mut self, numerical: f64, order: f64, staleness: SimDuration) -> Self {
        self.spec.bounds = Some(MaxBounds { numerical, order, staleness });
        self
    }

    /// Sets the Formula-1 weights (Table-1 `set_weight(a, b, c)`). A member
    /// is disabled by weight 0.
    pub fn weights(mut self, numerical: f64, order: f64, staleness: f64) -> Self {
        self.spec.weights = Some(Weights { numerical, order, staleness });
        self
    }

    /// Selects the resolution strategy by its typed name.
    pub fn resolution(mut self, policy: ResolutionPolicy) -> Self {
        self.spec.policy = Some(policy);
        self.policy_code = None;
        self
    }

    /// Selects the resolution strategy by its Table-1 integer code
    /// (1 = invalidate both, 2 = highest id wins, 3 = priority wins) —
    /// the compatibility path; prefer [`ConsistencySpecBuilder::resolution`].
    pub fn resolution_code(mut self, code: u8) -> Self {
        self.policy_code = Some(code);
        self.spec.policy = None;
        self
    }

    /// Sets the hint floor in `[0, 1]` (Table-1 `set_hint(h)`); 0 marks the
    /// system as not hint-based, 1 tolerates no inconsistency.
    pub fn hint(mut self, hint: f64) -> Self {
        self.spec.hint = Some(hint);
        self
    }

    /// Runs background resolution every `period` (Table-1
    /// `set_background_freq(f)`, as a period).
    pub fn background_every(mut self, period: SimDuration) -> Self {
        self.spec.background = Some(BackgroundFreq::Every(period));
        self
    }

    /// Disables background resolution.
    pub fn no_background(mut self) -> Self {
        self.spec.background = Some(BackgroundFreq::Disabled);
        self
    }

    /// Validates every provided field and returns the immutable spec.
    ///
    /// # Errors
    /// Fails with [`IdeaError::InvalidParameter`] on non-positive metric
    /// maxima, negative or all-zero weights, an unknown resolution code, a
    /// hint outside `[0, 1]`, or a zero background period.
    pub fn build(mut self) -> Result<ConsistencySpec> {
        if let Some(code) = self.policy_code {
            self.spec.policy = Some(
                ResolutionPolicy::from_code(code)
                    .ok_or(IdeaError::InvalidParameter("unknown resolution policy code"))?,
            );
        }
        self.spec.validate()?;
        Ok(self.spec)
    }
}

// ====================================================================
// Command / Response: the serializable operation surface
// ====================================================================

/// One client operation against a node — plain serializable data, the wire
/// unit a future TCP frontend will carry. Covers the end-user interface
/// (write, read, peek, level, report, demand-resolution, dissatisfaction)
/// and every Table-1 setter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Issue a local write (§4.2 trigger).
    Write {
        /// Object to write.
        object: ObjectId,
        /// Critical-metadata delta the write contributes.
        meta_delta: i64,
        /// Application payload.
        payload: UpdatePayload,
    },
    /// Read the object at the requested consistency.
    Read {
        /// Object to read.
        object: ObjectId,
        /// Per-operation consistency requirement.
        consistency: ReadConsistency,
    },
    /// Cheap poll of the value view — never triggers detection.
    Peek {
        /// Object to peek at.
        object: ObjectId,
    },
    /// The node's current consistency-level estimate.
    Level {
        /// Object queried.
        object: ObjectId,
    },
    /// Full node report for the object.
    Report {
        /// Object reported on.
        object: ObjectId,
    },
    /// End-user demand for an active resolution (§5.1 on-demand mode).
    DemandResolution {
        /// Object to resolve.
        object: ObjectId,
    },
    /// End-user dissatisfaction feedback (§5.1): raise the hint floor by Δ
    /// and resolve, optionally re-weighting the metrics first.
    Dissatisfied {
        /// Object the user is unhappy about.
        object: ObjectId,
        /// Optional re-weighting of the three metrics.
        new_weights: Option<Weights>,
    },
    /// Table-1 `set_consistency_metric(a, b, c)`.
    SetConsistencyMetric {
        /// Numerical-error saturation maximum.
        numerical_max: f64,
        /// Order-error saturation maximum.
        order_max: f64,
        /// Staleness saturation maximum.
        staleness_max: SimDuration,
    },
    /// Table-1 `set_weight(a, b, c)`.
    SetWeight {
        /// Numerical-error weight.
        numerical: f64,
        /// Order-error weight.
        order: f64,
        /// Staleness weight.
        staleness: f64,
    },
    /// Table-1 `set_resolution(r)` by integer code.
    SetResolution {
        /// Policy code (1 = invalidate both, 2 = highest id, 3 = priority).
        code: u8,
    },
    /// Table-1 `set_hint(h)`.
    SetHint {
        /// Hint floor in `[0, 1]`.
        hint: f64,
    },
    /// Table-1 `set_background_freq(f)` (as a period; `None` disables).
    SetBackgroundFreq {
        /// Background-resolution period.
        period: Option<SimDuration>,
    },
    /// Assigns a priority rank to a node (for
    /// [`ResolutionPolicy::PriorityWins`]).
    SetPriority {
        /// Node whose rank is being set.
        node: NodeId,
        /// Priority rank (higher wins).
        priority: u8,
    },
    /// Applies a whole [`ConsistencySpec`] atomically.
    Configure {
        /// The validated spec to apply.
        spec: ConsistencySpec,
    },
}

impl Command {
    /// The object a command addresses, when it is object-addressed — the
    /// routing key the sharded engine hashes (`ShardId::of`). Node-wide
    /// commands (the Table-1 setters) return `None` and fan out to every
    /// shard instead.
    pub fn object(&self) -> Option<ObjectId> {
        match self {
            Command::Write { object, .. }
            | Command::Read { object, .. }
            | Command::Peek { object }
            | Command::Level { object }
            | Command::Report { object }
            | Command::DemandResolution { object }
            | Command::Dissatisfied { object, .. } => Some(*object),
            Command::SetConsistencyMetric { .. }
            | Command::SetWeight { .. }
            | Command::SetResolution { .. }
            | Command::SetHint { .. }
            | Command::SetBackgroundFreq { .. }
            | Command::SetPriority { .. }
            | Command::Configure { .. } => None,
        }
    }
}

/// What a read or peek returns over the command layer: the replica's value
/// view plus the node's level estimate — serializable, unlike the borrowing
/// store snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadResult {
    /// The object read.
    pub object: ObjectId,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// Updates reflected in the replica.
    pub updates: usize,
    /// Issue time of the newest applied update, if any.
    pub latest_update: Option<SimTime>,
    /// The node's consistency-level estimate at read time.
    pub level: ConsistencyLevel,
    /// Whether this read launched a detection probe (read-policy or
    /// consistency-floor triggered).
    pub probed: bool,
}

impl ReadResult {
    fn from_snapshot(snap: &Snapshot, level: ConsistencyLevel, probed: bool) -> Self {
        ReadResult {
            object: snap.object,
            meta: snap.meta,
            updates: snap.updates,
            latest_update: snap.latest_update,
            level,
            probed,
        }
    }

    /// Copies the scalar fields straight off the borrowing view — no
    /// version-vector clone, which is the whole point of `Peek`.
    fn from_view(view: &idea_store::SnapshotView<'_>, level: ConsistencyLevel) -> Self {
        ReadResult {
            object: view.object,
            meta: view.meta,
            updates: view.updates,
            latest_update: view.latest_update,
            level,
            probed: false,
        }
    }
}

/// The outcome of one [`Command`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The command succeeded and has no payload.
    Done,
    /// A write was applied; the sanctioned update is returned.
    Written {
        /// The update as recorded by the local replica.
        update: Update,
    },
    /// A read or peek succeeded.
    Value {
        /// The replica's value view.
        read: ReadResult,
    },
    /// A level query succeeded.
    Level {
        /// The node's current estimate.
        level: ConsistencyLevel,
    },
    /// A report query succeeded.
    Report {
        /// The full per-object node report.
        report: NodeReport,
    },
    /// The command was rejected (unknown object, out-of-domain parameter,
    /// unavailable engine) — the typed error is serializable, so rejection
    /// behaviour is identical in-process and across a transport.
    Rejected {
        /// Why the command was rejected.
        error: WireError,
    },
}

impl Response {
    fn err(e: impl Into<WireError>) -> Response {
        Response::Rejected { error: e.into() }
    }
}

/// A rejected command, surfaced by the [`Session`] API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandError {
    /// Why the command was rejected.
    pub error: WireError,
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "command rejected: {}", self.error)
    }
}

impl std::error::Error for CommandError {}

impl From<IdeaError> for CommandError {
    fn from(e: IdeaError) -> Self {
        CommandError { error: e.into() }
    }
}

impl From<WireError> for CommandError {
    fn from(error: WireError) -> Self {
        CommandError { error }
    }
}

/// Maps an unexpected response shape to a [`CommandError`].
fn unexpected(what: &'static str, got: Response) -> CommandError {
    match got {
        Response::Rejected { error } => CommandError { error },
        other => {
            CommandError { error: WireError::Protocol(format!("expected {what}, got {other:?}")) }
        }
    }
}

// ====================================================================
// Command execution
// ====================================================================

/// Executes one command against a whole node (single-worker engines; also
/// the path the applications use from inside protocol callbacks).
pub fn apply_to_node(
    node: &mut IdeaNode,
    cmd: Command,
    ctx: &mut dyn Context<IdeaMsg>,
) -> Response {
    match cmd {
        Command::Write { object, meta_delta, payload } => {
            if let Err(e) = node.replica(object) {
                return Response::err(e);
            }
            Response::Written { update: node.local_write(object, meta_delta, payload, ctx) }
        }
        Command::Read { object, consistency } => match node.read_with(object, consistency, ctx) {
            Ok((snap, probed)) => Response::Value {
                read: ReadResult::from_snapshot(&snap, node.level(object), probed),
            },
            Err(e) => Response::err(e),
        },
        Command::Peek { object } => match node.peek(object) {
            Ok(view) => {
                let read = ReadResult::from_view(&view, node.level(object));
                Response::Value { read }
            }
            Err(e) => Response::err(e),
        },
        Command::Level { object } => match node.replica(object) {
            Ok(_) => Response::Level { level: node.level(object) },
            Err(e) => Response::err(e),
        },
        Command::Report { object } => match node.replica(object) {
            Ok(_) => Response::Report { report: node.report(object) },
            Err(e) => Response::err(e),
        },
        Command::DemandResolution { object } => {
            if let Err(e) = node.replica(object) {
                return Response::err(e);
            }
            node.demand_active_resolution(object, ctx);
            Response::Done
        }
        Command::Dissatisfied { object, new_weights } => {
            if let Err(e) = node.replica(object) {
                return Response::err(e);
            }
            if let Err(e) = validate_weights(&new_weights) {
                return Response::err(e);
            }
            node.user_dissatisfied(object, new_weights, ctx);
            Response::Done
        }
        Command::SetPriority { node: target, priority } => {
            node.set_priority(target, priority);
            Response::Done
        }
        other => match setter_spec(other) {
            Ok(spec) => match spec.apply_to(node) {
                Ok(()) => Response::Done,
                Err(e) => Response::err(e),
            },
            Err(e) => Response::err(e),
        },
    }
}

/// Executes one command against a single shard — the sharded engine's unit
/// of dispatch. Object-addressed commands must be routed to the owning
/// shard (`ShardId::of`, the same hash the message mailboxes use);
/// node-wide setters are applied to this shard only, the engine fans them
/// out.
pub fn apply_to_shard(
    shard: &mut ProtocolShard,
    cmd: Command,
    ctx: &mut dyn Context<IdeaMsg>,
) -> Response {
    match cmd {
        Command::Write { object, meta_delta, payload } => {
            if let Err(e) = shard.store().replica(object) {
                return Response::err(e);
            }
            Response::Written { update: shard.local_write(object, meta_delta, payload, ctx) }
        }
        Command::Read { object, consistency } => match shard.read_with(object, consistency, ctx) {
            Ok((snap, probed)) => Response::Value {
                read: ReadResult::from_snapshot(&snap, shard.level(object), probed),
            },
            Err(e) => Response::err(e),
        },
        Command::Peek { object } => match shard.peek(object) {
            Ok(view) => {
                let read = ReadResult::from_view(&view, shard.level(object));
                Response::Value { read }
            }
            Err(e) => Response::err(e),
        },
        Command::Level { object } => match shard.store().replica(object) {
            Ok(_) => Response::Level { level: shard.level(object) },
            Err(e) => Response::err(e),
        },
        Command::Report { object } => match shard.store().replica(object) {
            Ok(_) => Response::Report { report: shard.report(object) },
            Err(e) => Response::err(e),
        },
        Command::DemandResolution { object } => {
            if let Err(e) = shard.store().replica(object) {
                return Response::err(e);
            }
            shard.demand_active_resolution(object, ctx);
            Response::Done
        }
        Command::Dissatisfied { object, new_weights } => {
            if let Err(e) = shard.store().replica(object) {
                return Response::err(e);
            }
            if let Err(e) = validate_weights(&new_weights) {
                return Response::err(e);
            }
            shard.user_dissatisfied(object, new_weights, ctx);
            Response::Done
        }
        Command::SetPriority { node: target, priority } => {
            shard.set_priority(target, priority);
            Response::Done
        }
        other => match setter_spec(other) {
            Ok(spec) => match spec.apply_to_shard(shard) {
                Ok(()) => Response::Done,
                Err(e) => Response::err(e),
            },
            Err(e) => Response::err(e),
        },
    }
}

fn validate_weights(w: &Option<Weights>) -> Result<()> {
    if let Some(w) = w {
        ConsistencySpec::builder().weights(w.numerical, w.order, w.staleness).build()?;
    }
    Ok(())
}

/// Lowers a Table-1 setter command to a validated one-field spec.
fn setter_spec(cmd: Command) -> Result<ConsistencySpec> {
    let b = ConsistencySpec::builder();
    match cmd {
        Command::SetConsistencyMetric { numerical_max, order_max, staleness_max } => {
            b.metric(numerical_max, order_max, staleness_max).build()
        }
        Command::SetWeight { numerical, order, staleness } => {
            b.weights(numerical, order, staleness).build()
        }
        Command::SetResolution { code } => b.resolution_code(code).build(),
        Command::SetHint { hint } => b.hint(hint).build(),
        Command::SetBackgroundFreq { period: Some(p) } => b.background_every(p).build(),
        Command::SetBackgroundFreq { period: None } => b.no_background().build(),
        Command::Configure { spec } => {
            spec.validate()?;
            Ok(spec)
        }
        other => unreachable!("not a setter command: {other:?}"),
    }
}

// ====================================================================
// EngineHandle / CommandExecutor: the execution surface over every engine
// ====================================================================

/// A running deployment that can execute client [`Command`]s against its
/// nodes — the surface [`Session`]s are written against. Implemented by all
/// three in-process engines and by the TCP client stub in
/// `idea-transport`, so session-based application code compiles once and
/// runs unchanged locally or against a remote cluster.
///
/// `EngineHandle` is the *exclusive-access* trait (`&mut self`, works for
/// the single-threaded [`SimEngine`]). Engines that can take commands from
/// many threads at once additionally implement the object-safe
/// [`CommandExecutor`] split, which is what a network server fronts; any
/// `Arc<impl CommandExecutor>` is an `EngineHandle` again, so sessions run
/// against shared engines too.
pub trait EngineHandle {
    /// Number of nodes in the deployment.
    fn nodes(&self) -> usize;

    /// Executes `cmd` on `node` and waits for the response. On the
    /// deterministic engine this runs inline in virtual time; on the
    /// threaded engines it posts to the owning worker's mailbox and blocks
    /// for the reply. Engine-level failures (dead worker, lost connection)
    /// surface as [`Response::Rejected`] with the typed [`WireError`] — no
    /// engine panics across this boundary.
    fn execute(&mut self, node: NodeId, cmd: Command) -> Response;

    /// Fire-and-forget variant: posts the command without waiting for its
    /// response. On the threaded engines and the remote stub this is the
    /// genuinely pipelined write-drain fast path — the call returns once
    /// the command is enqueued (or written to the socket), never blocking
    /// on the reply; the deterministic engine executes inline and discards
    /// the response.
    fn submit(&mut self, node: NodeId, cmd: Command) {
        let _ = self.execute(node, cmd);
    }
}

/// A reply callback handed to [`CommandExecutor::dispatch`]; invoked
/// exactly once with the command's outcome, possibly from a worker thread.
pub type ReplyFn = Box<dyn FnOnce(Response) + Send + 'static>;

/// The object-safe, shared-access half of the engine surface: what a
/// network server boxes and fronts. Everything is `&self` (connection
/// handler threads share one executor) and fallible — an engine whose
/// workers are gone returns [`WireError::EngineUnavailable`] instead of
/// panicking, so the same typed error crosses the wire that local callers
/// see.
///
/// Implementors: [`ThreadedEngine`], [`ShardedEngine`] (commands go
/// straight into the existing per-node / per-shard mailboxes),
/// [`LockedEngine`] (any `EngineHandle` behind a mutex — how the
/// deterministic engine is served), and the `RemoteEngine` client stub in
/// `idea-transport` (proxying makes a server chainable).
pub trait CommandExecutor: Send + Sync {
    /// Number of nodes in the deployment.
    fn node_count(&self) -> usize;

    /// Executes `cmd` on `node`, blocking for the outcome.
    ///
    /// # Errors
    /// `Err` is reserved for *engine/transport* failures (dead worker,
    /// closed connection); command-level rejections (unknown object,
    /// out-of-domain parameter) arrive as `Ok(Response::Rejected { .. })`.
    fn try_execute(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError>;

    /// Non-blocking dispatch: hands the command to the owning worker's
    /// mailbox where the engine supports it and returns immediately;
    /// `reply` is invoked with the outcome once the worker processed it.
    /// This is what lets one server connection pipeline many in-flight
    /// requests. The default implementation (and node-wide commands on the
    /// sharded engine) executes inline — correct, just not pipelined.
    fn dispatch(&self, node: NodeId, cmd: Command, reply: ReplyFn) {
        let outcome = self.try_execute(node, cmd).unwrap_or_else(Response::err);
        reply(outcome);
    }

    /// Fire-and-forget submission: enqueues the command without any reply
    /// path at all. Command-level rejections (unknown node or object,
    /// out-of-domain parameter) are silently dropped — there is nowhere to
    /// report them, matching [`EngineHandle::submit`].
    ///
    /// # Errors
    /// `Err` is reserved for the engine (or the connection to it) no
    /// longer accepting commands — a consumer may treat it as fatal for
    /// the whole executor, never as a per-command rejection.
    fn try_submit(&self, node: NodeId, cmd: Command) -> std::result::Result<(), WireError> {
        self.try_execute(node, cmd).map(|_| ())
    }
}

/// The typed error for an engine whose worker threads are gone.
fn engine_unavailable() -> WireError {
    WireError::EngineUnavailable("engine worker stopped".into())
}

/// A one-shot reply slot shared between the "posted into the mailbox" and
/// the "mailbox already closed" paths of [`CommandExecutor::dispatch`]:
/// whichever side runs first consumes the callback. If neither side ever
/// runs — the engine accepted the envelope but stopped before processing
/// it, dropping the closure unrun — the drop of the last reference answers
/// with [`WireError::EngineUnavailable`], so a caller blocked on the reply
/// fails fast instead of waiting out a timeout.
#[derive(Clone)]
struct ReplyCell(Arc<ReplyCellInner>);

struct ReplyCellInner(Mutex<Option<ReplyFn>>);

impl ReplyCell {
    fn new(reply: ReplyFn) -> Self {
        ReplyCell(Arc::new(ReplyCellInner(Mutex::new(Some(reply)))))
    }

    fn call(&self, response: Response) {
        if let Some(reply) = self.0 .0.lock().take() {
            reply(response);
        }
    }
}

impl Drop for ReplyCellInner {
    fn drop(&mut self) {
        if let Some(reply) = self.0.lock().take() {
            reply(Response::err(engine_unavailable()));
        }
    }
}

/// Any [`EngineHandle`] behind a mutex is a shareable [`CommandExecutor`]:
/// commands serialize through the lock. This is how the deterministic
/// [`SimEngine`] — whose command execution is inline and `&mut` — is
/// served over a transport, and it doubles as a correctness reference for
/// the lock-free engine executors.
pub struct LockedEngine<E> {
    inner: Mutex<E>,
}

impl<E> LockedEngine<E> {
    /// Wraps an engine for shared access.
    pub fn new(engine: E) -> Self {
        LockedEngine { inner: Mutex::new(engine) }
    }

    /// Unwraps the engine again (e.g. to stop it after serving).
    pub fn into_inner(self) -> E {
        self.inner.into_inner()
    }

    /// Runs `f` with exclusive access to the wrapped engine — the escape
    /// hatch for engine-specific driving (e.g. `SimEngine::run_for`)
    /// between served commands.
    pub fn with<R>(&self, f: impl FnOnce(&mut E) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<E: EngineHandle + Send> CommandExecutor for LockedEngine<E> {
    fn node_count(&self) -> usize {
        self.inner.lock().nodes()
    }

    fn try_execute(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        Ok(self.inner.lock().execute(node, cmd))
    }

    fn try_submit(&self, node: NodeId, cmd: Command) -> std::result::Result<(), WireError> {
        self.inner.lock().submit(node, cmd);
        Ok(())
    }
}

/// A shared executor is itself an [`EngineHandle`], so `Session`s run
/// unchanged against an engine that is concurrently being served (or
/// against any boxed `Arc<dyn CommandExecutor>`).
impl<E: CommandExecutor + ?Sized> EngineHandle for Arc<E> {
    fn nodes(&self) -> usize {
        self.as_ref().node_count()
    }

    fn execute(&mut self, node: NodeId, cmd: Command) -> Response {
        self.as_ref().try_execute(node, cmd).unwrap_or_else(Response::err)
    }

    fn submit(&mut self, node: NodeId, cmd: Command) {
        let _ = self.as_ref().try_submit(node, cmd);
    }
}

/// Anything that embeds an [`IdeaNode`] — the identity for `IdeaNode`
/// itself, and the applications' client types (white board, booking) in
/// `idea-apps`. This is what lets the engine handles drive application
/// protocols through the same command layer.
pub trait IdeaHost {
    /// The embedded IDEA node.
    fn idea(&self) -> &IdeaNode;
    /// Mutable access to the embedded IDEA node.
    fn idea_mut(&mut self) -> &mut IdeaNode;
}

impl IdeaHost for IdeaNode {
    fn idea(&self) -> &IdeaNode {
        self
    }
    fn idea_mut(&mut self) -> &mut IdeaNode {
        self
    }
}

impl<P> EngineHandle for SimEngine<P>
where
    P: Proto<Msg = IdeaMsg> + IdeaHost,
{
    fn nodes(&self) -> usize {
        self.len()
    }

    fn execute(&mut self, node: NodeId, cmd: Command) -> Response {
        if node.index() >= self.len() {
            return Response::err(IdeaError::UnknownNode(node));
        }
        self.with_node(node, |p, ctx| apply_to_node(p.idea_mut(), cmd, ctx))
    }
}

impl<P> CommandExecutor for ThreadedEngine<P>
where
    P: Proto<Msg = IdeaMsg> + IdeaHost + 'static,
{
    fn node_count(&self) -> usize {
        self.len()
    }

    fn try_execute(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        if node.index() >= self.len() {
            return Ok(Response::err(IdeaError::UnknownNode(node)));
        }
        self.try_query(node, move |p, ctx| apply_to_node(p.idea_mut(), cmd, ctx))
            .ok_or_else(engine_unavailable)
    }

    fn dispatch(&self, node: NodeId, cmd: Command, reply: ReplyFn) {
        if node.index() >= self.len() {
            return reply(Response::err(IdeaError::UnknownNode(node)));
        }
        let cell = ReplyCell::new(reply);
        let in_worker = cell.clone();
        if !self.try_invoke(node, move |p, ctx| {
            in_worker.call(apply_to_node(p.idea_mut(), cmd, ctx));
        }) {
            cell.call(Response::err(engine_unavailable()));
        }
    }

    fn try_submit(&self, node: NodeId, cmd: Command) -> std::result::Result<(), WireError> {
        if node.index() >= self.len() {
            return Ok(()); // dropped rejection, per the trait contract
        }
        if self.try_invoke(node, move |p, ctx| {
            let _ = apply_to_node(p.idea_mut(), cmd, ctx);
        }) {
            Ok(())
        } else {
            Err(engine_unavailable())
        }
    }
}

impl<P> EngineHandle for ThreadedEngine<P>
where
    P: Proto<Msg = IdeaMsg> + IdeaHost + 'static,
{
    fn nodes(&self) -> usize {
        self.len()
    }

    fn execute(&mut self, node: NodeId, cmd: Command) -> Response {
        CommandExecutor::try_execute(self, node, cmd).unwrap_or_else(Response::err)
    }

    fn submit(&mut self, node: NodeId, cmd: Command) {
        let _ = CommandExecutor::try_submit(self, node, cmd);
    }
}

impl<P> CommandExecutor for ShardedEngine<P>
where
    P: ShardedProto<Msg = IdeaMsg, Shard = ProtocolShard> + 'static,
{
    fn node_count(&self) -> usize {
        self.len()
    }

    fn try_execute(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        if node.index() >= self.len() {
            return Ok(Response::err(IdeaError::UnknownNode(node)));
        }
        match cmd {
            // The report aggregates node-wide pieces across shard workers,
            // exactly like `IdeaNode::report` does in-process.
            Command::Report { object } => {
                let owner = self.shard_for_object(object);
                let report = self
                    .try_query(node, owner, move |s, ctx| {
                        apply_to_shard(s, Command::Report { object }, ctx)
                    })
                    .ok_or_else(engine_unavailable)?;
                let Response::Report { mut report } = report else {
                    return Ok(report); // Rejected (unknown object)
                };
                for shard in (0..self.shards()).filter(|&s| s != owner) {
                    report.resolutions_initiated += self
                        .try_query(node, shard, |s, _| s.resolutions_completed())
                        .ok_or_else(engine_unavailable)?;
                }
                Ok(Response::Report { report })
            }
            // Re-weighting on dissatisfaction is node-wide: fan the weights
            // to every worker, then resolve on the owning shard (the same
            // split `IdeaNode::user_dissatisfied` performs). The owning
            // shard validates object and weights *before* the fan-out so a
            // rejected command mutates nothing — the same atomicity the
            // single-worker engines get from their up-front checks.
            Command::Dissatisfied { object, new_weights: Some(w) } => {
                match self.dissatisfied_checks(node, object, w)? {
                    Response::Done => {}
                    rejected => return Ok(rejected),
                }
                let weights = Command::SetWeight {
                    numerical: w.numerical,
                    order: w.order,
                    staleness: w.staleness,
                };
                let r = self.fan_out(node, weights)?;
                if !matches!(r, Response::Done) {
                    return Ok(r);
                }
                let owner = self.shard_for_object(object);
                self.try_query(node, owner, move |s, ctx| {
                    apply_to_shard(s, Command::Dissatisfied { object, new_weights: None }, ctx)
                })
                .ok_or_else(engine_unavailable)
            }
            cmd => match cmd.object() {
                Some(object) => {
                    let owner = self.shard_for_object(object);
                    self.try_query(node, owner, move |s, ctx| apply_to_shard(s, cmd, ctx))
                        .ok_or_else(engine_unavailable)
                }
                None => self.fan_out(node, cmd),
            },
        }
    }

    fn dispatch(&self, node: NodeId, cmd: Command, reply: ReplyFn) {
        if node.index() >= self.len() {
            return reply(Response::err(IdeaError::UnknownNode(node)));
        }
        // Object-addressed commands pipeline through the owning shard's
        // mailbox. The two multi-shard commands (report aggregation,
        // re-weighting dissatisfaction) and the node-wide setters execute
        // inline on the calling thread — they are control-plane traffic.
        let multi_shard = matches!(
            cmd,
            Command::Report { .. } | Command::Dissatisfied { new_weights: Some(_), .. }
        );
        match cmd.object() {
            Some(object) if !multi_shard => {
                let owner = self.shard_for_object(object);
                let cell = ReplyCell::new(reply);
                let in_worker = cell.clone();
                if !self.try_invoke(node, owner, move |s, ctx| {
                    in_worker.call(apply_to_shard(s, cmd, ctx));
                }) {
                    cell.call(Response::err(engine_unavailable()));
                }
            }
            _ => {
                let outcome = self.try_execute(node, cmd).unwrap_or_else(Response::err);
                reply(outcome);
            }
        }
    }

    fn try_submit(&self, node: NodeId, cmd: Command) -> std::result::Result<(), WireError> {
        if node.index() >= self.len() {
            return Ok(()); // dropped rejection, per the trait contract
        }
        match cmd {
            // Same node-wide split as try_execute(): without it the
            // re-weighting would land on the owning shard alone.
            Command::Dissatisfied { new_weights: Some(_), .. } => {
                self.try_execute(node, cmd).map(|_| ())
            }
            cmd => match cmd.object() {
                Some(object) => {
                    let owner = self.shard_for_object(object);
                    if self.try_invoke(node, owner, move |s, ctx| {
                        let _ = apply_to_shard(s, cmd, ctx);
                    }) {
                        Ok(())
                    } else {
                        Err(engine_unavailable())
                    }
                }
                None => self.fan_out(node, cmd).map(|_| ()),
            },
        }
    }
}

impl<P> EngineHandle for ShardedEngine<P>
where
    P: ShardedProto<Msg = IdeaMsg, Shard = ProtocolShard> + 'static,
{
    fn nodes(&self) -> usize {
        self.len()
    }

    fn execute(&mut self, node: NodeId, cmd: Command) -> Response {
        CommandExecutor::try_execute(self, node, cmd).unwrap_or_else(Response::err)
    }

    fn submit(&mut self, node: NodeId, cmd: Command) {
        let _ = CommandExecutor::try_submit(self, node, cmd);
    }
}

/// Node-wide helpers for the sharded engine's command routing.
trait FanOut {
    /// Applies the same command on every shard worker, returning the first
    /// rejection (shards validate identically, so either all accept or all
    /// reject).
    fn fan_out(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError>;

    /// Side-effect-free validation of a re-weighting dissatisfaction:
    /// weights in domain, object hosted by its owning shard. `Done` means
    /// the mutating fan-out may proceed.
    fn dissatisfied_checks(
        &self,
        node: NodeId,
        object: ObjectId,
        w: Weights,
    ) -> std::result::Result<Response, WireError>;
}

impl<P> FanOut for ShardedEngine<P>
where
    P: ShardedProto<Msg = IdeaMsg, Shard = ProtocolShard> + 'static,
{
    fn fan_out(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        let mut out = Response::Done;
        for shard in 0..self.shards() {
            let c = cmd.clone();
            let r = self
                .try_query(node, shard, move |s, ctx| apply_to_shard(s, c, ctx))
                .ok_or_else(engine_unavailable)?;
            if matches!(r, Response::Rejected { .. }) {
                return Ok(r);
            }
            out = r;
        }
        Ok(out)
    }

    fn dissatisfied_checks(
        &self,
        node: NodeId,
        object: ObjectId,
        w: Weights,
    ) -> std::result::Result<Response, WireError> {
        if let Err(e) = validate_weights(&Some(w)) {
            return Ok(Response::err(e));
        }
        let owner = self.shard_for_object(object);
        self.try_query(node, owner, move |s, _| match s.store().replica(object) {
            Ok(_) => Response::Done,
            Err(e) => Response::err(e),
        })
        .ok_or_else(engine_unavailable)
    }
}

// ====================================================================
// Session / ObjectHandle: the ergonomic application API
// ====================================================================

/// A client session bound to one node of a running deployment. Carries the
/// session defaults (read consistency; hint and priority are set through
/// the session-level setters) and hands out per-object [`ObjectHandle`]s.
///
/// ```
/// use idea_core::client::{ReadConsistency, Session};
/// use idea_core::{IdeaConfig, IdeaNode};
/// use idea_net::{SimConfig, SimEngine, Topology};
/// use idea_types::{ConsistencyLevel, NodeId, ObjectId, UpdatePayload};
///
/// let object = ObjectId(1);
/// let nodes: Vec<IdeaNode> =
///     (0..2).map(|i| IdeaNode::new(NodeId(i), IdeaConfig::default(), &[object])).collect();
/// let mut net = SimEngine::new(Topology::lan(2), SimConfig::default(), nodes);
///
/// let mut session = Session::open(&mut net, NodeId(0))
///     .read_consistency(ReadConsistency::AtLeast(ConsistencyLevel::new(0.9)));
/// let mut board = session.object(object);
/// board.write(7, UpdatePayload::none()).unwrap();
/// let read = board.read().unwrap();
/// assert_eq!(read.meta, 7);
/// ```
pub struct Session<'e, E: EngineHandle + ?Sized> {
    engine: &'e mut E,
    node: NodeId,
    read: ReadConsistency,
}

impl<'e, E: EngineHandle + ?Sized> Session<'e, E> {
    /// Opens a session against `node` of a running deployment.
    pub fn open(engine: &'e mut E, node: NodeId) -> Self {
        Session { engine, node, read: ReadConsistency::Any }
    }

    /// The node this session talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sets the session's default read consistency (used by
    /// [`ObjectHandle::read`]).
    pub fn read_consistency(mut self, read: ReadConsistency) -> Self {
        self.read = read;
        self
    }

    /// Executes a raw command on the session's node.
    pub fn execute(&mut self, cmd: Command) -> Response {
        self.engine.execute(self.node, cmd)
    }

    /// Posts a raw command without waiting for the response.
    pub fn submit(&mut self, cmd: Command) {
        self.engine.submit(self.node, cmd);
    }

    /// Applies a validated [`ConsistencySpec`] to the session's node.
    ///
    /// # Errors
    /// Propagates a rejection (only possible for hand-built or
    /// deserialized specs that bypassed the builder).
    pub fn configure(&mut self, spec: ConsistencySpec) -> std::result::Result<(), CommandError> {
        match self.execute(Command::Configure { spec }) {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", other)),
        }
    }

    /// Sets this session's hint floor (Table-1 `set_hint`; node-wide on the
    /// session's node).
    ///
    /// # Errors
    /// Fails when the hint is outside `[0, 1]`.
    pub fn set_hint(&mut self, hint: f64) -> std::result::Result<(), CommandError> {
        match self.execute(Command::SetHint { hint }) {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", other)),
        }
    }

    /// Registers this session's node priority (for
    /// [`ResolutionPolicy::PriorityWins`]) on **every** node of the
    /// deployment — priorities are consulted by whichever node initiates a
    /// resolution.
    ///
    /// # Errors
    /// Propagates the first rejection.
    pub fn set_priority(&mut self, priority: u8) -> std::result::Result<(), CommandError> {
        let me = self.node;
        for i in 0..self.engine.nodes() {
            let r =
                self.engine.execute(NodeId(i as u32), Command::SetPriority { node: me, priority });
            if !matches!(r, Response::Done) {
                return Err(unexpected("Done", r));
            }
        }
        Ok(())
    }

    /// A handle on one replicated object through this session.
    pub fn object(&mut self, object: ObjectId) -> ObjectHandle<'_, 'e, E> {
        ObjectHandle { session: self, object }
    }
}

/// One replicated object as seen through a [`Session`].
pub struct ObjectHandle<'s, 'e, E: EngineHandle + ?Sized> {
    session: &'s mut Session<'e, E>,
    object: ObjectId,
}

impl<E: EngineHandle + ?Sized> ObjectHandle<'_, '_, E> {
    /// The object this handle addresses.
    pub fn id(&self) -> ObjectId {
        self.object
    }

    /// Writes to the object and returns the sanctioned update.
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object.
    pub fn write(
        &mut self,
        meta_delta: i64,
        payload: UpdatePayload,
    ) -> std::result::Result<Update, CommandError> {
        let object = self.object;
        match self.session.execute(Command::Write { object, meta_delta, payload }) {
            Response::Written { update } => Ok(update),
            other => Err(unexpected("Written", other)),
        }
    }

    /// Posts a write without waiting for the sanctioned update — the
    /// fire-and-forget fast path.
    pub fn post(&mut self, meta_delta: i64, payload: UpdatePayload) {
        let object = self.object;
        self.session.submit(Command::Write { object, meta_delta, payload });
    }

    /// Reads the object at the session's default read consistency.
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object.
    pub fn read(&mut self) -> std::result::Result<ReadResult, CommandError> {
        let consistency = self.session.read;
        self.read_with(consistency)
    }

    /// Reads the object at an explicit per-operation consistency.
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object.
    pub fn read_with(
        &mut self,
        consistency: ReadConsistency,
    ) -> std::result::Result<ReadResult, CommandError> {
        let object = self.object;
        match self.session.execute(Command::Read { object, consistency }) {
            Response::Value { read } => Ok(read),
            other => Err(unexpected("Value", other)),
        }
    }

    /// Cheap poll of the value view; never triggers detection.
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object.
    pub fn peek(&mut self) -> std::result::Result<ReadResult, CommandError> {
        let object = self.object;
        match self.session.execute(Command::Peek { object }) {
            Response::Value { read } => Ok(read),
            other => Err(unexpected("Value", other)),
        }
    }

    /// The node's current consistency-level estimate for the object.
    ///
    /// # Errors
    /// Fails when the node is unknown or hosts no replica of the object —
    /// surfaced rather than mapped to a sentinel level, so a poll-until-
    /// floor loop cannot spin forever against a nonexistent target.
    pub fn level(&mut self) -> std::result::Result<ConsistencyLevel, CommandError> {
        let object = self.object;
        match self.session.execute(Command::Level { object }) {
            Response::Level { level } => Ok(level),
            other => Err(unexpected("Level", other)),
        }
    }

    /// Full node report for the object.
    ///
    /// # Errors
    /// Fails when the command is rejected (unknown node).
    pub fn report(&mut self) -> std::result::Result<NodeReport, CommandError> {
        let object = self.object;
        match self.session.execute(Command::Report { object }) {
            Response::Report { report } => Ok(report),
            other => Err(unexpected("Report", other)),
        }
    }

    /// Demands an active resolution of the object (§5.1 on-demand mode).
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object.
    pub fn demand_resolution(&mut self) -> std::result::Result<(), CommandError> {
        let object = self.object;
        match self.session.execute(Command::DemandResolution { object }) {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", other)),
        }
    }

    /// Tells IDEA the current consistency is unacceptable (§5.1): raises
    /// the hint floor by Δ and resolves, optionally re-weighting first.
    ///
    /// # Errors
    /// Fails when the session's node hosts no replica of the object or the
    /// weights are out of domain.
    pub fn dissatisfied(
        &mut self,
        new_weights: Option<Weights>,
    ) -> std::result::Result<(), CommandError> {
        let object = self.object;
        match self.session.execute(Command::Dissatisfied { object, new_weights }) {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DeveloperApi;
    use crate::config::IdeaConfig;
    use idea_net::{SimConfig, Topology};

    const OBJ: ObjectId = ObjectId(1);

    fn engine(n: usize) -> SimEngine<IdeaNode> {
        let nodes: Vec<IdeaNode> = (0..n)
            .map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::default(), &[OBJ]))
            .collect();
        SimEngine::new(Topology::lan(n), SimConfig::default(), nodes)
    }

    #[test]
    fn spec_builder_validates_at_construction() {
        assert!(ConsistencySpec::builder()
            .metric(0.0, 1.0, SimDuration::from_secs(1))
            .build()
            .is_err());
        assert!(ConsistencySpec::builder().weights(-1.0, 1.0, 1.0).build().is_err());
        assert!(ConsistencySpec::builder().weights(0.0, 0.0, 0.0).build().is_err());
        assert!(ConsistencySpec::builder().resolution_code(0).build().is_err());
        assert!(ConsistencySpec::builder().resolution_code(4).build().is_err());
        assert!(ConsistencySpec::builder().hint(1.5).build().is_err());
        assert!(ConsistencySpec::builder().background_every(SimDuration::ZERO).build().is_err());
        let ok = ConsistencySpec::builder()
            .metric(10.0, 10.0, SimDuration::from_secs(10))
            .weights(0.4, 0.0, 0.6)
            .resolution(ResolutionPolicy::PriorityWins)
            .hint(0.9)
            .background_every(SimDuration::from_secs(20))
            .build()
            .unwrap();
        assert!(!ok.is_empty());
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn spec_applies_everything_it_carries() {
        let mut node = IdeaNode::new(NodeId(0), IdeaConfig::default(), &[OBJ]);
        let spec = ConsistencySpec::builder()
            .metric(5.0, 6.0, SimDuration::from_secs(7))
            .weights(0.4, 0.0, 0.6)
            .resolution_code(3)
            .hint(0.85)
            .background_every(SimDuration::from_secs(30))
            .build()
            .unwrap();
        spec.apply_to(&mut node).unwrap();
        assert_eq!(node.quantifier().bounds().numerical, 5.0);
        assert_eq!(node.quantifier().weights().order, 0.0);
        assert_eq!(node.config().policy, ResolutionPolicy::PriorityWins);
        assert!((node.hint().floor().value() - 0.85).abs() < 1e-12);
        assert_eq!(node.config().background_period, Some(SimDuration::from_secs(30)));
        ConsistencySpec::builder().no_background().build().unwrap().apply_to(&mut node).unwrap();
        assert_eq!(node.config().background_period, None);
    }

    #[test]
    fn commands_round_trip_through_the_sim_engine() {
        let mut eng = engine(2);
        let r = eng.execute(
            NodeId(0),
            Command::Write { object: OBJ, meta_delta: 4, payload: UpdatePayload::none() },
        );
        let Response::Written { update } = r else { panic!("write must return Written: {r:?}") };
        assert_eq!(update.meta_delta, 4);

        let r = eng
            .execute(NodeId(0), Command::Read { object: OBJ, consistency: ReadConsistency::Any });
        let Response::Value { read } = r else { panic!("read must return Value: {r:?}") };
        assert_eq!(read.meta, 4);
        assert_eq!(read.updates, 1);

        let r = eng.execute(NodeId(0), Command::Level { object: OBJ });
        assert!(matches!(r, Response::Level { .. }));

        let r = eng.execute(NodeId(0), Command::Report { object: OBJ });
        let Response::Report { report } = r else { panic!("report: {r:?}") };
        assert_eq!(report.meta, 4);
    }

    #[test]
    fn unknown_objects_and_nodes_reject_instead_of_panicking() {
        let mut eng = engine(2);
        let missing = ObjectId(99);
        for cmd in [
            Command::Write { object: missing, meta_delta: 1, payload: UpdatePayload::none() },
            Command::Read { object: missing, consistency: ReadConsistency::Fresh },
            Command::Peek { object: missing },
            Command::Level { object: missing },
            Command::Report { object: missing },
            Command::DemandResolution { object: missing },
            Command::Dissatisfied { object: missing, new_weights: None },
        ] {
            assert!(
                matches!(eng.execute(NodeId(0), cmd.clone()), Response::Rejected { .. }),
                "{cmd:?} must reject"
            );
        }
        let r = eng.execute(NodeId(7), Command::Level { object: OBJ });
        assert!(matches!(r, Response::Rejected { .. }));
    }

    #[test]
    fn setter_commands_match_the_developer_api() {
        let mut eng = engine(1);
        assert_eq!(eng.execute(NodeId(0), Command::SetHint { hint: 0.9 }), Response::Done);
        assert!(matches!(
            eng.execute(NodeId(0), Command::SetHint { hint: 1.5 }),
            Response::Rejected { .. }
        ));
        assert_eq!(eng.execute(NodeId(0), Command::SetResolution { code: 3 }), Response::Done);
        let mut reference = IdeaNode::new(NodeId(0), IdeaConfig::default(), &[OBJ]);
        reference.set_hint(0.9).unwrap();
        reference.set_resolution(3).unwrap();
        assert_eq!(eng.node(NodeId(0)).config().policy, reference.config().policy);
        assert_eq!(eng.node(NodeId(0)).hint().floor().value(), reference.hint().floor().value());
    }

    #[test]
    fn at_least_reads_probe_only_below_the_floor() {
        let mut eng = engine(2);
        eng.execute(
            NodeId(0),
            Command::Write { object: OBJ, meta_delta: 1, payload: UpdatePayload::none() },
        );
        // A perfect local estimate satisfies any floor: no probe beyond the
        // read policy's own (first read triggers one — consume it first).
        let first = match eng
            .execute(NodeId(0), Command::Read { object: OBJ, consistency: ReadConsistency::Any })
        {
            Response::Value { read } => read,
            r => panic!("{r:?}"),
        };
        assert!(first.probed, "first read probes per the read policy");
        let satisfied = match eng.execute(
            NodeId(0),
            Command::Read {
                object: OBJ,
                consistency: ReadConsistency::AtLeast(ConsistencyLevel::new(0.5)),
            },
        ) {
            Response::Value { read } => read,
            r => panic!("{r:?}"),
        };
        assert!(!satisfied.probed, "estimate {:?} already meets 0.5", satisfied.level);
        let fresh = match eng
            .execute(NodeId(0), Command::Read { object: OBJ, consistency: ReadConsistency::Fresh })
        {
            Response::Value { read } => read,
            r => panic!("{r:?}"),
        };
        assert!(fresh.probed, "Fresh always probes");
    }

    /// The on-demand half of `AtLeast`: a node whose estimate genuinely
    /// sits below the floor must launch a detection probe on read.
    #[test]
    fn at_least_reads_probe_when_below_the_floor() {
        let mut eng = engine(2);
        // Node 1 writes five updates node 0 never fetches; node 0's first
        // read starts a detection round whose reply quantifies the gap.
        for _ in 0..5 {
            eng.execute(
                NodeId(1),
                Command::Write { object: OBJ, meta_delta: 3, payload: UpdatePayload::none() },
            );
            eng.run_for(SimDuration::from_secs(1));
        }
        eng.run_for(SimDuration::from_secs(3));
        eng.execute(NodeId(0), Command::Read { object: OBJ, consistency: ReadConsistency::Fresh });
        eng.run_for(SimDuration::from_secs(3));
        let level = eng.node(NodeId(0)).level(OBJ);
        assert!(
            level < ConsistencyLevel::PERFECT,
            "setup must leave node 0 below perfect, got {level:?}"
        );

        let below = match eng.execute(
            NodeId(0),
            Command::Read {
                object: OBJ,
                consistency: ReadConsistency::AtLeast(ConsistencyLevel::PERFECT),
            },
        ) {
            Response::Value { read } => read,
            r => panic!("{r:?}"),
        };
        assert!(below.probed, "below-floor AtLeast read must launch the on-demand probe");
        assert!(below.level < ConsistencyLevel::PERFECT);

        // The same node at a floor it already meets stays quiet.
        let met = match eng.execute(
            NodeId(0),
            Command::Read {
                object: OBJ,
                consistency: ReadConsistency::AtLeast(ConsistencyLevel::new(0.05)),
            },
        ) {
            Response::Value { read } => read,
            r => panic!("{r:?}"),
        };
        assert!(!met.probed, "met floor must not probe (level {:?})", met.level);
    }

    #[test]
    fn sessions_default_and_override_read_consistency() {
        let mut eng = engine(2);
        let mut session =
            Session::open(&mut eng, NodeId(0)).read_consistency(ReadConsistency::Fresh);
        let mut obj = session.object(OBJ);
        obj.write(3, UpdatePayload::none()).unwrap();
        let read = obj.read().unwrap();
        assert!(read.probed, "session default Fresh must probe");
        let peek = obj.peek().unwrap();
        assert!(!peek.probed);
        assert_eq!(peek.meta, 3);
        assert_eq!(obj.read_with(ReadConsistency::Any).unwrap().meta, 3);
    }

    #[test]
    fn session_priority_broadcasts_to_every_node() {
        let mut eng = engine(3);
        Session::open(&mut eng, NodeId(2)).set_priority(9).unwrap();
        for i in 0..3 {
            // Priorities feed PriorityWins; observable through the config
            // surface only indirectly, so check via a reference resolution
            // set-up: the command must have reached every node (no panic,
            // Done everywhere) — and the node-level map reflects it.
            let node = eng.node(NodeId(i));
            assert_eq!(node.priority_of(NodeId(2)), Some(9), "node {i}");
        }
    }

    /// A dispatch reply closure dropped unrun (engine stopped with the
    /// envelope still queued) must still answer — with the typed
    /// engine-unavailable rejection — so a blocked caller fails fast
    /// instead of waiting out a timeout.
    #[test]
    fn dropped_reply_cell_answers_engine_unavailable() {
        let (tx, rx) = std::sync::mpsc::channel();
        let cell = ReplyCell::new(Box::new(move |resp| {
            let _ = tx.send(resp);
        }));
        drop(cell);
        let resp = rx.try_recv().expect("drop must produce a response");
        assert!(
            matches!(resp, Response::Rejected { error: WireError::EngineUnavailable(_) }),
            "{resp:?}"
        );
    }

    #[test]
    fn command_is_plain_wire_data() {
        // The vendored serde stand-in cannot drive serialization at
        // runtime, but the bounds pin that every wire unit of the client
        // layer is serde-annotated, owned, clonable data — exactly what a
        // TCP frontend needs to frame.
        fn assert_wire<T>()
        where
            T: serde::Serialize + for<'de> serde::Deserialize<'de> + Clone + Send + 'static,
        {
        }
        assert_wire::<Command>();
        assert_wire::<Response>();
        assert_wire::<ConsistencySpec>();
        assert_wire::<ReadResult>();
        assert_wire::<ReadConsistency>();
    }
}
