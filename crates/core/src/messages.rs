//! Wire messages of the IDEA protocol.
//!
//! One enum covers all sub-protocols so a single [`idea_net::Proto`] node
//! can run them together; [`idea_net::Wire`] classifies each variant for the
//! per-class accounting Table 3 relies on.
//!
//! Detection traffic is **compact**: probes carry a [`VvSummary`]
//! (counters, metadata and a bounded timestamp tail) and answers carry a
//! [`VvDelta`] (the exact per-writer suffixes beyond the probe's
//! counters), so detection cost scales with divergence, not with total
//! update history. The resolution plane follows the same
//! divergence-proportional rule: [`IdeaMsg::CollectRequest`] piggybacks
//! the initiator's summary so members answer with an
//! [`IdeaMsg::CollectDelta`] (suffixes beyond the probe, reconstructed
//! losslessly on the initiator), [`IdeaMsg::Inform`] encodes the chosen
//! reference as per-writer overrides against the member's own collect
//! answer ([`ReferenceWire`]), and [`IdeaMsg::FetchReply`] streams missing
//! updates in bounded chunks driven by a `done` continuation flag. The
//! full-[`ExtendedVersionVector`] [`IdeaMsg::CollectReply`] survives only
//! as the `compact_resolution = false` legacy form.

use crate::resolution::ReferenceWire;
use idea_net::{MsgClass, Wire};
use idea_overlay::gossip::{RumorId, DIGEST_ENTRY_BYTES};
use idea_types::{ObjectId, Update};
use idea_vv::{ExtendedVersionVector, VersionVector, VvDelta, VvSummary};
use serde::{Deserialize, Serialize};

/// One object's worth of piggybacked lazy-gossip advertisements.
///
/// Detect traffic carries digests for **any** object sharing the frame's
/// shard, not just the object being probed — one probe flushes every
/// pending IHAVE bound for that peer (cross-object digest batching). Each
/// group costs an 8-byte object header plus [`DIGEST_ENTRY_BYTES`] per
/// advertised rumor; an empty group list costs zero bytes, so eager-mode
/// accounting is unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestGroup {
    /// Object the advertised rumors sweep.
    pub object: ObjectId,
    /// Advertised rumor ids with their remaining hop budgets.
    pub ids: Vec<(RumorId, u8)>,
}

impl DigestGroup {
    /// Approximate serialized size: object header + compact entries.
    pub fn wire_bytes(&self) -> usize {
        8 + DIGEST_ENTRY_BYTES * self.ids.len()
    }
}

fn digest_bytes(groups: &[DigestGroup]) -> usize {
    groups.iter().map(DigestGroup::wire_bytes).sum()
}

/// All messages exchanged by [`crate::protocol::IdeaNode`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum IdeaMsg {
    // ---- detection (§4.3) ----
    /// Initiator → top-layer peer: "here is my vector, send me yours".
    DetectRequest {
        /// Round correlation id (initiator-local).
        round: u64,
        /// Object being checked.
        object: ObjectId,
        /// Compact summary of the initiator's extended version vector.
        summary: VvSummary,
        /// Piggybacked lazy-gossip advertisements, grouped per object —
        /// the probed object's group plus any other same-shard object with
        /// pending IHAVEs for this peer.
        digests: Vec<DigestGroup>,
    },
    /// Peer → initiator: the peer's vector, as a delta against the probe.
    DetectReply {
        /// Echoed round id.
        round: u64,
        /// Object being checked.
        object: ObjectId,
        /// The peer's per-writer suffixes beyond the probe's counters.
        delta: VvDelta,
        /// Piggybacked lazy-gossip advertisements (see
        /// [`IdeaMsg::DetectRequest::digests`]).
        digests: Vec<DigestGroup>,
    },

    // ---- active resolution, phase 1 (§4.5.2) ----
    /// Initiator → members, in parallel: call for attention.
    CallForAttention {
        /// Resolution correlation id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
    },
    /// Member → initiator: positive or negative acknowledgement.
    Attention {
        /// Echoed resolution id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
        /// `true` when the member granted attention; `false` when another
        /// initiator already holds it (the caller must back off).
        granted: bool,
    },

    // ---- resolution phase 2 (shared by active and background) ----
    /// Initiator → one member: send me your version information.
    CollectRequest {
        /// Resolution id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
        /// Compact summary of the initiator's own vector. `Some` asks the
        /// member to answer with an [`IdeaMsg::CollectDelta`] against it;
        /// `None` is the legacy form answered by a full
        /// [`IdeaMsg::CollectReply`].
        probe: Option<VvSummary>,
    },
    /// Member → initiator: the member's vector (legacy full form, used
    /// when the collect request carried no probe).
    CollectReply {
        /// Echoed resolution id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
        /// The member's extended version vector.
        evv: ExtendedVersionVector,
    },
    /// Member → initiator: the member's vector as suffixes beyond the
    /// request's probe. The initiator reconstructs the full vector
    /// losslessly against the snapshot it probed with
    /// ([`ExtendedVersionVector::reconstruct`]), so reference selection is
    /// bit-identical to the legacy reply at a fraction of the bytes.
    CollectDelta {
        /// Echoed resolution id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
        /// The member's per-writer suffixes beyond the probe's counters.
        delta: VvDelta,
    },
    /// Initiator → members: the chosen reference consistent state.
    Inform {
        /// Resolution id.
        rid: u64,
        /// Object being resolved.
        object: ObjectId,
        /// Winner + sanctioned counts, encoded full or as overrides
        /// against this member's own collect answer — whichever is
        /// smaller on the wire.
        reference: ReferenceWire,
    },

    // ---- update transfer ----
    /// Member → reference holder: ship me what I miss.
    FetchRequest {
        /// Object to fetch.
        object: ObjectId,
        /// The requester's current counters.
        have: VersionVector,
    },
    /// Reference holder → member: the missing updates (batched, bounded
    /// by `max_fetch_updates` per frame when chunking is configured).
    FetchReply {
        /// Object fetched.
        object: ObjectId,
        /// Updates the requester was missing — in log order, so any
        /// prefix is per-writer seq-consecutive and ingests cleanly.
        updates: Vec<Update>,
        /// `false` when the holder truncated the backlog to the chunk
        /// bound: the requester answers with a continuation
        /// [`IdeaMsg::FetchRequest`] carrying its advanced counters.
        done: bool,
    },

    // ---- bottom-layer sweep (§4.4.2) ----
    /// TTL-bounded gossip rumor probing the bottom layer.
    SweepRumor {
        /// Gossip rumor identity (origin + sequence).
        id: RumorId,
        /// Remaining hop budget.
        ttl: u8,
        /// Object being swept.
        object: ObjectId,
        /// The origin's counters; receivers holding more reply directly.
        counters: VersionVector,
    },
    /// Bottom node → sweep origin: "I hold updates you have not seen".
    SweepDivergence {
        /// Object swept.
        object: ObjectId,
        /// Echo of the sweep's rumor sequence, so the origin can route the
        /// reply to the right collector.
        sweep: u64,
        /// The diverging node's suffixes beyond the sweep's counters.
        delta: VvDelta,
    },

    // ---- lazy gossip plane (IHAVE / pull) ----
    /// Standalone digest flush: rumor ids this node holds bodies for,
    /// advertised on lazy links when no detect traffic was available to
    /// piggyback on. Encoded at [`DIGEST_ENTRY_BYTES`] per entry.
    GossipDigest {
        /// Object the advertised rumors sweep.
        object: ObjectId,
        /// Advertised rumor ids with their remaining hop budgets.
        ids: Vec<(RumorId, u8)>,
    },
    /// Digest receiver → advertiser: "send me the body of this rumor".
    GossipPull {
        /// Object the rumor sweeps.
        object: ObjectId,
        /// The rumor whose body is missing here.
        id: RumorId,
    },
    /// Duplicate-body receiver → redundant pusher: "your eager link to me
    /// is not load-bearing — demote it to the lazy side". The Plumtree
    /// repair signal that trims the eager overlay towards a spanning tree.
    GossipPrune {
        /// Object whose gossip overlay the link belongs to.
        object: ObjectId,
    },
}

impl IdeaMsg {
    /// The object this message is about. Every IDEA message is
    /// object-addressed, which is what lets the engines route it to the
    /// store shard owning the object.
    pub fn object(&self) -> ObjectId {
        match self {
            IdeaMsg::DetectRequest { object, .. }
            | IdeaMsg::DetectReply { object, .. }
            | IdeaMsg::CallForAttention { object, .. }
            | IdeaMsg::Attention { object, .. }
            | IdeaMsg::CollectRequest { object, .. }
            | IdeaMsg::CollectReply { object, .. }
            | IdeaMsg::CollectDelta { object, .. }
            | IdeaMsg::Inform { object, .. }
            | IdeaMsg::FetchRequest { object, .. }
            | IdeaMsg::FetchReply { object, .. }
            | IdeaMsg::SweepRumor { object, .. }
            | IdeaMsg::SweepDivergence { object, .. }
            | IdeaMsg::GossipDigest { object, .. }
            | IdeaMsg::GossipPull { object, .. }
            | IdeaMsg::GossipPrune { object } => *object,
        }
    }
}

impl Wire for IdeaMsg {
    fn class(&self) -> MsgClass {
        match self {
            IdeaMsg::DetectRequest { .. } | IdeaMsg::DetectReply { .. } => MsgClass::Detect,
            IdeaMsg::CallForAttention { .. }
            | IdeaMsg::Attention { .. }
            | IdeaMsg::CollectRequest { .. }
            | IdeaMsg::CollectReply { .. }
            | IdeaMsg::CollectDelta { .. }
            | IdeaMsg::Inform { .. }
            | IdeaMsg::FetchRequest { .. } => MsgClass::ResolutionCtl,
            IdeaMsg::FetchReply { .. } => MsgClass::Transfer,
            IdeaMsg::SweepRumor { .. }
            | IdeaMsg::SweepDivergence { .. }
            | IdeaMsg::GossipDigest { .. }
            | IdeaMsg::GossipPull { .. }
            | IdeaMsg::GossipPrune { .. } => MsgClass::Gossip,
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            IdeaMsg::DetectRequest { summary, digests, .. } => {
                24 + summary.wire_bytes() + digest_bytes(digests)
            }
            IdeaMsg::DetectReply { delta, digests, .. } => {
                24 + delta.wire_bytes() + digest_bytes(digests)
            }
            IdeaMsg::SweepDivergence { delta, .. } => 24 + delta.wire_bytes(),
            IdeaMsg::CollectReply { evv, .. } => 24 + evv_size(evv),
            IdeaMsg::CollectDelta { delta, .. } => 24 + delta.wire_bytes(),
            IdeaMsg::CallForAttention { .. } | IdeaMsg::Attention { .. } => 24,
            IdeaMsg::CollectRequest { probe, .. } => {
                24 + probe.as_ref().map_or(0, VvSummary::wire_bytes)
            }
            IdeaMsg::Inform { reference, .. } => 24 + reference.wire_bytes(),
            IdeaMsg::FetchRequest { have, .. } => 24 + 12 * have.writers(),
            IdeaMsg::FetchReply { updates, .. } => {
                25 + updates.iter().map(|u| u.wire_size()).sum::<usize>()
            }
            IdeaMsg::SweepRumor { counters, .. } => 32 + 12 * counters.writers(),
            IdeaMsg::GossipDigest { ids, .. } => 16 + DIGEST_ENTRY_BYTES * ids.len(),
            IdeaMsg::GossipPull { .. } => 24,
            IdeaMsg::GossipPrune { .. } => 16,
        }
    }
}

/// Approximate serialized size of a full extended version vector: per writer
/// an id+count header plus one timestamp per recorded update. Only the
/// legacy (`compact_resolution = false`) collect reply still pays this.
fn evv_size(evv: &ExtendedVersionVector) -> usize {
    let writers = evv.counters().writers();
    16 + 12 * writers + 8 * evv.total() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::{SimTime, WriterId};

    fn sample_evv() -> ExtendedVersionVector {
        let mut v = ExtendedVersionVector::new();
        v.record(WriterId(0), 1, SimTime::from_secs(1), 5);
        v.record(WriterId(1), 1, SimTime::from_secs(2), 3);
        v
    }

    #[test]
    fn classes_match_protocol_roles() {
        let evv = sample_evv();
        assert_eq!(
            IdeaMsg::DetectRequest {
                round: 1,
                object: ObjectId(0),
                summary: evv.summary(8),
                digests: vec![],
            }
            .class(),
            MsgClass::Detect
        );
        assert_eq!(
            IdeaMsg::CallForAttention { rid: 1, object: ObjectId(0) }.class(),
            MsgClass::ResolutionCtl
        );
        assert_eq!(
            IdeaMsg::CollectDelta {
                rid: 1,
                object: ObjectId(0),
                delta: evv.suffix_since(&VersionVector::new()),
            }
            .class(),
            MsgClass::ResolutionCtl
        );
        assert_eq!(
            IdeaMsg::FetchReply { object: ObjectId(0), updates: vec![], done: true }.class(),
            MsgClass::Transfer
        );
        assert_eq!(
            IdeaMsg::SweepDivergence {
                object: ObjectId(0),
                sweep: 0,
                delta: evv.suffix_since(&VersionVector::new()),
            }
            .class(),
            MsgClass::Gossip
        );
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: ExtendedVersionVector::new().summary(8),
            digests: vec![],
        };
        let big = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: sample_evv().summary(8),
            digests: vec![],
        };
        assert!(big.wire_size() > small.wire_size());

        let empty_fetch = IdeaMsg::FetchReply { object: ObjectId(0), updates: vec![], done: true };
        let full_fetch = IdeaMsg::FetchReply {
            object: ObjectId(0),
            updates: vec![idea_types::Update::opaque(
                ObjectId(0),
                WriterId(0),
                1,
                SimTime::ZERO,
                1,
            )],
            done: false,
        };
        assert!(full_fetch.wire_size() > empty_fetch.wire_size());
    }

    #[test]
    fn control_messages_stay_small() {
        // Table 3's bandwidth argument rests on control packets ≤ ~1 KB.
        let cfa = IdeaMsg::CallForAttention { rid: 1, object: ObjectId(0) };
        assert!(cfa.wire_size() <= 1024);
        let rumor = IdeaMsg::SweepRumor {
            id: RumorId { origin: idea_types::NodeId(0), seq: 0 },
            ttl: 4,
            object: ObjectId(0),
            counters: sample_evv().counters().clone(),
        };
        assert!(rumor.wire_size() <= 1024);
    }

    /// The acceptance criterion of the wire compaction: detection-class
    /// messages never grow with total history, only with divergence.
    #[test]
    fn detect_messages_are_history_independent() {
        let mut long = ExtendedVersionVector::new();
        for s in 1..=500 {
            long.record(WriterId(0), s, SimTime::from_secs(s), 1);
        }
        let probe = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: long.summary(8),
            digests: vec![],
        };
        // A full-history probe would weigh 16 + 12 + 8·500 ≈ 4 KB.
        assert!(probe.wire_size() < 200, "got {}", probe.wire_size());

        // A peer one update behind gets a one-timestamp delta.
        let mut have = idea_vv::VersionVector::new();
        have.observe(WriterId(0), 499);
        let reply = IdeaMsg::DetectReply {
            round: 1,
            object: ObjectId(0),
            delta: long.suffix_since(&have),
            digests: vec![],
        };
        assert!(reply.wire_size() < 96, "got {}", reply.wire_size());
    }

    /// Piggybacked digests are free when absent (eager-mode accounting is
    /// bit-identical to the pre-lazy wire) and cost exactly their group
    /// header plus the compact encoding per entry otherwise.
    #[test]
    fn piggybacked_digests_cost_exactly_their_encoding() {
        let base = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: sample_evv().summary(8),
            digests: vec![],
        };
        let id = RumorId { origin: idea_types::NodeId(3), seq: 7 };
        let loaded = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: sample_evv().summary(8),
            digests: vec![DigestGroup { object: ObjectId(0), ids: vec![(id, 4), (id, 3)] }],
        };
        assert_eq!(loaded.wire_size(), base.wire_size() + 8 + 2 * DIGEST_ENTRY_BYTES);
        // A second object's group rides the same frame for one more
        // header — cheaper than the 24-byte frame a standalone
        // GossipDigest would cost.
        let batched = IdeaMsg::DetectRequest {
            round: 1,
            object: ObjectId(0),
            summary: sample_evv().summary(8),
            digests: vec![
                DigestGroup { object: ObjectId(0), ids: vec![(id, 4), (id, 3)] },
                DigestGroup { object: ObjectId(9), ids: vec![(id, 2)] },
            ],
        };
        assert_eq!(batched.wire_size(), loaded.wire_size() + 8 + DIGEST_ENTRY_BYTES);

        let digest = IdeaMsg::GossipDigest { object: ObjectId(0), ids: vec![(id, 4)] };
        assert_eq!(digest.class(), MsgClass::Gossip);
        assert_eq!(digest.wire_size(), 16 + DIGEST_ENTRY_BYTES);
        let pull = IdeaMsg::GossipPull { object: ObjectId(0), id };
        assert_eq!(pull.class(), MsgClass::Gossip);
        assert!(pull.wire_size() <= 32);

        let prune = IdeaMsg::GossipPrune { object: ObjectId(0) };
        assert_eq!(prune.class(), MsgClass::Gossip);
        assert_eq!(prune.object(), ObjectId(0));
        assert_eq!(prune.wire_size(), 16);
    }

    /// The resolution-plane analogue of
    /// [`detect_messages_are_history_independent`]: a collect answer to a
    /// nearly-caught-up initiator costs bytes proportional to the gap, not
    /// to the 500-update history the legacy reply ships.
    #[test]
    fn collect_delta_scales_with_divergence_not_history() {
        let mut long = ExtendedVersionVector::new();
        for s in 1..=500 {
            long.record(WriterId(0), s, SimTime::from_secs(s), 1);
        }
        let legacy = IdeaMsg::CollectReply { rid: 1, object: ObjectId(0), evv: long.clone() };
        assert!(legacy.wire_size() > 4000, "got {}", legacy.wire_size());

        // The initiator is one update behind; its probe advertises w0:499.
        let mut probe_state = ExtendedVersionVector::new();
        for s in 1..=499 {
            probe_state.record(WriterId(0), s, SimTime::from_secs(s), 1);
        }
        let probe = probe_state.summary(8);
        let request =
            IdeaMsg::CollectRequest { rid: 1, object: ObjectId(0), probe: Some(probe.clone()) };
        let legacy_request = IdeaMsg::CollectRequest { rid: 1, object: ObjectId(0), probe: None };
        assert_eq!(request.wire_size(), legacy_request.wire_size() + probe.wire_bytes());

        let compact = IdeaMsg::CollectDelta {
            rid: 1,
            object: ObjectId(0),
            delta: long.suffix_since(&probe.counters),
        };
        assert!(compact.wire_size() < 96, "got {}", compact.wire_size());
        // Request + answer together still undercut one legacy reply.
        assert!(request.wire_size() + compact.wire_size() < legacy.wire_size());

        // An Inform whose member already acked the sanctioned counts is a
        // near-empty override list; the full fallback form costs exactly
        // what the pre-compaction Inform did.
        let reference = crate::resolution::ReferenceState {
            winner: Some(idea_types::NodeId(2)),
            counts: long.counters().clone(),
        };
        let delta_inform = IdeaMsg::Inform {
            rid: 1,
            object: ObjectId(0),
            reference: ReferenceWire::encode(&reference, long.counters()),
        };
        let full_inform = IdeaMsg::Inform {
            rid: 1,
            object: ObjectId(0),
            reference: ReferenceWire::Full(reference.clone()),
        };
        assert_eq!(delta_inform.wire_size(), 32);
        assert_eq!(full_inform.wire_size(), 32 + 12 * reference.counts.writers());
    }
}
