//! Bottom-layer background detection and the rollback decision (§4.4.2).
//!
//! After the top layer answers quickly, IDEA "continues to detect
//! inconsistency in the bottom layer and returns a new value. If the new
//! value is sufficiently close to the previous one obtained from the top
//! layer, IDEA keeps silent; otherwise, IDEA alerts the user about the
//! discrepancy and resolves the inconsistency if the users so demand."
//!
//! The sweep rides the TTL-bounded gossip of `idea-overlay`: the initiator
//! originates a rumor carrying its vector; bottom-layer nodes that find
//! their replica diverging reply directly to the initiator. The
//! [`SweepCollector`] aggregates replies until its deadline and renders the
//! verdict: confirm the top-layer value, or advise rollback.

use idea_types::{ConsistencyLevel, ErrorTriple, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Verdict of a completed bottom sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BottomReport {
    /// Bottom layer agrees with the top-layer value (within epsilon).
    Confirmed {
        /// The bottom-layer consistency level.
        bottom_level: ConsistencyLevel,
    },
    /// Bottom layer found a materially worse state: alert the user, and if
    /// the corrected level is unacceptable, roll back (§4.4.2).
    Discrepancy {
        /// The corrected (bottom-layer) consistency level.
        bottom_level: ConsistencyLevel,
        /// Worst divergent replica found.
        worst_node: NodeId,
        /// That replica's triple against the initiator's reference.
        worst_triple: ErrorTriple,
    },
}

impl BottomReport {
    /// The corrected consistency level carried by the report.
    pub fn level(&self) -> ConsistencyLevel {
        match self {
            BottomReport::Confirmed { bottom_level } => *bottom_level,
            BottomReport::Discrepancy { bottom_level, .. } => *bottom_level,
        }
    }

    /// True when the sweep contradicted the top layer.
    pub fn is_discrepancy(&self) -> bool {
        matches!(self, BottomReport::Discrepancy { .. })
    }
}

/// Collects divergence replies from the bottom layer until a deadline.
#[derive(Debug, Clone)]
pub struct SweepCollector {
    /// The top-layer level the sweep is double-checking.
    top_level: ConsistencyLevel,
    /// "Sufficiently close" tolerance (paper example: 78 % vs 80 %).
    epsilon: f64,
    /// Sweep deadline (TTL bounds hops; the deadline bounds wall time).
    pub deadline: SimTime,
    /// Divergent replicas reported so far (node and its triple against the
    /// initiator's replica — the full vector is never retained).
    replies: Vec<(NodeId, ErrorTriple)>,
}

impl SweepCollector {
    /// Starts a collection window checking `top_level` with tolerance
    /// `epsilon`, expiring at `deadline`.
    pub fn new(top_level: ConsistencyLevel, epsilon: f64, deadline: SimTime) -> Self {
        SweepCollector { top_level, epsilon, deadline, replies: Vec::new() }
    }

    /// Records a divergence reply from `node` whose replica triple against
    /// the initiator's reference is `triple`.
    pub fn on_divergence(&mut self, node: NodeId, triple: ErrorTriple) {
        self.replies.push((node, triple));
    }

    /// Number of divergence replies collected.
    pub fn replies(&self) -> usize {
        self.replies.len()
    }

    /// Renders the verdict. `quantify` maps a triple to a consistency level
    /// (Formula 1, supplied by `idea-core` so weights stay configurable).
    pub fn finish(self, quantify: impl Fn(&ErrorTriple) -> ConsistencyLevel) -> BottomReport {
        if self.replies.is_empty() {
            return BottomReport::Confirmed { bottom_level: self.top_level };
        }
        // The corrected level is the worst level over divergent replicas,
        // but never better than what the top layer already reported.
        let mut bottom_level = self.top_level;
        let mut worst: Option<(NodeId, ErrorTriple, ConsistencyLevel)> = None;
        for (node, triple) in &self.replies {
            let level = quantify(triple);
            bottom_level = bottom_level.min(level);
            let replace = match &worst {
                Some((_, _, l)) => level < *l,
                None => true,
            };
            if replace {
                worst = Some((*node, *triple, level));
            }
        }
        let (worst_node, worst_triple, _) = worst.expect("non-empty replies");
        if (self.top_level.value() - bottom_level.value()).abs() <= self.epsilon {
            BottomReport::Confirmed { bottom_level }
        } else {
            BottomReport::Discrepancy { bottom_level, worst_node, worst_triple }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::SimDuration;

    fn lvl(v: f64) -> ConsistencyLevel {
        ConsistencyLevel::new(v)
    }

    /// A toy quantifier: each unit of order error costs 10 %.
    fn quantify(t: &ErrorTriple) -> ConsistencyLevel {
        ConsistencyLevel::new(1.0 - t.order * 0.1)
    }

    fn triple(order: f64) -> ErrorTriple {
        ErrorTriple::new(0.0, order, SimDuration::ZERO)
    }

    #[test]
    fn silent_sweep_confirms_top_value() {
        let c = SweepCollector::new(lvl(0.8), 0.05, SimTime::from_secs(10));
        let report = c.finish(quantify);
        assert_eq!(report, BottomReport::Confirmed { bottom_level: lvl(0.8) });
        assert!(!report.is_discrepancy());
    }

    #[test]
    fn close_values_stay_confirmed() {
        // Paper example: 78 % from the bottom vs 80 % from the top — close
        // enough, the top result "remains intact".
        let mut c = SweepCollector::new(lvl(0.80), 0.05, SimTime::from_secs(10));
        c.on_divergence(NodeId(9), triple(2.2));
        let report = c.finish(quantify);
        assert!(!report.is_discrepancy());
        assert!((report.level().value() - 0.78).abs() < 1e-9);
    }

    #[test]
    fn large_gap_is_a_discrepancy() {
        let mut c = SweepCollector::new(lvl(0.95), 0.05, SimTime::from_secs(10));
        c.on_divergence(NodeId(4), triple(5.0));
        let report = c.finish(quantify);
        assert!(report.is_discrepancy());
        match report {
            BottomReport::Discrepancy { bottom_level, worst_node, worst_triple } => {
                assert_eq!(worst_node, NodeId(4));
                assert_eq!(worst_triple.order, 5.0);
                assert!((bottom_level.value() - 0.5).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn worst_reply_wins() {
        let mut c = SweepCollector::new(lvl(0.95), 0.01, SimTime::from_secs(10));
        c.on_divergence(NodeId(1), triple(1.0));
        c.on_divergence(NodeId(2), triple(4.0));
        c.on_divergence(NodeId(3), triple(2.0));
        assert_eq!(c.replies(), 3);
        match c.finish(quantify) {
            BottomReport::Discrepancy { worst_node, bottom_level, .. } => {
                assert_eq!(worst_node, NodeId(2));
                assert!((bottom_level.value() - 0.6).abs() < 1e-9);
            }
            other => panic!("expected discrepancy, got {other:?}"),
        }
    }

    #[test]
    fn bottom_level_never_exceeds_top() {
        // A divergence reply that quantifies *better* than the top value
        // must not raise the reported level.
        let mut c = SweepCollector::new(lvl(0.5), 0.5, SimTime::from_secs(10));
        c.on_divergence(NodeId(1), triple(0.0));
        let report = c.finish(quantify);
        assert_eq!(report.level(), lvl(0.5));
    }
}
