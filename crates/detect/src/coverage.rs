//! Analytic top-layer coverage model (the authors' ref \[16\]).
//!
//! The paper leans on a prior result: "most inconsistencies can be caught in
//! the top layer with a very high probability (more than 95 % in a variety
//! of scenarios)" and "as small as 0.04 %" miss rates (§6). The model here
//! derives that probability from first principles:
//!
//! An inconsistency is a *pair of concurrent conflicting updates*. If writer
//! `i` contributes a fraction `wᵢ` of all update activity, a conflicting
//! pair involves writers `(i, j)` with probability `wᵢ·wⱼ`; the top layer
//! catches the pair immediately iff **both** writers are top-layer members
//! (their vectors meet in the next exchange). Hence
//!
//! ```text
//! P(caught) = (Σ_{i ∈ T} wᵢ)²
//! ```
//!
//! With hot-writer activity following a Zipf-like law, a handful of top
//! nodes captures nearly all activity and `P` clears 95 % — exactly the
//! regime the paper's experiments run in (all four writers in the top
//! layer → `P = 1`).

/// Probability that an inconsistency (a concurrent update pair) surfaces in
/// the top layer, given per-node update `rates` and the `top` member set
/// (indices into `rates`).
///
/// Returns 1.0 when there is no update activity at all (nothing to miss).
pub fn top_layer_catch_probability(rates: &[f64], top: &[usize]) -> f64 {
    let total: f64 = rates.iter().copied().filter(|r| *r > 0.0).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let captured: f64 =
        top.iter().filter_map(|&i| rates.get(i)).copied().filter(|r| *r > 0.0).sum();
    let q = (captured / total).clamp(0.0, 1.0);
    q * q
}

/// Zipf-like activity profile: `n` nodes, exponent `s`; rate of rank-`k`
/// node ∝ 1/(k+1)^s. Useful for coverage studies.
pub fn zipf_rates(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect()
}

/// Smallest top-layer size (taking the most active writers first) whose
/// catch probability reaches `target`.
pub fn min_top_size_for(rates: &[f64], target: f64) -> usize {
    let mut order: Vec<usize> = (0..rates.len()).collect();
    order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).unwrap());
    let mut top = Vec::new();
    for idx in order {
        top.push(idx);
        if top_layer_catch_probability(rates, &top) >= target {
            return top.len();
        }
    }
    rates.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_scenario_all_writers_in_top_layer() {
        // §6.1: only the four writers update; all four are in the top layer.
        let mut rates = vec![0.0; 40];
        for r in rates.iter_mut().take(4) {
            *r = 0.2; // one update per 5 s
        }
        let p = top_layer_catch_probability(&rates, &[0, 1, 2, 3]);
        assert_eq!(p, 1.0, "every conflict is between top-layer members");
    }

    #[test]
    fn hot_writers_dominate_zipf_traffic() {
        // With sharply skewed (Zipf s=2) activity over 40 nodes, a top layer
        // well under half the network clears the paper's 95 % claim.
        let rates = zipf_rates(40, 2.0);
        let size = min_top_size_for(&rates, 0.95);
        assert!(size <= 16, "needed {size} members for 95 %");
        let top: Vec<usize> = (0..size).collect();
        assert!(top_layer_catch_probability(&rates, &top) >= 0.95);
        // A gentler skew needs more members — the model is sensitive to the
        // activity profile, as ref [16] studies.
        let gentle = zipf_rates(40, 1.2);
        assert!(min_top_size_for(&gentle, 0.95) > size);
    }

    #[test]
    fn hot_plus_cold_tail_matches_paper_regime() {
        // Four hot writers plus a long cold tail (each cold node updates
        // 400x less): the four-node top layer catches > 95 %.
        let mut rates = vec![0.0005; 40];
        for r in rates.iter_mut().take(4) {
            *r = 0.2;
        }
        let p = top_layer_catch_probability(&rates, &[0, 1, 2, 3]);
        assert!(p > 0.95, "p = {p}");
    }

    #[test]
    fn miss_rate_can_reach_paper_floor() {
        // "as small as 0.04 %": capture 99.98 % of activity.
        let mut rates = vec![0.0001; 100];
        rates[0] = 100.0;
        rates[1] = 100.0;
        let p = top_layer_catch_probability(&rates, &[0, 1]);
        assert!(1.0 - p < 0.001, "miss rate {:.5}", 1.0 - p);
    }

    #[test]
    fn empty_activity_is_trivially_covered() {
        assert_eq!(top_layer_catch_probability(&[0.0, 0.0], &[0]), 1.0);
        assert_eq!(top_layer_catch_probability(&[], &[]), 1.0);
    }

    #[test]
    fn bogus_top_indices_are_ignored() {
        let rates = vec![1.0, 1.0];
        let p = top_layer_catch_probability(&rates, &[0, 7]);
        assert_eq!(p, 0.25);
    }

    #[test]
    fn zipf_rates_decrease() {
        let r = zipf_rates(10, 1.0);
        assert!(r.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(r.len(), 10);
    }

    proptest! {
        #[test]
        fn probability_is_in_unit_interval(
            rates in prop::collection::vec(0.0f64..10.0, 1..30),
            picks in prop::collection::vec(0usize..30, 0..30),
        ) {
            let p = top_layer_catch_probability(&rates, &picks);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn adding_members_never_hurts(
            rates in prop::collection::vec(0.01f64..10.0, 2..20),
        ) {
            let n = rates.len();
            let mut top: Vec<usize> = Vec::new();
            let mut last = top_layer_catch_probability(&rates, &top);
            for i in 0..n {
                top.push(i);
                let p = top_layer_catch_probability(&rates, &top);
                prop_assert!(p >= last - 1e-12);
                last = p;
            }
            prop_assert!((last - 1.0).abs() < 1e-9, "full membership catches all");
        }
    }
}
