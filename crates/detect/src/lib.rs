//! The inconsistency detection framework (IDF) of the paper's §4.3,
//! originally presented in the authors' refs [14, 15].
//!
//! The framework's job is a single powerful API: `detect(update)` — "given
//! an update, this operation will return *success* when there is no
//! inconsistency or *fail* when there is conflict (thus inconsistency)
//! detected". Detection compares version vectors:
//!
//! * [`round`] — the fast path: on every update the issuer exchanges
//!   extended version vectors with its **top-layer** peers and aggregates a
//!   [`round::DetectReport`] with the per-replica TACT triples;
//! * [`bottom`] — the background path: TTL-bounded gossip sweeps the
//!   **bottom layer** to catch what the top layer missed, feeding the
//!   rollback decision of §4.4.2;
//! * [`coverage`] — the analytic model of the authors' ref \[16\] predicting
//!   the probability that the top layer catches an inconsistency (the basis
//!   of the ">95 % in a variety of scenarios" claim).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottom;
pub mod coverage;
pub mod round;

pub use bottom::{BottomReport, SweepCollector};
pub use coverage::top_layer_catch_probability;
pub use round::{detect, DetectOutcome, DetectReport, DetectRound};
