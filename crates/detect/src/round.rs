//! Top-layer detection rounds.
//!
//! A round starts when a node updates (or deliberately probes) a shared
//! object: it sends its extended version vector to every top-layer peer and
//! collects theirs. [`detect`] is the pairwise primitive; [`DetectRound`]
//! tracks an in-flight round; [`DetectReport`] is the aggregate the IDEA
//! protocol quantifies with Formula 1.
//!
//! The *reference consistent state* is, per §4.4.1, "the replica with higher
//! ID value": among all replicas seen in the round (initiator included) the
//! one held by the largest [`NodeId`] wins. Priority-based selection is
//! layered on in `idea-core`'s resolution policies.

use idea_types::{ErrorTriple, NodeId, SimTime};
use idea_vv::{ExtendedVersionVector, VvOrdering};
use serde::{Deserialize, Serialize};

/// Result of the pairwise `detect(update)` API (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectOutcome {
    /// No inconsistency: the vectors are identical.
    Success,
    /// Conflict detected; carries the vector ordering that proved it.
    Fail(VvOrdering),
}

impl DetectOutcome {
    /// True when no inconsistency was found.
    pub fn is_success(self) -> bool {
        matches!(self, DetectOutcome::Success)
    }
}

/// The pairwise detection primitive: two replicas are inconsistent iff their
/// version vectors differ (§4.3).
pub fn detect(mine: &ExtendedVersionVector, theirs: &ExtendedVersionVector) -> DetectOutcome {
    match mine.compare(theirs) {
        VvOrdering::Equal => DetectOutcome::Success,
        other => DetectOutcome::Fail(other),
    }
}

/// Per-replica line of a completed round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaLine {
    /// The node holding the replica.
    pub node: NodeId,
    /// Error triple of this replica against the round's reference state.
    pub triple: ErrorTriple,
    /// Whether this replica conflicted with the initiator.
    pub conflicted: bool,
}

/// Aggregate of one completed detection round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectReport {
    /// Node whose replica was chosen as the reference consistent state.
    pub reference: NodeId,
    /// Per-replica triples against the reference (initiator included).
    pub lines: Vec<ReplicaLine>,
    /// True when at least one pair of vectors differed.
    pub any_inconsistency: bool,
    /// Virtual time the round started.
    pub started: SimTime,
    /// Virtual time the last reply arrived.
    pub completed: SimTime,
}

impl DetectReport {
    /// The triple of `node` against the reference, if it participated.
    pub fn triple_of(&self, node: NodeId) -> Option<ErrorTriple> {
        self.lines.iter().find(|l| l.node == node).map(|l| l.triple)
    }

    /// The worst (component-wise maximum) triple across all replicas.
    pub fn worst_triple(&self) -> ErrorTriple {
        self.lines.iter().fold(ErrorTriple::ZERO, |acc, l| acc.component_max(&l.triple))
    }

    /// Round-trip detection delay.
    pub fn delay(&self) -> idea_types::SimDuration {
        self.completed.saturating_since(self.started)
    }
}

/// An in-flight detection round at the initiator.
#[derive(Debug, Clone)]
pub struct DetectRound {
    /// Initiator identity.
    me: NodeId,
    /// Correlation id carried by request/reply messages.
    pub round_id: u64,
    started: SimTime,
    /// The initiator's vector as probed: peers answer with suffix deltas
    /// relative to its counters, so this snapshot is what reconstructs
    /// their full vectors (the replica may advance mid-round).
    baseline: ExtendedVersionVector,
    expected: Vec<NodeId>,
    replies: Vec<(NodeId, ExtendedVersionVector)>,
}

impl DetectRound {
    /// Starts a round from `me` towards `peers` (the top-layer peers),
    /// probing with the replica state `baseline`.
    pub fn start(
        me: NodeId,
        round_id: u64,
        peers: &[NodeId],
        now: SimTime,
        baseline: ExtendedVersionVector,
    ) -> Self {
        DetectRound {
            me,
            round_id,
            started: now,
            baseline,
            expected: peers.to_vec(),
            replies: Vec::with_capacity(peers.len()),
        }
    }

    /// The initiator's vector as sent with the probe — the baseline peer
    /// deltas are relative to.
    pub fn baseline(&self) -> &ExtendedVersionVector {
        &self.baseline
    }

    /// Peers whose reply is still outstanding.
    pub fn outstanding(&self) -> Vec<NodeId> {
        self.expected
            .iter()
            .copied()
            .filter(|p| !self.replies.iter().any(|(n, _)| n == p))
            .collect()
    }

    /// Records a reply. Returns `true` when the round is complete.
    pub fn on_reply(&mut self, from: NodeId, evv: ExtendedVersionVector) -> bool {
        if self.expected.contains(&from) && !self.replies.iter().any(|(n, _)| *n == from) {
            self.replies.push((from, evv));
        }
        self.replies.len() == self.expected.len()
    }

    /// Completes the round (all replies in, or deadline expired — the report
    /// then covers whoever answered). `mine` is the initiator's vector.
    pub fn complete(self, mine: &ExtendedVersionVector, now: SimTime) -> DetectReport {
        // Reference = highest node id among participants (§4.4.1).
        let mut participants: Vec<(NodeId, &ExtendedVersionVector)> = vec![(self.me, mine)];
        for (n, evv) in &self.replies {
            participants.push((*n, evv));
        }
        let (ref_node, ref_evv) = participants
            .iter()
            .max_by_key(|(n, _)| *n)
            .map(|(n, e)| (*n, *e))
            .expect("initiator always participates");

        let mut any = false;
        let lines = participants
            .iter()
            .map(|(n, evv)| {
                let conflicted = !detect(mine, evv).is_success() && *n != self.me;
                if conflicted {
                    any = true;
                }
                ReplicaLine { node: *n, triple: evv.triple_against(ref_evv), conflicted }
            })
            .collect();

        DetectReport {
            reference: ref_node,
            lines,
            any_inconsistency: any,
            started: self.started,
            completed: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::{SimDuration, WriterId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn evv(updates: &[(u32, u64, u64, i64)]) -> ExtendedVersionVector {
        let mut v = ExtendedVersionVector::new();
        for &(w, seq, at, delta) in updates {
            v.record(WriterId(w), seq, t(at), delta);
        }
        v
    }

    #[test]
    fn detect_equal_is_success() {
        let a = evv(&[(0, 1, 1, 5)]);
        let b = evv(&[(0, 1, 1, 5)]);
        assert_eq!(detect(&a, &b), DetectOutcome::Success);
        assert!(detect(&a, &b).is_success());
    }

    #[test]
    fn detect_divergent_is_fail() {
        let a = evv(&[(0, 1, 1, 5)]);
        let b = evv(&[(1, 1, 2, 3)]);
        match detect(&a, &b) {
            DetectOutcome::Fail(VvOrdering::Concurrent) => {}
            o => panic!("expected concurrent fail, got {o:?}"),
        }
        // Dominated is also "inconsistent" (vectors differ).
        let c = evv(&[(0, 1, 1, 5), (0, 2, 2, 1)]);
        assert_eq!(detect(&a, &c), DetectOutcome::Fail(VvOrdering::Less));
    }

    #[test]
    fn round_tracks_outstanding_replies() {
        let peers = [NodeId(1), NodeId(2), NodeId(3)];
        let mut round = DetectRound::start(NodeId(0), 7, &peers, t(0), evv(&[]));
        assert_eq!(round.outstanding().len(), 3);
        assert!(!round.on_reply(NodeId(1), evv(&[])));
        assert!(!round.on_reply(NodeId(1), evv(&[]))); // duplicate ignored
        assert_eq!(round.outstanding(), vec![NodeId(2), NodeId(3)]);
        assert!(!round.on_reply(NodeId(9), evv(&[]))); // stranger ignored
        assert!(!round.on_reply(NodeId(2), evv(&[])));
        assert!(round.on_reply(NodeId(3), evv(&[])));
    }

    #[test]
    fn report_uses_highest_id_as_reference() {
        let mine = evv(&[(0, 1, 1, 1)]);
        let mut round =
            DetectRound::start(NodeId(0), 1, &[NodeId(5), NodeId(2)], t(0), mine.clone());
        round.on_reply(NodeId(5), evv(&[(1, 1, 2, 4)]));
        round.on_reply(NodeId(2), evv(&[(0, 1, 1, 1)]));
        let report = round.complete(&mine, t(1));
        assert_eq!(report.reference, NodeId(5));
        assert!(report.any_inconsistency);
        // Node 5 is the reference: its own triple is zero.
        assert!(report.triple_of(NodeId(5)).unwrap().is_zero());
        // The initiator differs from the reference.
        assert!(!report.triple_of(NodeId(0)).unwrap().is_zero());
        assert_eq!(report.delay(), SimDuration::from_secs(1));
    }

    #[test]
    fn consistent_round_reports_no_inconsistency() {
        let shared = evv(&[(0, 1, 1, 2), (1, 1, 2, 3)]);
        let mut round =
            DetectRound::start(NodeId(3), 1, &[NodeId(1), NodeId(2)], t(0), shared.clone());
        round.on_reply(NodeId(1), shared.clone());
        round.on_reply(NodeId(2), shared.clone());
        let report = round.complete(&shared, t(1));
        assert!(!report.any_inconsistency);
        assert!(report.worst_triple().is_zero());
        for line in &report.lines {
            assert!(!line.conflicted);
        }
    }

    #[test]
    fn partial_round_still_reports() {
        // Deadline expiry: complete with only one of two replies.
        let mine = evv(&[(0, 1, 1, 1), (0, 2, 3, 2)]);
        let mut round =
            DetectRound::start(NodeId(0), 1, &[NodeId(1), NodeId(2)], t(0), mine.clone());
        round.on_reply(NodeId(1), evv(&[(0, 1, 1, 1)]));
        let report = round.complete(&mine, t(2));
        assert_eq!(report.lines.len(), 2); // me + the one replier
        assert!(report.any_inconsistency);
    }

    #[test]
    fn worst_triple_is_component_max() {
        let mine = evv(&[(0, 1, 1, 10)]);
        let mut round = DetectRound::start(NodeId(9), 1, &[NodeId(1)], t(0), mine.clone());
        round.on_reply(NodeId(1), evv(&[(1, 1, 5, 2)]));
        let report = round.complete(&mine, t(6));
        let worst = report.worst_triple();
        let l0 = report.triple_of(NodeId(9)).unwrap();
        let l1 = report.triple_of(NodeId(1)).unwrap();
        assert!(worst.numerical >= l0.numerical.max(l1.numerical) - 1e-9);
        assert!(worst.order >= l0.order.max(l1.order) - 1e-9);
    }

    #[test]
    fn duplicate_replies_never_complete_a_round_early() {
        let peers = [NodeId(1), NodeId(2), NodeId(3)];
        let mut round = DetectRound::start(NodeId(0), 1, &peers, t(0), evv(&[(0, 1, 1, 1)]));
        // One peer answering three times is still one reply.
        assert!(!round.on_reply(NodeId(1), evv(&[(0, 1, 1, 1)])));
        assert!(!round.on_reply(NodeId(1), evv(&[(0, 1, 1, 1)])));
        assert!(!round.on_reply(NodeId(1), evv(&[(1, 1, 2, 9)])));
        assert_eq!(round.outstanding(), vec![NodeId(2), NodeId(3)]);
        assert!(!round.on_reply(NodeId(2), evv(&[])));
        assert!(round.on_reply(NodeId(3), evv(&[])));
        // The duplicate did not smuggle a second line into the report: one
        // line per participant (initiator + 3 peers), first answer retained.
        let report = round.complete(&evv(&[(0, 1, 1, 1)]), t(1));
        assert_eq!(report.lines.len(), 4);
        let node1_lines = report.lines.iter().filter(|l| l.node == NodeId(1)).count();
        assert_eq!(node1_lines, 1, "duplicate reply duplicated a line");
    }

    #[test]
    fn missing_replies_leave_participants_out_of_the_report() {
        // Deadline with one of three peers silent: the report covers the
        // initiator and the two responders only, and the silent peer is
        // still listed as outstanding at completion time.
        let mine = evv(&[(0, 1, 1, 1)]);
        let mut round = DetectRound::start(
            NodeId(0),
            4,
            &[NodeId(1), NodeId(2), NodeId(3)],
            t(0),
            mine.clone(),
        );
        round.on_reply(NodeId(1), evv(&[(0, 1, 1, 1)]));
        round.on_reply(NodeId(3), evv(&[(0, 1, 1, 1)]));
        assert_eq!(round.outstanding(), vec![NodeId(2)]);
        let report = round.complete(&mine, t(2));
        assert_eq!(report.lines.len(), 3);
        assert!(report.triple_of(NodeId(2)).is_none(), "silent peer must not appear");
        assert!(!report.any_inconsistency, "responders all matched");
    }

    #[test]
    fn zero_reply_deadline_reports_initiator_alone() {
        // Everyone timed out: the report degenerates to the initiator's own
        // replica as the reference — no inconsistency observable.
        let mine = evv(&[(0, 1, 1, 5)]);
        let round = DetectRound::start(NodeId(7), 9, &[NodeId(1), NodeId(2)], t(0), mine.clone());
        assert_eq!(round.outstanding().len(), 2);
        let report = round.complete(&mine, t(3));
        assert_eq!(report.reference, NodeId(7));
        assert_eq!(report.lines.len(), 1);
        assert!(!report.any_inconsistency);
        assert!(report.triple_of(NodeId(7)).unwrap().is_zero());
        assert_eq!(report.delay(), SimDuration::from_secs(3));
    }

    #[test]
    fn figure4_numbers_flow_through_report() {
        // Reference replica b at node 1 (higher id), replica a at node 0 —
        // reproduces the Figure 4 walk-through end to end.
        let mut a = ExtendedVersionVector::new();
        let mut b = ExtendedVersionVector::new();
        a.record(WriterId(1), 1, t(1), 2);
        b.record(WriterId(1), 1, t(1), 2);
        a.record(WriterId(0), 1, t(2), 1);
        a.record(WriterId(0), 2, t(2), 2);
        b.record(WriterId(1), 2, t(3), 6);

        let mut round = DetectRound::start(NodeId(0), 1, &[NodeId(1)], t(3), a.clone());
        round.on_reply(NodeId(1), b);
        let report = round.complete(&a, t(4));
        assert_eq!(report.reference, NodeId(1));
        let ta = report.triple_of(NodeId(0)).unwrap();
        assert_eq!(ta.numerical, 3.0);
        assert_eq!(ta.order, 3.0);
        assert_eq!(ta.staleness, SimDuration::from_secs(2));
    }
}
