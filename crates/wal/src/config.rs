//! The durability policy knobs a node is built with.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// When (if ever) WAL appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// No durability: no files are created, no records are written. The
    /// default — every pinned fixed-seed trace runs exactly as before.
    #[default]
    Off,
    /// Records are appended through the OS page cache without fsync; the
    /// log survives a process crash but not a host crash. Snapshots are
    /// still written durably (tmp + fsync + rename).
    Async,
    /// Appends reach the platter via `fdatasync` before being
    /// acknowledged — survives host crashes. With
    /// [`DurabilityConfig::group_commit`] `== 1` (the default) every
    /// append syncs individually; a wider window coalesces syncs to one
    /// per `group_commit` appends, bounding host-crash loss to the last
    /// `group_commit - 1` records in exchange for write throughput.
    Sync,
}

/// Durability configuration of one node (carried in `IdeaConfig`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Fsync policy; [`DurabilityMode::Off`] disables the plane entirely.
    pub mode: DurabilityMode,
    /// After this many log records a shard writes a durable snapshot and
    /// truncates its log. Must be positive when the plane is on.
    pub snapshot_every: u64,
    /// Root directory for WAL and snapshot files (one subdirectory per
    /// node). Must be non-empty when the plane is on.
    pub dir: PathBuf,
    /// Group-commit window under [`DurabilityMode::Sync`]: one `fdatasync`
    /// per this many appends. `1` (the default) is classic per-append
    /// fsync; wider windows coalesce the sync cost across a drain while
    /// explicit flushes (clean shutdown, snapshot installation) still
    /// sync whatever the window is holding. Ignored by other modes. Must
    /// be positive when the plane is on.
    pub group_commit: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Off,
            snapshot_every: 1024,
            dir: PathBuf::new(),
            group_commit: 1,
        }
    }
}

impl DurabilityConfig {
    /// Durability disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Per-append fsync durability rooted at `dir`.
    pub fn sync(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { mode: DurabilityMode::Sync, dir: dir.into(), ..Self::default() }
    }

    /// Page-cache (no fsync) durability rooted at `dir`.
    pub fn buffered(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { mode: DurabilityMode::Async, dir: dir.into(), ..Self::default() }
    }

    /// Group-committed fsync durability rooted at `dir`: one `fdatasync`
    /// per `window` appends instead of one per append. `window` is clamped
    /// to at least 1 (which is exactly [`DurabilityConfig::sync`]).
    pub fn sync_grouped(dir: impl Into<PathBuf>, window: u64) -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Sync,
            dir: dir.into(),
            group_commit: window.max(1),
            ..Self::default()
        }
    }

    /// True when the plane writes anything at all.
    pub fn enabled(&self) -> bool {
        self.mode != DurabilityMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let c = DurabilityConfig::default();
        assert_eq!(c.mode, DurabilityMode::Off);
        assert!(!c.enabled());
        assert!(c.snapshot_every > 0);
    }

    #[test]
    fn constructors_set_mode_and_dir() {
        let s = DurabilityConfig::sync("/tmp/x");
        assert_eq!(s.mode, DurabilityMode::Sync);
        assert!(s.enabled());
        assert_eq!(s.dir, PathBuf::from("/tmp/x"));
        assert_eq!(s.group_commit, 1, "plain sync is per-append fsync");
        let a = DurabilityConfig::buffered("/tmp/y");
        assert_eq!(a.mode, DurabilityMode::Async);
        assert!(a.enabled());
    }

    #[test]
    fn sync_grouped_sets_and_clamps_the_window() {
        let g = DurabilityConfig::sync_grouped("/tmp/z", 32);
        assert_eq!(g.mode, DurabilityMode::Sync);
        assert_eq!(g.group_commit, 32);
        assert_eq!(DurabilityConfig::sync_grouped("/tmp/z", 0).group_commit, 1);
    }
}
