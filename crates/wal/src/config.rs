//! The durability policy knobs a node is built with.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// When (if ever) WAL appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// No durability: no files are created, no records are written. The
    /// default — every pinned fixed-seed trace runs exactly as before.
    #[default]
    Off,
    /// Records are appended through the OS page cache without fsync; the
    /// log survives a process crash but not a host crash. Snapshots are
    /// still written durably (tmp + fsync + rename).
    Async,
    /// Every append is followed by `fdatasync` before the write is
    /// acknowledged — survives host crashes at per-write fsync cost.
    Sync,
}

/// Durability configuration of one node (carried in `IdeaConfig`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Fsync policy; [`DurabilityMode::Off`] disables the plane entirely.
    pub mode: DurabilityMode,
    /// After this many log records a shard writes a durable snapshot and
    /// truncates its log. Must be positive when the plane is on.
    pub snapshot_every: u64,
    /// Root directory for WAL and snapshot files (one subdirectory per
    /// node). Must be non-empty when the plane is on.
    pub dir: PathBuf,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { mode: DurabilityMode::Off, snapshot_every: 1024, dir: PathBuf::new() }
    }
}

impl DurabilityConfig {
    /// Durability disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Per-append fsync durability rooted at `dir`.
    pub fn sync(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { mode: DurabilityMode::Sync, dir: dir.into(), ..Self::default() }
    }

    /// Page-cache (no fsync) durability rooted at `dir`.
    pub fn buffered(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { mode: DurabilityMode::Async, dir: dir.into(), ..Self::default() }
    }

    /// True when the plane writes anything at all.
    pub fn enabled(&self) -> bool {
        self.mode != DurabilityMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let c = DurabilityConfig::default();
        assert_eq!(c.mode, DurabilityMode::Off);
        assert!(!c.enabled());
        assert!(c.snapshot_every > 0);
    }

    #[test]
    fn constructors_set_mode_and_dir() {
        let s = DurabilityConfig::sync("/tmp/x");
        assert_eq!(s.mode, DurabilityMode::Sync);
        assert!(s.enabled());
        assert_eq!(s.dir, PathBuf::from("/tmp/x"));
        let a = DurabilityConfig::buffered("/tmp/y");
        assert_eq!(a.mode, DurabilityMode::Async);
        assert!(a.enabled());
    }
}
