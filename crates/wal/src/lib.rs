//! The durability plane under the sharded store: a per-shard append-only
//! write-ahead log plus periodic snapshots, so a node survives a crash and
//! re-enters the deployment by **recovery + rejoin-by-delta** instead of a
//! full state transfer.
//!
//! Layering: this crate sits between `idea-vv` and `idea-store` — it knows
//! the serializable substrate types ([`idea_types::Update`],
//! [`idea_vv::VersionVector`]) but nothing about replicas or the protocol.
//! `idea-store` attaches a [`ShardWal`] to each `StoreShard` and feeds it
//! [`WalRecord`]s; `idea-core` owns the policy ([`DurabilityConfig`]) and
//! the recovery/rejoin choreography.
//!
//! On-disk layout under `DurabilityConfig::dir`:
//!
//! ```text
//! <dir>/node-<n>/wal-<s>.log    # magic "IDEAWAL1" + framed records
//! <dir>/node-<n>/snap-<s>.bin   # magic "IDEASNP1" + one framed snapshot
//! ```
//!
//! Every frame is `[len: u32 LE][crc32: u32 LE][payload]` — the same
//! length-prefixed, checksummed idiom as the transport codec
//! (`idea-transport` depends on `idea-core`, so the trait itself cannot be
//! reused here; [`codec::WalCodec`] mirrors it). Replay is torn-tail
//! tolerant: a truncated or checksum-corrupt final frame marks the crash
//! point and everything before it is recovered; a checksum-*valid* frame
//! that fails to decode is real corruption and surfaces as an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod hash;
pub mod log;
pub mod record;
pub mod snapshot;

pub use codec::{CodecError, WalCodec, WalReader};
pub use config::{DurabilityConfig, DurabilityMode};
pub use log::{crc32, Recovered, ShardWal, WalError, WalResult};
pub use record::WalRecord;
pub use snapshot::{ObjectSnapshot, ShardSnapshot};
