//! The WAL's binary codec: the same little-endian, length-prefixed,
//! strict-decode idioms as the transport wire codec, re-stated here because
//! the transport crate sits *above* this one in the dependency DAG (it
//! depends on `idea-core`, which depends on `idea-store`, which depends on
//! this crate).
//!
//! Strictness contract (matching `idea-transport`): decoding consumes
//! exactly the encoded bytes; truncated input, trailing bytes
//! ([`WalReader::finish`]) and out-of-domain values (unknown tags, invalid
//! UTF-8, oversized lengths) are all errors, never silent best-effort.

use bytes::Bytes;
use idea_types::{NodeId, ObjectId, SimTime, Update, UpdateId, UpdatePayload, WriterId};
use idea_vv::VersionVector;
use std::fmt;

/// A decode failure: where in the buffer, and what was expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the decoder had reached.
    pub at: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WAL decode failed at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for CodecError {}

/// Cursor over a borrowed buffer with bounds-checked reads.
#[derive(Debug)]
pub struct WalReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WalReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        WalReader { buf, pos: 0 }
    }

    /// An error located at the current position.
    pub fn err(&self, what: &'static str) -> CodecError {
        CodecError { at: self.pos, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    /// Fails when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Asserts the buffer was fully consumed (strict decoding).
    ///
    /// # Errors
    /// Fails when trailing bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(self.err("trailing bytes after value"));
        }
        Ok(())
    }
}

/// Binary encode/decode for WAL record and snapshot payloads.
pub trait WalCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    /// Fails on truncated or out-of-domain input.
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must span the whole buffer.
    ///
    /// # Errors
    /// Fails on truncated, out-of-domain, or trailing input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = WalReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WalCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
                let n = std::mem::size_of::<$t>();
                let b = r.take(n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("take returned n bytes")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

/// Bounds a decoded element count: each element needs at least one byte, so
/// a length exceeding the remaining buffer is corrupt, not a huge alloc.
fn decode_len(r: &mut WalReader<'_>) -> Result<usize, CodecError> {
    let raw = u64::decode(r)?;
    let len = usize::try_from(raw).map_err(|_| r.err("length overflows usize"))?;
    if len > r.remaining() {
        return Err(r.err("length exceeds remaining input"));
    }
    Ok(len)
}

impl<T: WalCodec> WalCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut v = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl WalCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| r.err("invalid UTF-8 in string"))
    }
}

impl WalCodec for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        Ok(Bytes::from(r.take(len)?.to_vec()))
    }
}

macro_rules! newtype_codec {
    ($($t:ident($inner:ty)),*) => {$(
        impl WalCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
                Ok($t(<$inner>::decode(r)?))
            }
        }
    )*};
}

newtype_codec!(NodeId(u32), WriterId(u32), ObjectId(u64), SimTime(u64));

impl WalCodec for UpdatePayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            UpdatePayload::Opaque(b) => {
                0u8.encode(out);
                b.encode(out);
            }
            UpdatePayload::Stroke { x, y, text } => {
                1u8.encode(out);
                x.encode(out);
                y.encode(out);
                text.encode(out);
            }
            UpdatePayload::Booking { flight, seats, price_cents } => {
                2u8.encode(out);
                flight.encode(out);
                seats.encode(out);
                price_cents.encode(out);
            }
        }
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(UpdatePayload::Opaque(Bytes::decode(r)?)),
            1 => Ok(UpdatePayload::Stroke {
                x: u16::decode(r)?,
                y: u16::decode(r)?,
                text: String::decode(r)?,
            }),
            2 => Ok(UpdatePayload::Booking {
                flight: u32::decode(r)?,
                seats: u32::decode(r)?,
                price_cents: i64::decode(r)?,
            }),
            _ => Err(r.err("unknown payload tag")),
        }
    }
}

impl WalCodec for Update {
    fn encode(&self, out: &mut Vec<u8>) {
        self.object.encode(out);
        self.id.writer.encode(out);
        self.id.seq.encode(out);
        self.at.encode(out);
        self.meta_delta.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        Ok(Update {
            object: ObjectId::decode(r)?,
            id: UpdateId { writer: WriterId::decode(r)?, seq: u64::decode(r)? },
            at: SimTime::decode(r)?,
            meta_delta: i64::decode(r)?,
            payload: UpdatePayload::decode(r)?,
        })
    }
}

impl WalCodec for VersionVector {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.writers() as u64).encode(out);
        for (w, c) in self.iter() {
            w.encode(out);
            c.encode(out);
        }
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut pairs = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            pairs.push((WriterId::decode(r)?, u64::decode(r)?));
        }
        Ok(VersionVector::from_pairs(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_round_trip_little_endian() {
        let mut out = Vec::new();
        0xAABBu16.encode(&mut out);
        assert_eq!(out, vec![0xBB, 0xAA]);
        assert_eq!(u16::from_bytes(&out).unwrap(), 0xAABB);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut out = Vec::new();
        u64::MAX.encode(&mut out);
        let err = Vec::<u8>::from_bytes(&out).unwrap_err();
        assert_eq!(err.what, "length exceeds remaining input");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut out = Vec::new();
        7u32.encode(&mut out);
        out.push(0);
        assert_eq!(u32::from_bytes(&out).unwrap_err().what, "trailing bytes after value");
    }

    #[test]
    fn version_vector_round_trips() {
        let vv = VersionVector::from_pairs([(WriterId(3), 9), (WriterId(0), 2)]);
        assert_eq!(VersionVector::from_bytes(&vv.to_bytes()).unwrap(), vv);
        assert_eq!(VersionVector::from_bytes(&VersionVector::new().to_bytes()).unwrap().total(), 0);
    }
}
