//! Durable shard snapshots: the full replica map in its existing
//! serializable form (the applied log per object — the EVV, hashes and
//! meta are deterministic folds over it and are rebuilt on load), plus the
//! local write sequencing and any buffered out-of-order arrivals.

use crate::codec::{CodecError, WalCodec, WalReader};
use idea_types::{NodeId, ObjectId, Update, WriterId};

/// One replica's durable form.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSnapshot {
    /// The object.
    pub object: ObjectId,
    /// The local writer's next sequence number (0 when this node never
    /// wrote the object — the entry is absent, not 0, in memory).
    pub next_seq: u64,
    /// The applied update log, in application order. Replaying it rebuilds
    /// the extended version vector and the rolling state hash.
    pub log: Vec<Update>,
    /// Out-of-order arrivals still waiting for a predecessor.
    pub pending: Vec<Update>,
}

/// Everything one `StoreShard` needs to be reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The owning node.
    pub node: NodeId,
    /// The local writer identity.
    pub writer: WriterId,
    /// The shard index within the node.
    pub shard: u32,
    /// Per-object state, in object-id order.
    pub objects: Vec<ObjectSnapshot>,
}

impl WalCodec for ObjectSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.object.encode(out);
        self.next_seq.encode(out);
        self.log.encode(out);
        self.pending.encode(out);
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        Ok(ObjectSnapshot {
            object: ObjectId::decode(r)?,
            next_seq: u64::decode(r)?,
            log: Vec::<Update>::decode(r)?,
            pending: Vec::<Update>::decode(r)?,
        })
    }
}

impl WalCodec for ShardSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.writer.encode(out);
        self.shard.encode(out);
        self.objects.encode(out);
    }
    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        Ok(ShardSnapshot {
            node: NodeId::decode(r)?,
            writer: WriterId::decode(r)?,
            shard: u32::decode(r)?,
            objects: Vec::<ObjectSnapshot>::decode(r)?,
        })
    }
}
