//! The append/replay engine: framed records on disk, durable snapshot
//! installation with log truncation, and torn-tail-tolerant recovery.

use crate::codec::WalCodec;
use crate::config::{DurabilityConfig, DurabilityMode};
use crate::record::WalRecord;
use crate::snapshot::ShardSnapshot;
use idea_types::NodeId;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

/// File magics: 8 bytes of identity + format version, so a snapshot file
/// handed to the log replayer (or vice versa) fails loudly.
const LOG_MAGIC: &[u8; 8] = b"IDEAWAL1";
const SNAP_MAGIC: &[u8; 8] = b"IDEASNP1";

/// Frame header: `[len: u32 LE][crc32: u32 LE]` before the payload.
const FRAME_HEADER: usize = 8;

// ---------------------------------------------------------------- CRC-32

/// The CRC-32 (IEEE 802.3) lookup table, built at compile time — no
/// dependency, no unsafe, and the same polynomial every standard tool
/// (`cksum -o3`, zlib) can verify a WAL file against.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------- errors

/// A durability-plane failure.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file I/O failed.
    Io(std::io::Error),
    /// A file was structurally corrupt beyond torn-tail tolerance: bad
    /// magic, or a checksum-valid frame whose payload does not decode.
    Corrupt {
        /// What was found corrupt.
        what: &'static str,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O failure: {e}"),
            WalError::Corrupt { what } => write!(f, "WAL corrupt: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Durability-plane result.
pub type WalResult<T> = std::result::Result<T, WalError>;

// --------------------------------------------------------------- recovery

/// What a shard's files held at open time.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The last durable snapshot, if one was installed.
    pub snapshot: Option<ShardSnapshot>,
    /// Records appended after that snapshot, in append order.
    pub tail: Vec<WalRecord>,
    /// Bytes discarded from the log's end (a torn final frame — the crash
    /// point). Zero after a clean shutdown.
    pub torn_bytes: u64,
    /// Byte length of the valid log prefix (magic + intact frames).
    valid_len: u64,
}

impl Recovered {
    /// True when nothing durable existed (fresh directory).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.tail.is_empty()
    }
}

fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One frame scanned out of `buf` at `pos`: `Some((payload, next_pos))`
/// when intact, `None` when the remainder is a torn tail (short header,
/// short payload, or checksum mismatch).
fn scan_frame(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header = buf.get(pos..pos + FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    let payload = buf.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len)?;
    if crc32(payload) != want {
        return None;
    }
    Some((payload, pos + FRAME_HEADER + len))
}

// --------------------------------------------------------------- ShardWal

/// The append handle to one shard's WAL, plus its snapshot installer.
///
/// I/O failures on the append path surface as [`WalError`] from the store
/// layer's wrapper, which treats them as fail-stop (a replica that cannot
/// persist must not acknowledge writes).
#[derive(Debug)]
pub struct ShardWal {
    log_path: PathBuf,
    snap_path: PathBuf,
    mode: DurabilityMode,
    snapshot_every: u64,
    /// One `fdatasync` per this many Sync-mode appends (1 = every append).
    group_commit: u64,
    shard: u32,
    file: File,
    tail_records: u64,
    /// Appends written since the last `fdatasync` (group-commit window).
    unsynced: u64,
}

impl ShardWal {
    /// The per-node directory under the configured root.
    pub fn node_dir(cfg: &DurabilityConfig, node: NodeId) -> PathBuf {
        cfg.dir.join(format!("node-{}", node.index()))
    }

    fn paths(cfg: &DurabilityConfig, node: NodeId, shard: u32) -> (PathBuf, PathBuf, PathBuf) {
        let dir = Self::node_dir(cfg, node);
        let log = dir.join(format!("wal-{shard}.log"));
        let snap = dir.join(format!("snap-{shard}.bin"));
        (dir, log, snap)
    }

    /// Reads (without modifying) whatever the shard's files hold: the last
    /// durable snapshot and the valid log tail. Missing files read as
    /// empty. Test and tooling entry point; [`ShardWal::open`] uses the
    /// same scan and then truncates the torn tail for appending.
    ///
    /// # Errors
    /// Fails on I/O errors or structural corruption (bad magic, a
    /// checksum-valid frame that does not decode).
    pub fn load(cfg: &DurabilityConfig, node: NodeId, shard: u32) -> WalResult<Recovered> {
        let (_, log_path, snap_path) = Self::paths(cfg, node, shard);
        let mut out = Recovered::default();

        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path)?;
            let body = bytes
                .strip_prefix(SNAP_MAGIC)
                .ok_or(WalError::Corrupt { what: "snapshot magic" })?;
            let (payload, next) =
                scan_frame(body, 0).ok_or(WalError::Corrupt { what: "snapshot frame" })?;
            if next != body.len() {
                return Err(WalError::Corrupt { what: "trailing bytes after snapshot frame" });
            }
            let snap = ShardSnapshot::from_bytes(payload)
                .map_err(|_| WalError::Corrupt { what: "snapshot payload" })?;
            out.snapshot = Some(snap);
        }

        if log_path.exists() {
            let bytes = std::fs::read(&log_path)?;
            if bytes.len() < LOG_MAGIC.len() {
                // A crash can tear even the magic of a brand-new log.
                out.torn_bytes = bytes.len() as u64;
                return Ok(out);
            }
            if &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
                return Err(WalError::Corrupt { what: "log magic" });
            }
            let mut pos = LOG_MAGIC.len();
            while let Some((payload, next)) = scan_frame(&bytes, pos) {
                // An intact frame that does not decode is corruption, not a
                // torn tail — fail loudly instead of silently dropping
                // acknowledged history.
                let rec = WalRecord::from_bytes(payload)
                    .map_err(|_| WalError::Corrupt { what: "record payload" })?;
                out.tail.push(rec);
                pos = next;
            }
            out.torn_bytes = (bytes.len() - pos) as u64;
            out.valid_len = pos as u64;
        } else {
            out.valid_len = 0;
        }
        Ok(out)
    }

    /// Opens the shard's WAL for appending, recovering whatever the files
    /// hold: returns the handle (positioned after the valid prefix, torn
    /// tail truncated) and the recovered state. A fresh directory yields an
    /// empty [`Recovered`].
    ///
    /// # Errors
    /// Fails on I/O errors or structural corruption.
    pub fn open(
        cfg: &DurabilityConfig,
        node: NodeId,
        shard: u32,
    ) -> WalResult<(ShardWal, Recovered)> {
        let (dir, log_path, snap_path) = Self::paths(cfg, node, shard);
        std::fs::create_dir_all(&dir)?;
        let recovered = Self::load(cfg, node, shard)?;

        // `truncate(false)`: the valid prefix must survive; only the torn
        // tail (if any) is cut below, via `set_len`.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        if recovered.valid_len == 0 {
            // New file, or one torn before the magic completed: restart it.
            file.set_len(0)?;
            file.write_all(LOG_MAGIC)?;
        } else if recovered.torn_bytes > 0 {
            file.set_len(recovered.valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        if cfg.mode == DurabilityMode::Sync {
            file.sync_data()?;
        }

        let wal = ShardWal {
            log_path,
            snap_path,
            mode: cfg.mode,
            snapshot_every: cfg.snapshot_every,
            group_commit: cfg.group_commit.max(1),
            shard,
            file,
            tail_records: recovered.tail.len() as u64,
            unsynced: 0,
        };
        Ok((wal, recovered))
    }

    /// Opens the shard's WAL as a **fresh genesis**: any existing log and
    /// snapshot are discarded first. This is what a brand-new node identity
    /// uses (`IdeaNode::try_new`); restarting an existing identity goes
    /// through [`ShardWal::open`] + replay (`IdeaNode::recover`).
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn create(cfg: &DurabilityConfig, node: NodeId, shard: u32) -> WalResult<ShardWal> {
        let (dir, log_path, snap_path) = Self::paths(cfg, node, shard);
        std::fs::create_dir_all(&dir)?;
        if snap_path.exists() {
            std::fs::remove_file(&snap_path)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        file.set_len(0)?;
        file.write_all(LOG_MAGIC)?;
        if cfg.mode == DurabilityMode::Sync {
            file.sync_data()?;
        }
        Ok(ShardWal {
            log_path,
            snap_path,
            mode: cfg.mode,
            snapshot_every: cfg.snapshot_every,
            group_commit: cfg.group_commit.max(1),
            shard,
            file,
            tail_records: 0,
            unsynced: 0,
        })
    }

    /// Appends one record; under [`DurabilityMode::Sync`] an `fdatasync`
    /// runs once the group-commit window fills (every append when the
    /// window is 1, the default). [`ShardWal::sync`] drains a partially
    /// filled window.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn append(&mut self, rec: &WalRecord) -> WalResult<()> {
        let payload = rec.to_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        append_frame(&mut frame, &payload);
        self.file.write_all(&frame)?;
        self.unsynced += 1;
        if self.mode == DurabilityMode::Sync && self.unsynced >= self.group_commit {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        self.tail_records += 1;
        Ok(())
    }

    /// Forces buffered appends to disk: the Async mode's clean-shutdown
    /// flush, and the drain of a partially filled Sync group-commit
    /// window.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn sync(&mut self) -> WalResult<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Appends written since the last `fdatasync` (at most
    /// `group_commit - 1` after any Sync-mode append returns).
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced
    }

    /// True once the tail has grown past `snapshot_every` records — time
    /// for the owner to call [`ShardWal::install_snapshot`].
    pub fn should_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.tail_records >= self.snapshot_every
    }

    /// Records appended since the last durable snapshot (the "WAL tail").
    /// Zero right after a snapshot — the clean-shutdown invariant.
    pub fn tail_records(&self) -> u64 {
        self.tail_records
    }

    /// Installs a durable snapshot: write to a temporary file, fsync,
    /// rename over the previous snapshot, then truncate the log. A crash
    /// between rename and truncate only leaves already-snapshotted records
    /// in the log — replaying them over the snapshot is idempotent for
    /// every record the store writes after a snapshot boundary.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn install_snapshot(&mut self, snap: &ShardSnapshot) -> WalResult<()> {
        let tmp = self.snap_path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            let payload = snap.to_bytes();
            let mut out = Vec::with_capacity(SNAP_MAGIC.len() + FRAME_HEADER + payload.len());
            out.extend_from_slice(SNAP_MAGIC);
            append_frame(&mut out, &payload);
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.snap_path)?;
        self.file.set_len(LOG_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        if self.mode == DurabilityMode::Sync {
            self.file.sync_data()?;
        }
        self.tail_records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// The log file's current byte length (bench/introspection).
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn log_bytes(&self) -> WalResult<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// The log file path (introspection/tests).
    pub fn log_path(&self) -> &std::path::Path {
        &self.log_path
    }

    /// The shard index this handle persists (stamps snapshots).
    pub fn shard(&self) -> u32 {
        self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::{ObjectId, SimTime, Update, UpdateId, UpdatePayload, WriterId};

    fn tmp_cfg(tag: &str) -> DurabilityConfig {
        let dir = std::env::temp_dir().join(format!("idea-wal-log-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurabilityConfig::sync(dir)
    }

    fn upd(seq: u64) -> Update {
        Update {
            object: ObjectId(3),
            id: UpdateId { writer: WriterId(0), seq },
            at: SimTime::from_secs(seq),
            meta_delta: 1,
            payload: UpdatePayload::Opaque(bytes::Bytes::from(vec![9; 4])),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_open_recovers_records() {
        let cfg = tmp_cfg("roundtrip");
        let recs = vec![
            WalRecord::Open { object: ObjectId(3) },
            WalRecord::Write { update: upd(1) },
            WalRecord::Ingest { update: upd(2) },
        ];
        {
            let (mut wal, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
            assert!(r.is_empty());
            for rec in &recs {
                wal.append(rec).unwrap();
            }
            assert_eq!(wal.tail_records(), 3);
        }
        let (_, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(r.tail, recs);
        assert_eq!(r.torn_bytes, 0);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_appending_resumes() {
        let cfg = tmp_cfg("torn");
        let log_path;
        {
            let (mut wal, _) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
            wal.append(&WalRecord::Open { object: ObjectId(3) }).unwrap();
            wal.append(&WalRecord::Write { update: upd(1) }).unwrap();
            log_path = wal.log_path().to_path_buf();
        }
        // Tear the final frame mid-payload, as a crash would.
        let len = std::fs::metadata(&log_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log_path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(r.tail, vec![WalRecord::Open { object: ObjectId(3) }]);
        assert!(r.torn_bytes > 0, "the torn frame is reported");
        // The tail was truncated: appending after recovery yields a clean log.
        wal.append(&WalRecord::Write { update: upd(1) }).unwrap();
        drop(wal);
        let (_, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(r.tail.len(), 2);
        assert_eq!(r.torn_bytes, 0);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_log_and_survives_reopen() {
        let cfg = tmp_cfg("snap");
        let snap = ShardSnapshot {
            node: NodeId(0),
            writer: WriterId(0),
            shard: 0,
            objects: vec![crate::ObjectSnapshot {
                object: ObjectId(3),
                next_seq: 2,
                log: vec![upd(1)],
                pending: vec![],
            }],
        };
        {
            let (mut wal, _) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
            wal.append(&WalRecord::Open { object: ObjectId(3) }).unwrap();
            wal.append(&WalRecord::Write { update: upd(1) }).unwrap();
            wal.install_snapshot(&snap).unwrap();
            assert_eq!(wal.tail_records(), 0, "snapshot empties the tail");
            wal.append(&WalRecord::Write { update: upd(2) }).unwrap();
        }
        let (_, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(r.snapshot, Some(snap));
        assert_eq!(r.tail, vec![WalRecord::Write { update: upd(2) }]);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn create_discards_previous_identity() {
        let cfg = tmp_cfg("create");
        {
            let (mut wal, _) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
            wal.append(&WalRecord::Open { object: ObjectId(3) }).unwrap();
        }
        let wal = ShardWal::create(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(wal.tail_records(), 0);
        drop(wal);
        let (_, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert!(r.is_empty());
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn group_commit_window_coalesces_syncs_and_loses_nothing() {
        let cfg = DurabilityConfig { group_commit: 3, ..tmp_cfg("group") };
        {
            let (mut wal, _) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
            wal.append(&WalRecord::Open { object: ObjectId(3) }).unwrap();
            assert_eq!(wal.unsynced_records(), 1);
            wal.append(&WalRecord::Write { update: upd(1) }).unwrap();
            assert_eq!(wal.unsynced_records(), 2);
            // The window fills: this append carries the fdatasync.
            wal.append(&WalRecord::Write { update: upd(2) }).unwrap();
            assert_eq!(wal.unsynced_records(), 0);
            // An explicit flush drains a partial window (clean shutdown).
            wal.append(&WalRecord::Write { update: upd(3) }).unwrap();
            assert_eq!(wal.unsynced_records(), 1);
            wal.sync().unwrap();
            assert_eq!(wal.unsynced_records(), 0);
        }
        let (_, r) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert_eq!(r.tail.len(), 4, "every append survives the reopen");
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn should_snapshot_tracks_the_threshold() {
        let cfg = DurabilityConfig { snapshot_every: 2, ..tmp_cfg("thresh") };
        let (mut wal, _) = ShardWal::open(&cfg, NodeId(0), 0).unwrap();
        assert!(!wal.should_snapshot());
        wal.append(&WalRecord::Open { object: ObjectId(3) }).unwrap();
        assert!(!wal.should_snapshot());
        wal.append(&WalRecord::Write { update: upd(1) }).unwrap();
        assert!(wal.should_snapshot());
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }
}
