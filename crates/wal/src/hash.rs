//! The cheap rolling state hash: a splitmix64 fold per update, combined by
//! XOR so the digest is independent of writer interleaving (any delivery
//! order that applies the same update *set* hashes identically) and
//! supports O(1) incremental add/remove. One `u64` per node pins recovery
//! and rejoin equivalence in tests; the fault-injection harness on the
//! roadmap builds on the same digest.

use idea_types::{ObjectId, Update, UpdatePayload};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Chains a value into a running hash (order-dependent, used *within* one
/// update where field order is fixed).
pub fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(GOLDEN))
}

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = mix(h, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Digest of one update: every identity and payload field contributes, so
/// two updates differing anywhere hash differently (w.h.p.).
pub fn update_hash(u: &Update) -> u64 {
    let mut h = splitmix64(u.object.0);
    h = mix(h, u64::from(u.id.writer.0));
    h = mix(h, u.id.seq);
    h = mix(h, u.at.0);
    h = mix(h, u.meta_delta as u64);
    match &u.payload {
        UpdatePayload::Opaque(b) => fold_bytes(mix(h, 1), b),
        UpdatePayload::Stroke { x, y, text } => {
            h = mix(h, 2);
            h = mix(h, u64::from(*x) << 16 | u64::from(*y));
            fold_bytes(h, text.as_bytes())
        }
        UpdatePayload::Booking { flight, seats, price_cents } => {
            h = mix(h, 3);
            h = mix(h, u64::from(*flight) << 32 | u64::from(*seats));
            mix(h, *price_cents as u64)
        }
    }
}

/// Folds one object's content digest into a shard/node-level digest.
/// Empty replicas still contribute (the digest distinguishes which objects
/// exist); XOR-combining the per-object values keeps the node digest
/// independent of how objects are partitioned into shards.
pub fn object_hash(object: ObjectId, content: u64) -> u64 {
    splitmix64(splitmix64(object.0 ^ GOLDEN) ^ content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use idea_types::{SimTime, UpdateId, WriterId};

    fn upd(writer: u32, seq: u64, delta: i64) -> Update {
        Update {
            object: ObjectId(7),
            id: UpdateId { writer: WriterId(writer), seq },
            at: SimTime::from_secs(seq),
            meta_delta: delta,
            payload: UpdatePayload::Opaque(Bytes::from(vec![writer as u8; 3])),
        }
    }

    #[test]
    fn xor_fold_is_order_independent() {
        let a = upd(0, 1, 5);
        let b = upd(1, 1, -2);
        let c = upd(0, 2, 9);
        let fwd = update_hash(&a) ^ update_hash(&b) ^ update_hash(&c);
        let rev = update_hash(&c) ^ update_hash(&a) ^ update_hash(&b);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn every_field_matters() {
        let base = upd(0, 1, 5);
        let mut m = base.clone();
        m.meta_delta = 6;
        assert_ne!(update_hash(&base), update_hash(&m));
        let mut m = base.clone();
        m.at = SimTime::from_secs(99);
        assert_ne!(update_hash(&base), update_hash(&m));
        let mut m = base.clone();
        m.payload = UpdatePayload::Opaque(Bytes::from(vec![0, 0, 4]));
        assert_ne!(update_hash(&base), update_hash(&m));
        let mut m = base.clone();
        m.id.seq = 2;
        assert_ne!(update_hash(&base), update_hash(&m));
    }

    #[test]
    fn empty_objects_still_distinguish_existence() {
        assert_ne!(object_hash(ObjectId(1), 0), object_hash(ObjectId(2), 0));
        assert_ne!(object_hash(ObjectId(1), 0), 0);
    }
}
