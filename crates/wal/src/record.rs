//! The log record vocabulary: every mutation a `StoreShard` can perform is
//! captured as one [`WalRecord`], so snapshot + tail replay reconstructs
//! the shard exactly.

use crate::codec::{CodecError, WalCodec, WalReader};
use idea_types::{ObjectId, Update};
use idea_vv::VersionVector;

/// One durable store mutation. Replay order is append order; each variant
/// replays to exactly the store call that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A replica of `object` was created (first `open`).
    Open {
        /// The object whose replica was created.
        object: ObjectId,
    },
    /// A sanctioned local write (carries the assigned sequence number, so
    /// replay restores both the log and the writer's `next_seq`).
    Write {
        /// The locally issued update.
        update: Update,
    },
    /// An adopted remote delta (gossip, fetch, resolution transfer).
    Ingest {
        /// The remote update applied (or buffered) at the replica.
        update: Update,
    },
    /// The replica adopted a reference consistent state wholesale
    /// (resolution reconciliation): its log becomes exactly `log`.
    Reconcile {
        /// The object reconciled.
        object: ObjectId,
        /// The reference log adopted.
        log: Vec<Update>,
    },
    /// Loser invalidation: updates beyond the sanctioned per-writer
    /// `counts` were dropped (the reference/resolution transition).
    DropExtras {
        /// The object truncated.
        object: ObjectId,
        /// The sanctioned per-writer counts.
        counts: VersionVector,
    },
    /// Local sequencing resumed after `seq` (post-reconciliation).
    ResumeSeq {
        /// The object whose write sequence moved.
        object: ObjectId,
        /// The last sanctioned local sequence number.
        seq: u64,
    },
    /// Rollback to a checkpoint: the applied log was cut to `keep` entries.
    Truncate {
        /// The object rolled back.
        object: ObjectId,
        /// Number of log entries retained.
        keep: u64,
    },
}

// Tags start at 1 so a zeroed disk block never decodes as a record.
const T_OPEN: u8 = 1;
const T_WRITE: u8 = 2;
const T_INGEST: u8 = 3;
const T_RECONCILE: u8 = 4;
const T_DROP_EXTRAS: u8 = 5;
const T_RESUME_SEQ: u8 = 6;
const T_TRUNCATE: u8 = 7;

impl WalCodec for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Open { object } => {
                T_OPEN.encode(out);
                object.encode(out);
            }
            WalRecord::Write { update } => {
                T_WRITE.encode(out);
                update.encode(out);
            }
            WalRecord::Ingest { update } => {
                T_INGEST.encode(out);
                update.encode(out);
            }
            WalRecord::Reconcile { object, log } => {
                T_RECONCILE.encode(out);
                object.encode(out);
                log.encode(out);
            }
            WalRecord::DropExtras { object, counts } => {
                T_DROP_EXTRAS.encode(out);
                object.encode(out);
                counts.encode(out);
            }
            WalRecord::ResumeSeq { object, seq } => {
                T_RESUME_SEQ.encode(out);
                object.encode(out);
                seq.encode(out);
            }
            WalRecord::Truncate { object, keep } => {
                T_TRUNCATE.encode(out);
                object.encode(out);
                keep.encode(out);
            }
        }
    }

    fn decode(r: &mut WalReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            T_OPEN => Ok(WalRecord::Open { object: ObjectId::decode(r)? }),
            T_WRITE => Ok(WalRecord::Write { update: Update::decode(r)? }),
            T_INGEST => Ok(WalRecord::Ingest { update: Update::decode(r)? }),
            T_RECONCILE => Ok(WalRecord::Reconcile {
                object: ObjectId::decode(r)?,
                log: Vec::<Update>::decode(r)?,
            }),
            T_DROP_EXTRAS => Ok(WalRecord::DropExtras {
                object: ObjectId::decode(r)?,
                counts: VersionVector::decode(r)?,
            }),
            T_RESUME_SEQ => {
                Ok(WalRecord::ResumeSeq { object: ObjectId::decode(r)?, seq: u64::decode(r)? })
            }
            T_TRUNCATE => {
                Ok(WalRecord::Truncate { object: ObjectId::decode(r)?, keep: u64::decode(r)? })
            }
            _ => Err(r.err("unknown WAL record tag")),
        }
    }
}

impl WalRecord {
    /// The object this record mutates.
    pub fn object(&self) -> ObjectId {
        match self {
            WalRecord::Open { object }
            | WalRecord::Reconcile { object, .. }
            | WalRecord::DropExtras { object, .. }
            | WalRecord::ResumeSeq { object, .. }
            | WalRecord::Truncate { object, .. } => *object,
            WalRecord::Write { update } | WalRecord::Ingest { update } => update.object,
        }
    }
}
