//! Durability codec pins, mirroring `idea-transport`'s
//! `codec_roundtrip.rs`: every `WalRecord` variant and the snapshot forms
//! survive encode → decode bit-for-bit, no prefix of a valid encoding
//! decodes, trailing bytes are rejected, and the frame layer distinguishes
//! a torn tail (tolerated crash) from real corruption (loud failure).
//!
//! One deterministic exhaustive pass covers each variant at least once
//! (so a forgotten tag fails loudly, not probabilistically), and a
//! proptest drives randomized records/snapshots through the same trip.

use bytes::Bytes;
use idea_types::{NodeId, ObjectId, SimTime, Update, UpdateId, UpdatePayload, WriterId};
use idea_vv::VersionVector;
use idea_wal::{
    crc32, DurabilityConfig, ObjectSnapshot, ShardSnapshot, ShardWal, WalCodec, WalError, WalRecord,
};
use proptest::prelude::*;

// ====================================================================
// Strategies (same payload/update shapes as the transport suite)
// ====================================================================

fn arb_payload() -> impl Strategy<Value = UpdatePayload> {
    (0u8..3, prop::collection::vec(0u8..255, 0..12), (0u16..500, 0u16..500), 1i64..100_000)
        .prop_map(|(tag, bytes, (x, y), price)| match tag {
            0 => UpdatePayload::Opaque(Bytes::from(bytes)),
            1 => UpdatePayload::Stroke {
                x,
                y,
                text: bytes.iter().map(|b| char::from(b'a' + b % 26)).collect(),
            },
            _ => UpdatePayload::Booking {
                flight: u32::from(x),
                seats: u32::from(y),
                price_cents: price,
            },
        })
}

fn arb_update() -> impl Strategy<Value = Update> {
    (
        (0u64..64).prop_map(ObjectId),
        (0u32..8, 1u64..1_000),
        0u64..600_000_000,
        -1_000i64..1_000,
        arb_payload(),
    )
        .prop_map(|(object, (writer, seq), at, meta_delta, payload)| Update {
            object,
            id: UpdateId { writer: WriterId(writer), seq },
            at: SimTime(at),
            meta_delta,
            payload,
        })
}

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    prop::collection::btree_map(0u32..16, 1u64..500, 0..6)
        .prop_map(|m| VersionVector::from_pairs(m.into_iter().map(|(w, c)| (WriterId(w), c))))
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        0u8..7,
        (0u64..64).prop_map(ObjectId),
        arb_update(),
        prop::collection::vec(arb_update(), 0..4),
        arb_vv(),
        0u64..1_000,
    )
        .prop_map(|(tag, object, update, log, counts, n)| match tag {
            0 => WalRecord::Open { object },
            1 => WalRecord::Write { update },
            2 => WalRecord::Ingest { update },
            3 => WalRecord::Reconcile { object, log },
            4 => WalRecord::DropExtras { object, counts },
            5 => WalRecord::ResumeSeq { object, seq: n },
            _ => WalRecord::Truncate { object, keep: n },
        })
}

fn arb_snapshot() -> impl Strategy<Value = ShardSnapshot> {
    (
        0u32..8,
        0u32..8,
        0u32..4,
        prop::collection::vec(
            ((0u64..64).prop_map(ObjectId), 0u64..100, prop::collection::vec(arb_update(), 0..4)),
            0..4,
        ),
    )
        .prop_map(|(node, writer, shard, objects)| ShardSnapshot {
            node: NodeId(node),
            writer: WriterId(writer),
            shard,
            objects: objects
                .into_iter()
                .map(|(object, next_seq, log)| ObjectSnapshot {
                    object,
                    next_seq,
                    pending: log.iter().take(1).cloned().collect(),
                    log,
                })
                .collect(),
        })
}

// ====================================================================
// Deterministic exhaustive pass: one fixture per variant
// ====================================================================

fn upd(seq: u64, payload: UpdatePayload) -> Update {
    Update {
        object: ObjectId(7),
        id: UpdateId { writer: WriterId(2), seq },
        at: SimTime::from_millis(1_234 + seq),
        meta_delta: -3,
        payload,
    }
}

fn fixture_records() -> Vec<WalRecord> {
    let obj = ObjectId(7);
    vec![
        WalRecord::Open { object: obj },
        WalRecord::Write { update: upd(1, UpdatePayload::Opaque(Bytes::from(vec![1, 2, 3]))) },
        WalRecord::Write {
            update: upd(2, UpdatePayload::Stroke { x: 3, y: 9, text: "hi".into() }),
        },
        WalRecord::Ingest {
            update: upd(3, UpdatePayload::Booking { flight: 12, seats: 2, price_cents: 45_000 }),
        },
        WalRecord::Reconcile {
            object: obj,
            log: vec![upd(1, UpdatePayload::none()), upd(2, UpdatePayload::none())],
        },
        WalRecord::Reconcile { object: obj, log: vec![] },
        WalRecord::DropExtras {
            object: obj,
            counts: VersionVector::from_pairs([(WriterId(0), 4), (WriterId(2), 1)]),
        },
        WalRecord::DropExtras { object: obj, counts: VersionVector::new() },
        WalRecord::ResumeSeq { object: obj, seq: 17 },
        WalRecord::Truncate { object: obj, keep: 0 },
        WalRecord::Truncate { object: obj, keep: 9 },
    ]
}

fn fixture_snapshot() -> ShardSnapshot {
    ShardSnapshot {
        node: NodeId(3),
        writer: WriterId(3),
        shard: 1,
        objects: vec![
            ObjectSnapshot {
                object: ObjectId(7),
                next_seq: 4,
                log: vec![
                    upd(1, UpdatePayload::Opaque(Bytes::from(vec![5; 6]))),
                    upd(2, UpdatePayload::Stroke { x: 1, y: 2, text: "snap".into() }),
                ],
                pending: vec![upd(9, UpdatePayload::none())],
            },
            ObjectSnapshot { object: ObjectId(8), next_seq: 0, log: vec![], pending: vec![] },
        ],
    }
}

#[test]
fn every_record_variant_round_trips() {
    for rec in fixture_records() {
        let bytes = rec.to_bytes();
        assert_eq!(WalRecord::from_bytes(&bytes).unwrap(), rec, "{rec:?}");
    }
}

#[test]
fn snapshot_round_trips() {
    let snap = fixture_snapshot();
    assert_eq!(ShardSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
}

/// Decoding must reject every truncation of every fixture — no prefix of a
/// valid encoding is itself valid (self-delimiting check).
#[test]
fn no_fixture_prefix_decodes() {
    for rec in fixture_records() {
        let bytes = rec.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                WalRecord::from_bytes(&bytes[..cut]).is_err(),
                "{rec:?} decoded from a {cut}-byte prefix of {} bytes",
                bytes.len()
            );
        }
    }
    let bytes = fixture_snapshot().to_bytes();
    for cut in 0..bytes.len() {
        assert!(ShardSnapshot::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    for rec in fixture_records() {
        let mut bytes = rec.to_bytes();
        bytes.push(0);
        let err = WalRecord::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.what, "trailing bytes after value", "{rec:?}");
    }
    let mut bytes = fixture_snapshot().to_bytes();
    bytes.push(0);
    assert!(ShardSnapshot::from_bytes(&bytes).is_err());
}

#[test]
fn unknown_tag_is_rejected() {
    // Tag 0 is deliberately unassigned (a zeroed disk block never decodes).
    for tag in [0u8, 8, 200] {
        assert!(WalRecord::from_bytes(&[tag]).is_err(), "tag {tag} decoded");
    }
}

// ====================================================================
// Frame layer: torn tail vs corruption
// ====================================================================

fn tmp_cfg(tag: &str) -> DurabilityConfig {
    let dir = std::env::temp_dir().join(format!("idea-wal-rt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    DurabilityConfig::sync(dir)
}

/// Writes the fixture records into a fresh WAL and returns the log path.
fn write_fixture_log(cfg: &DurabilityConfig) -> std::path::PathBuf {
    let (mut wal, r) = ShardWal::open(cfg, NodeId(0), 0).unwrap();
    assert!(r.is_empty());
    for rec in fixture_records() {
        wal.append(&rec).unwrap();
    }
    wal.log_path().to_path_buf()
}

/// Flipping a byte inside the *final* frame's payload makes its checksum
/// fail — indistinguishable from a crash mid-append, so it is tolerated as
/// a torn tail rather than surfaced as corruption.
#[test]
fn checksum_corrupt_final_frame_is_a_torn_tail() {
    let cfg = tmp_cfg("tornsum");
    let log = write_fixture_log(&cfg);
    let mut bytes = std::fs::read(&log).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&log, &bytes).unwrap();

    let r = ShardWal::load(&cfg, NodeId(0), 0).unwrap();
    let all = fixture_records();
    assert_eq!(r.tail, all[..all.len() - 1], "everything before the bad frame survives");
    assert!(r.torn_bytes > 0, "the bad frame is reported as torn");
    std::fs::remove_dir_all(&cfg.dir).unwrap();
}

/// A checksum-corrupt frame *mid-log* also ends the valid prefix — the
/// scan cannot resynchronise past it, so recovery keeps the prefix and
/// reports the rest as torn (`open` then truncates it for appending).
#[test]
fn checksum_corrupt_middle_frame_ends_the_valid_prefix() {
    let cfg = tmp_cfg("tornmid");
    let log = write_fixture_log(&cfg);
    let mut bytes = std::fs::read(&log).unwrap();
    // The first frame starts after the 8-byte magic: [len][crc][payload].
    // Flip a payload byte of the *second* frame.
    let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let second_payload = 8 + 8 + first_len + 8;
    bytes[second_payload] ^= 0xFF;
    std::fs::write(&log, &bytes).unwrap();

    let r = ShardWal::load(&cfg, NodeId(0), 0).unwrap();
    assert_eq!(r.tail, fixture_records()[..1], "only the intact prefix survives");
    assert!(r.torn_bytes > 0);
    std::fs::remove_dir_all(&cfg.dir).unwrap();
}

/// A frame whose checksum *matches* but whose payload does not decode is
/// real corruption (the bytes were acknowledged as durable), never a torn
/// tail — recovery must fail loudly instead of silently dropping history.
#[test]
fn checksum_valid_undecodable_frame_is_corruption() {
    let cfg = tmp_cfg("corrupt");
    let log = write_fixture_log(&cfg);
    let mut bytes = std::fs::read(&log).unwrap();
    // Append a frame with a correct CRC over an undecodable payload.
    let garbage = [0u8, 0, 0]; // tag 0 is unassigned
    bytes.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&garbage).to_le_bytes());
    bytes.extend_from_slice(&garbage);
    std::fs::write(&log, &bytes).unwrap();

    let err = ShardWal::load(&cfg, NodeId(0), 0).unwrap_err();
    assert!(matches!(err, WalError::Corrupt { what: "record payload" }), "{err}");
    std::fs::remove_dir_all(&cfg.dir).unwrap();
}

#[test]
fn bad_log_magic_is_corruption() {
    let cfg = tmp_cfg("magic");
    let log = write_fixture_log(&cfg);
    let mut bytes = std::fs::read(&log).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&log, &bytes).unwrap();
    let err = ShardWal::load(&cfg, NodeId(0), 0).unwrap_err();
    assert!(matches!(err, WalError::Corrupt { what: "log magic" }), "{err}");
    std::fs::remove_dir_all(&cfg.dir).unwrap();
}

// ====================================================================
// Property pass
// ====================================================================

proptest! {
    #[test]
    fn random_records_round_trip(rec in arb_record()) {
        let bytes = rec.to_bytes();
        prop_assert_eq!(WalRecord::from_bytes(&bytes).unwrap(), rec);
    }

    #[test]
    fn random_snapshots_round_trip(snap in arb_snapshot()) {
        let bytes = snap.to_bytes();
        prop_assert_eq!(ShardSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    /// Random single-byte flips anywhere after the magic never produce a
    /// silent wrong answer: recovery either returns a prefix of the written
    /// records (torn-tail tolerance) or fails loudly as corruption.
    #[test]
    fn random_byte_flip_never_misdecodes(pos_seed in 0usize..10_000, flip in 1u8..255) {
        let cfg = tmp_cfg(&format!("flip-{pos_seed}-{flip}"));
        let log = write_fixture_log(&cfg);
        let mut bytes = std::fs::read(&log).unwrap();
        let pos = 8 + pos_seed % (bytes.len() - 8);
        bytes[pos] ^= flip;
        std::fs::write(&log, &bytes).unwrap();

        let all = fixture_records();
        match ShardWal::load(&cfg, NodeId(0), 0) {
            Ok(r) => prop_assert!(
                r.tail == all[..r.tail.len()],
                "recovered tail is not a prefix of what was written"
            ),
            Err(WalError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }
}
