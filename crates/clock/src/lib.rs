//! Clock models for the IDEA reproduction.
//!
//! Staleness — one member of the paper's `<numerical error, order error,
//! staleness>` triple — is computed from timestamps issued by *different*
//! nodes, so the paper assumes "the gap among time clocks of participating
//! nodes in the system is within seconds" (§4.4.1), achieved either by a
//! globally synchronizing clock algorithm or by NTP.
//!
//! This crate provides that substrate:
//!
//! * [`PerfectClock`] — the idealised case (all timestamps are true time);
//! * [`SkewedClock`] — a per-node clock with a constant offset plus linear
//!   drift (parts-per-million), the standard oscillator model;
//! * [`NtpDiscipline`] — a periodic synchronisation loop that estimates the
//!   offset against a time server through a jittery network (the classic NTP
//!   half-RTT error) and slews the clock, keeping the residual skew bounded;
//! * [`ClockFleet`] — one clock per node, with helpers the experiment harness
//!   uses to issue timestamps and audit the worst-case gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use idea_types::{NodeId, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Read a node-local clock given the true (engine) time.
pub trait Clock {
    /// The node-local reading at true time `true_now`.
    fn read(&self, true_now: SimTime) -> SimTime;

    /// Signed offset `local - true` in microseconds at `true_now`.
    fn offset_micros(&self, true_now: SimTime) -> i64 {
        let local = self.read(true_now);
        local.as_micros() as i64 - true_now.as_micros() as i64
    }
}

/// A clock that always reads true time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectClock;

impl Clock for PerfectClock {
    #[inline]
    fn read(&self, true_now: SimTime) -> SimTime {
        true_now
    }
}

/// A clock with constant offset plus linear drift.
///
/// The local reading at true time `t` is
/// `t + offset + drift_ppm · 1e-6 · (t - epoch)`, where `epoch` is the last
/// instant the offset was (re)anchored — either construction or the last
/// [`SkewedClock::slew`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewedClock {
    /// Offset (local − true) in microseconds at `epoch`.
    offset_us: f64,
    /// Drift rate in parts per million of elapsed true time.
    drift_ppm: f64,
    /// True time at which `offset_us` was anchored.
    epoch: SimTime,
}

impl SkewedClock {
    /// Builds a clock with the given initial offset (µs) and drift (ppm).
    pub fn new(offset_us: f64, drift_ppm: f64) -> Self {
        SkewedClock { offset_us, drift_ppm, epoch: SimTime::ZERO }
    }

    /// The signed offset (µs) the clock will exhibit at true time `t`.
    pub fn offset_at(&self, t: SimTime) -> f64 {
        let elapsed = t.saturating_since(self.epoch).as_micros() as f64;
        self.offset_us + self.drift_ppm * 1e-6 * elapsed
    }

    /// Applies a correction of `-correction_us` to the offset, re-anchoring
    /// the drift epoch at `now`. Positive `correction_us` means the clock was
    /// measured to be ahead and is slewed back.
    pub fn slew(&mut self, now: SimTime, correction_us: f64) {
        self.offset_us = self.offset_at(now) - correction_us;
        self.epoch = now;
    }

    /// The drift rate in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

impl Clock for SkewedClock {
    fn read(&self, true_now: SimTime) -> SimTime {
        let local = true_now.as_micros() as f64 + self.offset_at(true_now);
        SimTime(local.max(0.0).round() as u64)
    }
}

/// Configuration for the NTP-like discipline loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NtpConfig {
    /// How often each node polls the time server.
    pub poll_interval: SimDuration,
    /// One-way network jitter bound to the server (µs). The classic NTP
    /// offset estimate errs by up to half the *asymmetry* of the path, which
    /// we model as ±`jitter_us / 2`.
    pub jitter_us: f64,
}

impl Default for NtpConfig {
    fn default() -> Self {
        // Poll every 16 s with ±20 ms jitter: residual skew stays well inside
        // the paper's "within seconds" assumption.
        NtpConfig { poll_interval: SimDuration::from_secs(16), jitter_us: 20_000.0 }
    }
}

/// Periodic NTP-like synchronisation of a [`SkewedClock`] against true time.
#[derive(Debug, Clone)]
pub struct NtpDiscipline {
    config: NtpConfig,
    next_poll: SimTime,
    polls: u64,
}

impl NtpDiscipline {
    /// Builds a discipline loop starting its first poll at `first_poll`.
    pub fn new(config: NtpConfig, first_poll: SimTime) -> Self {
        NtpDiscipline { config, next_poll: first_poll, polls: 0 }
    }

    /// Number of completed polls.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Advances the loop to `now`, disciplining the clock at every elapsed
    /// poll instant. `rng` supplies the per-poll measurement error.
    pub fn advance<R: Rng>(&mut self, clock: &mut SkewedClock, now: SimTime, rng: &mut R) {
        while self.next_poll <= now {
            let at = self.next_poll;
            // NTP measures offset with an error bounded by the path
            // asymmetry; sample it uniformly.
            let half = self.config.jitter_us / 2.0;
            let err = if half > 0.0 { rng.gen_range(-half..=half) } else { 0.0 };
            let measured = clock.offset_at(at) + err;
            clock.slew(at, measured);
            self.polls += 1;
            self.next_poll = at + self.config.poll_interval;
        }
    }

    /// Worst-case residual offset (µs) immediately *before* a poll: the last
    /// measurement error plus drift accumulated over one poll interval.
    pub fn residual_bound_us(&self, drift_ppm: f64) -> f64 {
        self.config.jitter_us / 2.0
            + drift_ppm.abs() * 1e-6 * self.config.poll_interval.as_micros() as f64
    }
}

/// One [`SkewedClock`] per node plus an optional discipline loop.
#[derive(Debug, Clone)]
pub struct ClockFleet {
    clocks: Vec<SkewedClock>,
    discipline: Vec<NtpDiscipline>,
    enabled: bool,
}

impl ClockFleet {
    /// A fleet of perfectly synchronised clocks (offset 0, drift 0).
    pub fn perfect(n: usize) -> Self {
        ClockFleet {
            clocks: vec![SkewedClock::new(0.0, 0.0); n],
            discipline: Vec::new(),
            enabled: false,
        }
    }

    /// A fleet with offsets drawn uniformly from ±`max_offset_us` and drifts
    /// from ±`max_drift_ppm`, NTP-disciplined with `ntp`.
    pub fn synced<R: Rng>(
        n: usize,
        max_offset_us: f64,
        max_drift_ppm: f64,
        ntp: NtpConfig,
        rng: &mut R,
    ) -> Self {
        let mut clocks = Vec::with_capacity(n);
        let mut discipline = Vec::with_capacity(n);
        for i in 0..n {
            let off = if max_offset_us > 0.0 {
                rng.gen_range(-max_offset_us..=max_offset_us)
            } else {
                0.0
            };
            let drift = if max_drift_ppm > 0.0 {
                rng.gen_range(-max_drift_ppm..=max_drift_ppm)
            } else {
                0.0
            };
            clocks.push(SkewedClock::new(off, drift));
            // Stagger first polls so the fleet doesn't sync in lock-step.
            let first = SimTime::from_micros((i as u64 % 16) * ntp.poll_interval.as_micros() / 16);
            discipline.push(NtpDiscipline::new(ntp, first));
        }
        ClockFleet { clocks, discipline, enabled: true }
    }

    /// Number of clocks in the fleet.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Reads node `node`'s clock at true time `now`, running any due
    /// discipline polls first.
    pub fn read<R: Rng>(&mut self, node: NodeId, now: SimTime, rng: &mut R) -> SimTime {
        let i = node.index();
        if self.enabled {
            self.discipline[i].advance(&mut self.clocks[i], now, rng);
        }
        self.clocks[i].read(now)
    }

    /// Largest |local − true| across the fleet at `now` (µs), without
    /// advancing discipline (an audit, not a read).
    pub fn max_abs_offset_us(&self, now: SimTime) -> f64 {
        self.clocks.iter().map(|c| c.offset_at(now).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = PerfectClock;
        let t = SimTime::from_secs(42);
        assert_eq!(c.read(t), t);
        assert_eq!(c.offset_micros(t), 0);
    }

    #[test]
    fn skewed_clock_applies_offset() {
        let c = SkewedClock::new(5_000.0, 0.0);
        assert_eq!(c.read(SimTime::from_secs(1)), SimTime(1_005_000));
        assert_eq!(c.offset_micros(SimTime::from_secs(1)), 5_000);
    }

    #[test]
    fn skewed_clock_drifts_linearly() {
        // 100 ppm => 100 µs per second.
        let c = SkewedClock::new(0.0, 100.0);
        assert_eq!(c.read(SimTime::from_secs(10)), SimTime(10_001_000));
        assert!((c.offset_at(SimTime::from_secs(10)) - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn negative_offset_saturates_at_zero() {
        let c = SkewedClock::new(-5_000_000.0, 0.0);
        assert_eq!(c.read(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn slew_reanchors_drift_epoch() {
        let mut c = SkewedClock::new(1_000.0, 50.0);
        let t = SimTime::from_secs(20);
        let off = c.offset_at(t);
        c.slew(t, off); // perfect correction
        assert!(c.offset_at(t).abs() < 1e-9);
        // Drift resumes from the new epoch.
        let later = t + SimDuration::from_secs(10);
        assert!((c.offset_at(later) - 50.0 * 1e-6 * 10_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn ntp_keeps_offset_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = NtpConfig::default();
        let mut clock = SkewedClock::new(500_000.0, 200.0); // 0.5 s off, bad drift
        let mut ntp = NtpDiscipline::new(cfg, SimTime::ZERO);
        ntp.advance(&mut clock, SimTime::from_secs(600), &mut rng);
        assert!(ntp.polls() > 30);
        let bound = ntp.residual_bound_us(200.0);
        let residual = clock.offset_at(SimTime::from_secs(600)).abs();
        assert!(residual <= bound + 1.0, "residual {residual}µs exceeds bound {bound}µs");
        // And comfortably within the paper's "within seconds" assumption.
        assert!(residual < 1_000_000.0);
    }

    #[test]
    fn fleet_perfect_has_zero_gap() {
        let fleet = ClockFleet::perfect(8);
        assert_eq!(fleet.len(), 8);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.max_abs_offset_us(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn fleet_synced_converges_under_paper_bound() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut fleet = ClockFleet::synced(40, 2_000_000.0, 100.0, NtpConfig::default(), &mut rng);
        // Touch every clock far into the run so discipline catches up.
        let now = SimTime::from_secs(300);
        for i in 0..fleet.len() {
            let _ = fleet.read(NodeId(i as u32), now, &mut rng);
        }
        let worst = fleet.max_abs_offset_us(now);
        // Paper §4.4.1: gap "within seconds ... small enough to neglect".
        assert!(worst < 1_000_000.0, "worst residual {worst}µs");
    }

    #[test]
    fn fleet_read_monotone_between_polls() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fleet = ClockFleet::synced(2, 1_000.0, 10.0, NtpConfig::default(), &mut rng);
        let a = fleet.read(NodeId(0), SimTime::from_secs(1), &mut rng);
        let b = fleet.read(NodeId(0), SimTime::from_secs(2), &mut rng);
        assert!(b > a);
    }

    proptest! {
        #[test]
        fn skew_model_is_affine(off in -1e6f64..1e6, drift in -500f64..500.0,
                                t1 in 0u64..100_000_000, dt in 1u64..100_000_000) {
            let c = SkewedClock::new(off, drift);
            let o1 = c.offset_at(SimTime(t1));
            let o2 = c.offset_at(SimTime(t1 + dt));
            let expected_slope = drift * 1e-6 * dt as f64;
            prop_assert!((o2 - o1 - expected_slope).abs() < 1e-6);
        }

        #[test]
        fn discipline_residual_within_bound(seed in 0u64..64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = NtpConfig { poll_interval: SimDuration::from_secs(8), jitter_us: 10_000.0 };
            let mut clock = SkewedClock::new(
                rand::Rng::gen_range(&mut rng, -1e6..1e6),
                rand::Rng::gen_range(&mut rng, -100.0..100.0));
            let drift = clock.drift_ppm();
            let mut ntp = NtpDiscipline::new(cfg, SimTime::ZERO);
            ntp.advance(&mut clock, SimTime::from_secs(400), &mut rng);
            let bound = ntp.residual_bound_us(drift);
            prop_assert!(clock.offset_at(SimTime::from_secs(400)).abs() <= bound + 1.0);
        }
    }
}
