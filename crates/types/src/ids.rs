//! Identifier newtypes for nodes, writers and shared objects.
//!
//! All identifiers are plain integers wrapped in newtypes: comparisons are
//! total, hashing is trivial, and the "higher ID wins" resolution policy of
//! the paper (§4.5.1) maps onto the derived `Ord`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a participating node (a machine holding replicas).
///
/// In the paper's PlanetLab deployment every node is a physical host; in this
/// reproduction a node is a simulated process driven by one of the engines in
/// `idea-net`. The paper's *user-ID based* resolution policy assigns each
/// node "a randomly chosen ID, such as the hash value of their IP address";
/// here IDs are dense integers and the random assignment is done by the
/// topology builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index, useful for indexing dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identity of a writer (a user issuing updates).
///
/// The paper's extended version vectors are keyed by writer (user A, user B
/// in the worked example of §4.4.1). A writer usually *resides* on a node;
/// the mapping is maintained by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WriterId(pub u32);

impl WriterId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WriterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl From<u32> for WriterId {
    fn from(v: u32) -> Self {
        WriterId(v)
    }
}

/// Identity of a shared, replicated object (a "file" in the paper).
///
/// Consistency, the top/bottom-layer split and resolution are all *per
/// object* (§4.1: "different files may have different top layers — and
/// different top layers do not interfere with one another").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_ordering_is_numeric() {
        assert!(NodeId(3) < NodeId(10));
        assert!(NodeId(10) > NodeId(3));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(WriterId(2).to_string(), "w2");
        assert_eq!(ObjectId(9).to_string(), "obj9");
    }

    #[test]
    fn ids_hash_distinctly() {
        let set: HashSet<NodeId> = (0..100).map(NodeId).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(WriterId(7).index(), 7);
        assert_eq!(ObjectId(11).index(), 11);
    }

    #[test]
    fn from_impls() {
        assert_eq!(NodeId::from(5u32), NodeId(5));
        assert_eq!(WriterId::from(5u32), WriterId(5));
        assert_eq!(ObjectId::from(5u64), ObjectId(5));
    }
}
