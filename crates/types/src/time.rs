//! Virtual time for the discrete-event engine.
//!
//! All protocol logic is written against [`SimTime`] / [`SimDuration`]
//! (microsecond resolution) rather than `std::time`, so the same code can be
//! driven by the deterministic simulator (virtual time) or by the threaded
//! runtime (where the engine maps wall-clock onto `SimTime`).
//!
//! Microsecond resolution comfortably covers the paper's measurement range:
//! its smallest reported quantity is the 0.468 ms phase-1 delay of Table 2
//! and its largest is the 200 s run of Figure 8.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in virtual time (microseconds since the start of the run).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin, as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span from `earlier` to `self`; zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional milliseconds (rounds to nearest µs).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Builds a span from fractional seconds (rounds to nearest µs).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Whole microseconds in the span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Divides the span by an integer factor (integer division).
    #[inline]
    pub const fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }

    /// Scales the span by a float factor (rounds to nearest µs).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_micros(2_000_000));
    }

    #[test]
    fn float_constructors_round() {
        assert_eq!(SimDuration::from_millis_f64(0.4685), SimDuration(469));
        assert_eq!(SimDuration::from_secs_f64(0.000_001_4), SimDuration(1));
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration(0));
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::from_secs(1) - SimDuration::from_secs(5), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn display_scales_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn reporting_conversions() {
        assert!((SimDuration::from_millis(314).as_millis_f64() - 314.0).abs() < 1e-9);
        assert!((SimTime::from_secs(100).as_secs_f64() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(300));
        assert_eq!(d.div(4), SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
    }

    proptest! {
        #[test]
        fn add_then_sub_round_trips(base in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
            let t = SimTime(base);
            let dur = SimDuration(d);
            prop_assert_eq!((t + dur) - dur, t);
            prop_assert_eq!((t + dur) - t, dur);
        }

        #[test]
        fn since_never_panics(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let _ = SimTime(a).saturating_since(SimTime(b));
        }

        #[test]
        fn duration_sub_saturates(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let d = SimDuration(a) - SimDuration(b);
            prop_assert_eq!(d.0, a.saturating_sub(b));
        }
    }
}
