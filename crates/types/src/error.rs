//! Workspace-wide error types: the in-process [`IdeaError`] and its
//! wire-facing sibling [`WireError`].

use crate::ids::{NodeId, ObjectId, WriterId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the IDEA middleware and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdeaError {
    /// A node id was not part of the topology/engine.
    UnknownNode(NodeId),
    /// An object id had no replica on the queried node.
    UnknownObject(ObjectId),
    /// A writer issued an update with a non-consecutive sequence number.
    NonConsecutiveSeq {
        /// The offending writer.
        writer: WriterId,
        /// Sequence number the store expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
    /// A rollback target time preceded the retained log prefix.
    RollbackBeyondLog,
    /// An API parameter was outside its documented domain.
    InvalidParameter(&'static str),
    /// A configuration field was outside its documented domain
    /// (surfaced by `IdeaConfig::validate` before a node is built).
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// The requested resolution found no updates to reconcile.
    NothingToResolve,
    /// An active resolution lost the call-for-attention race and was
    /// cancelled after back-off (§4.5.2).
    ResolutionContended,
    /// The engine was asked to run past its configured horizon.
    HorizonExceeded,
}

impl fmt::Display for IdeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdeaError::UnknownNode(n) => write!(f, "unknown node {n}"),
            IdeaError::UnknownObject(o) => write!(f, "no replica of {o} on this node"),
            IdeaError::NonConsecutiveSeq { writer, expected, got } => write!(
                f,
                "writer {writer} skipped sequence numbers (expected {expected}, got {got})"
            ),
            IdeaError::RollbackBeyondLog => {
                write!(f, "rollback target precedes the retained log prefix")
            }
            IdeaError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            IdeaError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field} {reason}")
            }
            IdeaError::NothingToResolve => write!(f, "no inconsistency to resolve"),
            IdeaError::ResolutionContended => {
                write!(f, "active resolution cancelled: another initiator is running")
            }
            IdeaError::HorizonExceeded => write!(f, "simulation horizon exceeded"),
        }
    }
}

impl std::error::Error for IdeaError {}

/// The wire-facing error type: what a [`IdeaError`] (or a transport
/// failure) looks like when it must cross a process boundary.
///
/// Unlike [`IdeaError`] — whose `&'static str` fields cannot be
/// deserialized — every variant owns its data, so a server can encode the
/// error into a response frame and a client can reconstruct it. The
/// protocol-level variants mirror [`IdeaError`] one-for-one (see
/// `From<IdeaError>`); the last four exist only at the service boundary:
///
/// * [`WireError::EngineUnavailable`] — the executor behind the service is
///   gone (a stopped engine, a dead shard worker) — the condition that used
///   to panic in `EngineHandle::execute`;
/// * [`WireError::ServerAtCapacity`] — the server refused the connection
///   at admission (its connection cap is reached);
/// * [`WireError::Transport`] — an I/O failure on the connection;
/// * [`WireError::Protocol`] — a malformed or version-incompatible frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireError {
    /// A node id was not part of the deployment.
    UnknownNode(NodeId),
    /// An object id had no replica on the addressed node.
    UnknownObject(ObjectId),
    /// A writer issued an update with a non-consecutive sequence number.
    NonConsecutiveSeq {
        /// The offending writer.
        writer: WriterId,
        /// Sequence number the store expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
    /// A rollback target time preceded the retained log prefix.
    RollbackBeyondLog,
    /// An API parameter was outside its documented domain.
    InvalidParameter(String),
    /// A configuration field was outside its documented domain.
    InvalidConfig {
        /// The offending configuration field.
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// The requested resolution found no updates to reconcile.
    NothingToResolve,
    /// An active resolution lost the call-for-attention race.
    ResolutionContended,
    /// The engine was asked to run past its configured horizon.
    HorizonExceeded,
    /// The executor behind the service can no longer take commands (engine
    /// stopped, worker thread gone). Surfaced as a typed rejection instead
    /// of the panic the in-process engines used to raise.
    EngineUnavailable(String),
    /// The server refused the connection at admission: it is already at
    /// its configured connection cap. Unlike [`WireError::Transport`], the
    /// condition is typed — a client can distinguish "server full, retry
    /// later" from a dead or unreachable server.
    ServerAtCapacity {
        /// The cap the server was configured with.
        limit: u32,
    },
    /// The connection to the service failed (I/O error, disconnect).
    Transport(String),
    /// A frame could not be decoded (bad magic, unknown version, truncated
    /// or out-of-domain payload).
    Protocol(String),
}

impl From<IdeaError> for WireError {
    fn from(e: IdeaError) -> Self {
        match e {
            IdeaError::UnknownNode(n) => WireError::UnknownNode(n),
            IdeaError::UnknownObject(o) => WireError::UnknownObject(o),
            IdeaError::NonConsecutiveSeq { writer, expected, got } => {
                WireError::NonConsecutiveSeq { writer, expected, got }
            }
            IdeaError::RollbackBeyondLog => WireError::RollbackBeyondLog,
            IdeaError::InvalidParameter(what) => WireError::InvalidParameter(what.to_string()),
            IdeaError::InvalidConfig { field, reason } => {
                WireError::InvalidConfig { field: field.to_string(), reason: reason.to_string() }
            }
            IdeaError::NothingToResolve => WireError::NothingToResolve,
            IdeaError::ResolutionContended => WireError::ResolutionContended,
            IdeaError::HorizonExceeded => WireError::HorizonExceeded,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownNode(n) => write!(f, "unknown node {n}"),
            WireError::UnknownObject(o) => write!(f, "no replica of {o} on this node"),
            WireError::NonConsecutiveSeq { writer, expected, got } => write!(
                f,
                "writer {writer} skipped sequence numbers (expected {expected}, got {got})"
            ),
            WireError::RollbackBeyondLog => {
                write!(f, "rollback target precedes the retained log prefix")
            }
            WireError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            WireError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field} {reason}")
            }
            WireError::NothingToResolve => write!(f, "no inconsistency to resolve"),
            WireError::ResolutionContended => {
                write!(f, "active resolution cancelled: another initiator is running")
            }
            WireError::HorizonExceeded => write!(f, "simulation horizon exceeded"),
            WireError::EngineUnavailable(what) => write!(f, "engine unavailable: {what}"),
            WireError::ServerAtCapacity { limit } => {
                write!(f, "server at its connection capacity ({limit})")
            }
            WireError::Transport(what) => write!(f, "transport failure: {what}"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = IdeaError::NonConsecutiveSeq { writer: WriterId(3), expected: 5, got: 9 };
        let s = e.to_string();
        assert!(s.contains("w3"));
        assert!(s.contains('5'));
        assert!(s.contains('9'));
        assert!(IdeaError::UnknownNode(NodeId(1)).to_string().contains("n1"));
        assert!(IdeaError::UnknownObject(ObjectId(2)).to_string().contains("obj2"));
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = IdeaError::InvalidConfig { field: "store_shards", reason: "must be in 1..=256" };
        let s = e.to_string();
        assert!(s.contains("store_shards"));
        assert!(s.contains("1..=256"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&IdeaError::RollbackBeyondLog);
        takes_err(&WireError::Transport("connection reset".into()));
    }

    /// Every protocol-level `IdeaError` maps onto a `WireError` rendering
    /// the *same* message, so error text is identical in-process and remote.
    #[test]
    fn wire_error_display_matches_idea_error() {
        let cases = [
            IdeaError::UnknownNode(NodeId(3)),
            IdeaError::UnknownObject(ObjectId(9)),
            IdeaError::NonConsecutiveSeq { writer: WriterId(1), expected: 2, got: 5 },
            IdeaError::RollbackBeyondLog,
            IdeaError::InvalidParameter("hint must be within [0, 1]"),
            IdeaError::InvalidConfig { field: "store_shards", reason: "must be in 1..=256" },
            IdeaError::NothingToResolve,
            IdeaError::ResolutionContended,
            IdeaError::HorizonExceeded,
        ];
        for e in cases {
            let wire: WireError = e.clone().into();
            assert_eq!(wire.to_string(), e.to_string(), "{e:?}");
        }
    }
}
