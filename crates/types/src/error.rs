//! Workspace-wide error type.

use crate::ids::{NodeId, ObjectId, WriterId};
use std::fmt;

/// Errors surfaced by the IDEA middleware and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdeaError {
    /// A node id was not part of the topology/engine.
    UnknownNode(NodeId),
    /// An object id had no replica on the queried node.
    UnknownObject(ObjectId),
    /// A writer issued an update with a non-consecutive sequence number.
    NonConsecutiveSeq {
        /// The offending writer.
        writer: WriterId,
        /// Sequence number the store expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
    /// A rollback target time preceded the retained log prefix.
    RollbackBeyondLog,
    /// An API parameter was outside its documented domain.
    InvalidParameter(&'static str),
    /// A configuration field was outside its documented domain
    /// (surfaced by `IdeaConfig::validate` before a node is built).
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// The requested resolution found no updates to reconcile.
    NothingToResolve,
    /// An active resolution lost the call-for-attention race and was
    /// cancelled after back-off (§4.5.2).
    ResolutionContended,
    /// The engine was asked to run past its configured horizon.
    HorizonExceeded,
}

impl fmt::Display for IdeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdeaError::UnknownNode(n) => write!(f, "unknown node {n}"),
            IdeaError::UnknownObject(o) => write!(f, "no replica of {o} on this node"),
            IdeaError::NonConsecutiveSeq { writer, expected, got } => write!(
                f,
                "writer {writer} skipped sequence numbers (expected {expected}, got {got})"
            ),
            IdeaError::RollbackBeyondLog => {
                write!(f, "rollback target precedes the retained log prefix")
            }
            IdeaError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            IdeaError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field} {reason}")
            }
            IdeaError::NothingToResolve => write!(f, "no inconsistency to resolve"),
            IdeaError::ResolutionContended => {
                write!(f, "active resolution cancelled: another initiator is running")
            }
            IdeaError::HorizonExceeded => write!(f, "simulation horizon exceeded"),
        }
    }
}

impl std::error::Error for IdeaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = IdeaError::NonConsecutiveSeq { writer: WriterId(3), expected: 5, got: 9 };
        let s = e.to_string();
        assert!(s.contains("w3"));
        assert!(s.contains('5'));
        assert!(s.contains('9'));
        assert!(IdeaError::UnknownNode(NodeId(1)).to_string().contains("n1"));
        assert!(IdeaError::UnknownObject(ObjectId(2)).to_string().contains("obj2"));
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = IdeaError::InvalidConfig { field: "store_shards", reason: "must be in 1..=256" };
        let s = e.to_string();
        assert!(s.contains("store_shards"));
        assert!(s.contains("1..=256"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&IdeaError::RollbackBeyondLog);
    }
}
