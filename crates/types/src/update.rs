//! Updates: the unit of mutation on a replicated object.
//!
//! Every write issued by an application becomes an [`Update`]. Updates carry
//! the writer identity and a per-writer sequence number (together the unique
//! [`UpdateId`]), the issue timestamp used for staleness accounting, and a
//! signed *metadata delta* feeding the paper's "critical meta-data" column of
//! the extended version vector (§4.4.1): the ASCII sum of recent strokes for
//! the white board, the sale price for the booking system.

use crate::ids::{ObjectId, WriterId};
use crate::time::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identity of an update: writer plus per-writer sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UpdateId {
    /// The writer that issued the update.
    pub writer: WriterId,
    /// Per-writer sequence number, starting at 1 (matching the version-vector
    /// counter: an update with `seq == k` is the writer's k-th update).
    pub seq: u64,
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.writer, self.seq)
    }
}

/// Application payload carried by an update.
///
/// IDEA itself treats payloads as opaque; applications encode what they need.
/// The two emulated applications of the paper are given dedicated variants so
/// examples and tests stay readable without an extra codec layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdatePayload {
    /// Raw bytes, for applications outside the two emulated ones.
    Opaque(#[serde(with = "serde_bytes_compat")] Bytes),
    /// A white-board stroke: freehand text drawn at a board position.
    Stroke {
        /// Horizontal board coordinate.
        x: u16,
        /// Vertical board coordinate.
        y: u16,
        /// The drawn text (its ASCII sum contributes to the metadata value).
        text: String,
    },
    /// An airline booking: seats sold at a price (in cents).
    Booking {
        /// Flight identifier within the booking system.
        flight: u32,
        /// Number of seats sold by this booking.
        seats: u32,
        /// Total price of the booking, in cents; feeds the metadata value.
        price_cents: i64,
    },
}

/// Serde adapter so `bytes::Bytes` can ride inside the payload enum.
// Only referenced from the `#[serde(with)]` attribute, which the offline
// serde stub's no-op derives never expand — hence the dead-code allowance.
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

impl UpdatePayload {
    /// An empty opaque payload — convenient for metadata-only updates and
    /// synthetic workloads.
    pub fn none() -> Self {
        UpdatePayload::Opaque(Bytes::new())
    }

    /// Approximate wire size of the payload in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            UpdatePayload::Opaque(b) => b.len(),
            UpdatePayload::Stroke { text, .. } => 4 + text.len(),
            UpdatePayload::Booking { .. } => 16,
        }
    }
}

/// A single write operation on a replicated object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Update {
    /// The shared object being mutated.
    pub object: ObjectId,
    /// Unique identity (writer + per-writer sequence).
    pub id: UpdateId,
    /// Virtual timestamp at which the writer issued the update. The paper
    /// assumes clocks disciplined to within seconds (§4.4.1); `idea-clock`
    /// models the residual skew.
    pub at: SimTime,
    /// Signed change to the object's critical metadata value.
    pub meta_delta: i64,
    /// Application payload.
    pub payload: UpdatePayload,
}

impl Update {
    /// Convenience constructor for an opaque-payload update.
    pub fn opaque(
        object: ObjectId,
        writer: WriterId,
        seq: u64,
        at: SimTime,
        meta_delta: i64,
    ) -> Self {
        Update {
            object,
            id: UpdateId { writer, seq },
            at,
            meta_delta,
            payload: UpdatePayload::Opaque(Bytes::new()),
        }
    }

    /// The writer that issued this update.
    #[inline]
    pub fn writer(&self) -> WriterId {
        self.id.writer
    }

    /// The per-writer sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.id.seq
    }

    /// Approximate wire size of the whole update (header + payload).
    pub fn wire_size(&self) -> usize {
        // object(8) + writer(4) + seq(8) + time(8) + delta(8)
        36 + self.payload.wire_size()
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}[{}]", self.id, self.object, self.at)
    }
}

/// Orders updates by issue time, breaking ties by update id. This is the
/// canonical "happened earlier" order used when replaying merged logs.
pub fn chronological(a: &Update, b: &Update) -> std::cmp::Ordering {
    a.at.cmp(&b.at).then_with(|| a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn upd(writer: u32, seq: u64, at_us: u64) -> Update {
        Update::opaque(ObjectId(1), WriterId(writer), seq, SimTime(at_us), 1)
    }

    #[test]
    fn update_id_display() {
        let u = upd(3, 7, 100);
        assert_eq!(u.id.to_string(), "w3#7");
    }

    #[test]
    fn chronological_orders_by_time_then_id() {
        let a = upd(1, 1, 100);
        let b = upd(2, 1, 100);
        let c = upd(1, 2, 200);
        assert_eq!(chronological(&a, &b), std::cmp::Ordering::Less); // tie on time, w1 < w2
        assert_eq!(chronological(&b, &c), std::cmp::Ordering::Less);
        assert_eq!(chronological(&a, &a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        let base = upd(1, 1, 0).wire_size();
        let stroke = Update {
            payload: UpdatePayload::Stroke { x: 1, y: 2, text: "hello".into() },
            ..upd(1, 1, 0)
        };
        assert_eq!(stroke.wire_size(), base + 4 + 5);
        let booking = Update {
            payload: UpdatePayload::Booking { flight: 9, seats: 2, price_cents: 45_000 },
            ..upd(1, 1, 0)
        };
        assert_eq!(booking.wire_size(), base + 16);
    }

    #[test]
    fn accessors() {
        let u = upd(5, 9, 10);
        assert_eq!(u.writer(), WriterId(5));
        assert_eq!(u.seq(), 9);
    }

    proptest! {
        #[test]
        fn chronological_is_total_and_antisymmetric(
            w1 in 0u32..8, s1 in 1u64..100, t1 in 0u64..1_000,
            w2 in 0u32..8, s2 in 1u64..100, t2 in 0u64..1_000,
        ) {
            let a = upd(w1, s1, t1);
            let b = upd(w2, s2, t2);
            let ab = chronological(&a, &b);
            let ba = chronological(&b, &a);
            prop_assert_eq!(ab, ba.reverse());
            if ab == std::cmp::Ordering::Equal {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(a.at, b.at);
            }
        }
    }
}
