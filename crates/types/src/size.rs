//! Message-size accounting model.
//!
//! The paper's Table-3 bandwidth estimate "assume\[s\] that each packet has
//! size of 1KB". [`MessageSizeModel`] lets experiments either adopt that
//! flat assumption or account actual serialized sizes, so the Formula-4
//! optimal-rate derivation (`b · x% / c`) can be replayed under both.

use serde::{Deserialize, Serialize};

/// How to charge bytes for a protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MessageSizeModel {
    /// Every message costs a flat number of bytes (paper default: 1024).
    Flat(u64),
    /// Messages are charged `header + payload` bytes, where the payload size
    /// is reported by the message itself.
    Accounted {
        /// Fixed per-message header overhead in bytes.
        header: u64,
    },
}

impl MessageSizeModel {
    /// The paper's flat 1 KB assumption.
    pub const PAPER_1KB: MessageSizeModel = MessageSizeModel::Flat(1024);

    /// Bytes charged for a message whose self-reported payload is
    /// `payload_bytes` long.
    #[inline]
    pub fn charge(&self, payload_bytes: u64) -> u64 {
        match self {
            MessageSizeModel::Flat(b) => *b,
            MessageSizeModel::Accounted { header } => header + payload_bytes,
        }
    }

    /// Average bytes/second given a message count over a span of seconds.
    pub fn bandwidth_bps(&self, messages: u64, total_payload: u64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        let bytes = match self {
            MessageSizeModel::Flat(b) => b * messages,
            MessageSizeModel::Accounted { header } => header * messages + total_payload,
        };
        bytes as f64 * 8.0 / secs
    }
}

impl Default for MessageSizeModel {
    fn default() -> Self {
        MessageSizeModel::PAPER_1KB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_model_ignores_payload() {
        let m = MessageSizeModel::PAPER_1KB;
        assert_eq!(m.charge(0), 1024);
        assert_eq!(m.charge(10_000), 1024);
    }

    #[test]
    fn accounted_model_adds_header() {
        let m = MessageSizeModel::Accounted { header: 40 };
        assert_eq!(m.charge(60), 100);
    }

    #[test]
    fn paper_table3_bandwidth_is_minimal() {
        // 168 messages of 1KB over 100s = 1.68 KB/s = 13.44 kbit/s.
        let m = MessageSizeModel::PAPER_1KB;
        let bps = m.bandwidth_bps(168, 0, 100.0);
        assert!((bps - 13_762.56).abs() < 1.0, "got {bps}");
        // Far below even a 56 kbit/s dial-up link.
        assert!(bps < 56_000.0);
    }

    #[test]
    fn zero_time_yields_zero_bandwidth() {
        assert_eq!(MessageSizeModel::PAPER_1KB.bandwidth_bps(100, 0, 0.0), 0.0);
    }
}
