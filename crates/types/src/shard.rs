//! Shard identity and the object → shard routing hash.
//!
//! Replica stores, per-object protocol state and the threaded engine's
//! per-node mailboxes are all partitioned by the *same* function of the
//! [`ObjectId`], so "which shard owns object X" has exactly one answer
//! everywhere in the system. The function must be stable across runs (it
//! participates in deterministic simulation) and cheap (it sits on every
//! message-routing hot path), so it is a fixed SplitMix64 finaliser rather
//! than anything keyed or configurable.

use crate::ids::ObjectId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of one store/runtime shard within a node.
///
/// Shards are dense indices `0..S`; `S` is a per-node deployment choice
/// (`IdeaConfig::store_shards` in `idea-core`, `ThreadedConfig::shards` in
/// `idea-net`) and every layer routing by object must agree on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard owning `object` among `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[inline]
    pub fn of(object: ObjectId, shards: usize) -> ShardId {
        assert!(shards > 0, "shard count must be positive");
        ShardId((shard_hash(object) % shards as u64) as u32)
    }

    /// Returns the raw index, for indexing dense per-shard tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The stable 64-bit mix behind [`ShardId::of`] (SplitMix64 finaliser).
///
/// Object ids are often dense small integers; taking them modulo `S`
/// directly would stripe consecutive objects across shards in lockstep with
/// any workload periodicity, so they are mixed first.
#[inline]
pub fn shard_hash(object: ObjectId) -> u64 {
    let mut z = object.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_across_calls() {
        for obj in 0..64u64 {
            let a = ShardId::of(ObjectId(obj), 8);
            let b = ShardId::of(ObjectId(obj), 8);
            assert_eq!(a, b);
            assert!(a.index() < 8);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for obj in [0u64, 1, 17, u64::MAX] {
            assert_eq!(ShardId::of(ObjectId(obj), 1), ShardId(0));
        }
    }

    #[test]
    fn hash_spreads_dense_ids() {
        // Dense object ids must not all land on one shard.
        let mut counts = [0usize; 4];
        for obj in 0..256u64 {
            counts[ShardId::of(ObjectId(obj), 4).index()] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 32, "shard {s} got only {c}/256 dense objects");
        }
    }

    #[test]
    fn hash_is_pinned() {
        // The routing function is part of the wire-visible behaviour of the
        // sharded runtime (mailbox selection); pin its values so a silent
        // change cannot reshuffle ownership between releases.
        assert_eq!(shard_hash(ObjectId(0)), 16294208416658607535);
        assert_eq!(shard_hash(ObjectId(1)), 10451216379200822465);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        let _ = ShardId::of(ObjectId(1), 0);
    }

    #[test]
    fn display_form() {
        assert_eq!(ShardId(3).to_string(), "s3");
    }
}
