//! Core identifiers, virtual time, updates and shared value types for the
//! IDEA reproduction.
//!
//! Every other crate in the workspace builds on these definitions. The types
//! are deliberately small, `Copy` where possible, and deterministic in their
//! `Ord`/`Hash` behaviour so that simulation runs are reproducible.
//!
//! The paper ("IDEA: An Infrastructure for Detection-based Adaptive
//! Consistency Control in Replicated Services", Lu, Lu & Jiang, HPDC 2007)
//! works in terms of *nodes* holding *replicas* of shared *objects* (files),
//! mutated by *writers* (users). [`NodeId`], [`ObjectId`], [`WriterId`] and
//! [`Update`] mirror that vocabulary directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod level;
pub mod shard;
pub mod size;
pub mod time;
pub mod update;

pub use error::{IdeaError, WireError};
pub use ids::{NodeId, ObjectId, WriterId};
pub use level::{ConsistencyLevel, ErrorTriple};
pub use shard::{shard_hash, ShardId};
pub use size::MessageSizeModel;
pub use time::{SimDuration, SimTime};
pub use update::{Update, UpdateId, UpdatePayload};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, IdeaError>;
