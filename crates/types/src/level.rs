//! Consistency-level value types shared across the workspace.
//!
//! The paper quantifies inconsistency with the TACT-style triple
//! `<numerical error, order error, staleness>` (§4.4) and collapses it to a
//! single percentage ("such as 90%") via Formula 1. [`ErrorTriple`] carries
//! the raw triple; [`ConsistencyLevel`] is the collapsed number, clamped to
//! `[0, 1]`.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The TACT error triple for one replica relative to a reference state.
///
/// All three members are non-negative; zero in all members means the replica
/// is identical to the reference consistent state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorTriple {
    /// Gap between the replica's critical-metadata value and the reference's
    /// (e.g. difference of total sale price). `|meta_ref - meta_replica|`.
    pub numerical: f64,
    /// Number of updates out of place: updates the replica misses plus extra
    /// updates the reference has not (yet) sanctioned. In the §4.4.1 worked
    /// example replica *a* "misses one update and has two extra ones", so its
    /// order error is 3.
    pub order: f64,
    /// Time since the replica was last identical to a prefix of the
    /// reference: `latest_ref_update_time - last_consistent_time`.
    pub staleness: SimDuration,
}

impl ErrorTriple {
    /// The all-zero triple (replica == reference).
    pub const ZERO: ErrorTriple =
        ErrorTriple { numerical: 0.0, order: 0.0, staleness: SimDuration::ZERO };

    /// Builds a triple from raw parts.
    pub fn new(numerical: f64, order: f64, staleness: SimDuration) -> Self {
        debug_assert!(numerical >= 0.0 && order >= 0.0);
        ErrorTriple { numerical, order, staleness }
    }

    /// True when all members are zero.
    pub fn is_zero(&self) -> bool {
        self.numerical == 0.0 && self.order == 0.0 && self.staleness.is_zero()
    }

    /// Component-wise maximum of two triples.
    pub fn component_max(&self, other: &ErrorTriple) -> ErrorTriple {
        ErrorTriple {
            numerical: self.numerical.max(other.numerical),
            order: self.order.max(other.order),
            staleness: self.staleness.max(other.staleness),
        }
    }
}

impl fmt::Display for ErrorTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<num {:.2}, order {:.2}, stale {}>", self.numerical, self.order, self.staleness)
    }
}

/// A consistency level in `[0, 1]`; `1.0` is perfectly consistent.
///
/// Construction clamps, so downstream arithmetic can stay unchecked. Ordering
/// is total (levels are never NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ConsistencyLevel(f64);

impl ConsistencyLevel {
    /// Perfect consistency.
    pub const PERFECT: ConsistencyLevel = ConsistencyLevel(1.0);
    /// Total inconsistency.
    pub const WORST: ConsistencyLevel = ConsistencyLevel(0.0);

    /// Builds a level, clamping into `[0, 1]` and mapping NaN to 0.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            ConsistencyLevel(0.0)
        } else {
            ConsistencyLevel(v.clamp(0.0, 1.0))
        }
    }

    /// The raw value in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value as a percentage in `[0, 100]`.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True when this level satisfies (is at least) `floor`.
    #[inline]
    pub fn satisfies(self, floor: ConsistencyLevel) -> bool {
        self.0 >= floor.0
    }

    /// The lower of two levels.
    pub fn min(self, other: ConsistencyLevel) -> ConsistencyLevel {
        ConsistencyLevel(self.0.min(other.0))
    }

    /// The higher of two levels.
    pub fn max(self, other: ConsistencyLevel) -> ConsistencyLevel {
        ConsistencyLevel(self.0.max(other.0))
    }
}

impl Eq for ConsistencyLevel {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for ConsistencyLevel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are clamped and never NaN, so partial_cmp is total.
        self.0.partial_cmp(&other.0).expect("consistency levels are never NaN")
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

impl From<f64> for ConsistencyLevel {
    fn from(v: f64) -> Self {
        ConsistencyLevel::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamping() {
        assert_eq!(ConsistencyLevel::new(1.5), ConsistencyLevel::PERFECT);
        assert_eq!(ConsistencyLevel::new(-0.2), ConsistencyLevel::WORST);
        assert_eq!(ConsistencyLevel::new(f64::NAN), ConsistencyLevel::WORST);
        assert_eq!(ConsistencyLevel::new(0.9).value(), 0.9);
    }

    #[test]
    fn satisfies_floor() {
        let l = ConsistencyLevel::new(0.95);
        assert!(l.satisfies(ConsistencyLevel::new(0.95)));
        assert!(l.satisfies(ConsistencyLevel::new(0.90)));
        assert!(!l.satisfies(ConsistencyLevel::new(0.96)));
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(ConsistencyLevel::new(0.845).to_string(), "84.5%");
        assert_eq!(ErrorTriple::ZERO.to_string(), "<num 0.00, order 0.00, stale 0us>");
    }

    #[test]
    fn triple_zero_detection() {
        assert!(ErrorTriple::ZERO.is_zero());
        let t = ErrorTriple::new(1.0, 0.0, SimDuration::ZERO);
        assert!(!t.is_zero());
    }

    #[test]
    fn triple_component_max() {
        let a = ErrorTriple::new(1.0, 5.0, SimDuration::from_secs(1));
        let b = ErrorTriple::new(3.0, 2.0, SimDuration::from_secs(4));
        let m = a.component_max(&b);
        assert_eq!(m.numerical, 3.0);
        assert_eq!(m.order, 5.0);
        assert_eq!(m.staleness, SimDuration::from_secs(4));
    }

    #[test]
    fn ordering_is_total() {
        let mut v =
            [ConsistencyLevel::new(0.5), ConsistencyLevel::new(0.95), ConsistencyLevel::new(0.0)];
        v.sort();
        assert_eq!(v[0], ConsistencyLevel::WORST);
        assert_eq!(v[2], ConsistencyLevel::new(0.95));
    }

    proptest! {
        #[test]
        fn new_always_in_unit_interval(v in prop::num::f64::ANY) {
            let l = ConsistencyLevel::new(v);
            prop_assert!((0.0..=1.0).contains(&l.value()));
        }

        #[test]
        fn min_max_consistent(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let la = ConsistencyLevel::new(a);
            let lb = ConsistencyLevel::new(b);
            prop_assert_eq!(la.min(lb).value(), a.min(b));
            prop_assert_eq!(la.max(lb).value(), a.max(b));
            prop_assert!(la.max(lb).satisfies(la.min(lb)));
        }
    }
}
