//! Schedule exploration: shrinking a failing schedule to a minimal
//! reproducer.
//!
//! The shrinker is greedy delta debugging over the event list: try to
//! drop ever-smaller chunks, keeping any candidate that still fails.
//! Because every subsequence of a schedule is itself a valid schedule
//! (the runner tolerates orphaned events), no repair pass is needed. The
//! result is 1-minimal — removing any single remaining event makes the
//! failure disappear.

use crate::schedule::Scenario;

/// Shrinks `scenario` against `still_fails`, which must return `true`
/// when a candidate schedule still exhibits the failure (typically: build
/// a fresh fleet from the same spec, run the candidate, inspect the
/// report). `still_fails` is assumed deterministic — the whole harness
/// exists to make it so.
///
/// Returns the shrunk scenario and the number of `still_fails` probes
/// spent. The input is returned unchanged if it does not fail at all.
pub fn minimize(
    scenario: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
) -> (Scenario, usize) {
    let mut probes = 1;
    if !still_fails(scenario) {
        return (scenario.clone(), probes);
    }
    let mut cur = scenario.clone();
    let mut chunk = (cur.events.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.events.len() {
            let end = (i + chunk).min(cur.events.len());
            let mut cand = cur.clone();
            cand.events.drain(i..end);
            probes += 1;
            if still_fails(&cand) {
                cur = cand;
                progressed = true;
                // Do not advance `i`: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    cur.name = format!("{}-min", scenario.name);
    (cur, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, Scenario};

    /// A synthetic failure predicate: the schedule "fails" when it still
    /// contains a crash of node 2 AND any partition event — the minimal
    /// reproducer is exactly those two events.
    fn fails(sc: &Scenario) -> bool {
        let crash = sc.events.iter().any(|e| matches!(e.event, FaultEvent::Crash { node: 2 }));
        let part = sc.events.iter().any(|e| matches!(e.event, FaultEvent::Partition { .. }));
        crash && part
    }

    #[test]
    fn shrinks_to_the_minimal_reproducer() {
        // Hunt through random schedules for one that fails; the generator
        // is deterministic, so this loop is too.
        let sc = (0..200)
            .map(|seed| Scenario::random(seed, 5, 60))
            .find(fails)
            .expect("some random schedule crashes node 2 under a partition");
        let before = sc.events.len();
        let (min, probes) = minimize(&sc, fails);
        assert!(fails(&min), "shrinking must preserve the failure");
        assert_eq!(min.events.len(), 2, "1-minimal reproducer: crash + partition");
        assert!(min.events.len() < before);
        assert!(probes > 1);
        assert!(min.is_monotonic());
        assert!(min.name.ends_with("-min"));
    }

    #[test]
    fn passing_schedules_come_back_unchanged() {
        let sc = Scenario::random(1, 4, 10);
        let (out, probes) = minimize(&sc, |_| false);
        assert_eq!(out.events, sc.events);
        assert_eq!(probes, 1);
    }
}
