//! Executes a [`Scenario`] against a simulated fleet, checking invariants
//! after every event and driving the healing epilogue to convergence.
//!
//! The runner owns a [`SimEngine`] plus a *rebuild factory*: crashing a
//! node swaps a replacement in at recovery time, built either through the
//! host's WAL-replay path (`via_wal`) or from scratch. All fault knobs go
//! through the engine's deterministic hooks, so a fixed `(fleet seed,
//! scenario)` pair replays bit-identically — same per-event state-hash
//! trajectory, same message totals.

use crate::oracle::{converged, Violation};
use crate::schedule::{FaultEvent, Scenario, WorkOp};
use idea_apps::{BookingServer, FleetInvariant};
use idea_core::IdeaMsg;
use idea_net::{Context, Proto, Quiescence, SimEngine};
use idea_types::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// What the fault harness needs from an application under test, beyond
/// [`Proto`]: a content hash, a workload step, and the recovery hooks.
pub trait FaultHost: Proto {
    /// Content hash of the replicated state (equality across the fleet is
    /// the convergence oracle).
    fn state_hash(&self) -> u64;

    /// Performs the host's `op`-th workload operation.
    fn apply_op(&mut self, op: u64, ctx: &mut dyn Context<Self::Msg>);

    /// Forces an on-demand resolution round.
    fn demand_resolution(&mut self, ctx: &mut dyn Context<Self::Msg>);

    /// Pulls missed updates from `peer` after a restart.
    fn rejoin(&mut self, peer: NodeId, ctx: &mut dyn Context<Self::Msg>);
}

impl FaultHost for BookingServer {
    fn state_hash(&self) -> u64 {
        self.idea().state_hash()
    }

    fn apply_op(&mut self, op: u64, ctx: &mut dyn Context<IdeaMsg>) {
        // Every op is a one-seat sale attempt at an op-determined price;
        // rejections (sold out, locked, escrow-spent) are legitimate
        // outcomes, not errors.
        let _ = self.try_book(1, 5_000 + (op as i64 % 97) * 100, ctx);
    }

    fn demand_resolution(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        BookingServer::demand_resolution(self, ctx);
    }

    fn rejoin(&mut self, peer: NodeId, ctx: &mut dyn Context<IdeaMsg>) {
        self.idea_mut().rejoin_from(peer, ctx);
    }
}

/// One row of the replay trace: the fleet's per-node state hashes right
/// after a scheduled event was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Short label of the applied event.
    pub label: String,
    /// `state_hash()` of every node, in index order.
    pub hashes: Vec<u64>,
}

/// The outcome of running one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Per-event state-hash snapshots, in schedule order.
    pub trace: Vec<TraceStep>,
    /// Every invariant violation observed, in schedule order.
    pub violations: Vec<Violation>,
    /// Whether the post-heal fleet drained its queue inside the budget.
    pub quiescent: bool,
    /// Whether every node ended on the same state hash.
    pub converged: bool,
    /// Final per-node state hashes.
    pub final_hashes: Vec<u64>,
    /// Total messages the engine delivered or dropped across the run.
    pub messages: u64,
    /// Messages dropped by loss/partition injection.
    pub dropped: u64,
}

impl RunReport {
    /// True when the run satisfied every oracle: no invariant violations
    /// and a quiescent, converged fleet after the healing epilogue.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.quiescent && self.converged
    }

    /// The replay identity: two runs of the same scenario on identically
    /// seeded fleets must agree on this entire tuple.
    pub fn replay_key(&self) -> (&[TraceStep], &[u64], u64, u64) {
        (&self.trace, &self.final_hashes, self.messages, self.dropped)
    }
}

/// Drives scenarios against a fleet of [`FaultHost`] nodes.
pub struct FaultRunner<P: FaultHost> {
    eng: SimEngine<P>,
    rebuild: Box<dyn Fn(NodeId, bool) -> P>,
    invariants: Vec<Box<dyn FleetInvariant<P>>>,
    down: Vec<bool>,
}

impl<P: FaultHost> FaultRunner<P> {
    /// Wraps an engine. `rebuild(node, via_wal)` must produce the
    /// replacement host for a recovery — through the WAL-replay path when
    /// `via_wal` (or fall back to fresh when the fleet runs without
    /// durability).
    pub fn new(eng: SimEngine<P>, rebuild: Box<dyn Fn(NodeId, bool) -> P>) -> Self {
        let n = eng.len();
        FaultRunner { eng, rebuild, invariants: Vec::new(), down: vec![false; n] }
    }

    /// Registers a fleet invariant, checked after every scheduled event
    /// and once more after the healing epilogue.
    pub fn check(mut self, inv: impl FleetInvariant<P> + 'static) -> Self {
        self.invariants.push(Box::new(inv));
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &SimEngine<P> {
        &self.eng
    }

    /// Mutable access to the wrapped engine (post-run inspection drives).
    pub fn engine_mut(&mut self) -> &mut SimEngine<P> {
        &mut self.eng
    }

    /// Runs the scenario to completion: every event at its scheduled
    /// time, then the healing epilogue (all faults cleared, all nodes
    /// recovered, one demanded resolution, `settle` of virtual time) and
    /// a bounded quiescence drain.
    pub fn run(&mut self, scenario: &Scenario) -> RunReport {
        assert!(scenario.is_monotonic(), "schedule times must be non-decreasing");
        let mut trace = Vec::with_capacity(scenario.events.len());
        let mut violations = Vec::new();
        for sch in &scenario.events {
            self.eng.run_until(sch.at);
            self.apply(&sch.event);
            let hashes = self.hashes();
            self.check_invariants(sch.at, &mut violations);
            trace.push(TraceStep { at: sch.at, label: label(&sch.event), hashes });
        }

        // Healing epilogue: clear every fault layer, bring the dead back
        // (through their WAL), reconcile, settle.
        self.eng.heal_all();
        self.eng.clear_link_loss();
        self.eng.set_reorder_window(SimDuration::ZERO);
        self.eng.set_duplicate_rate(0.0);
        for i in 0..self.eng.len() {
            self.eng.set_clock_skew(NodeId(i as u32), 0);
        }
        for i in 0..self.down.len() {
            if self.down[i] {
                self.recover(NodeId(i as u32), true);
            }
        }
        // Post-partition runbook: the temperature overlay of two healed
        // halves does not re-merge on its own (membership heats only on
        // *observed* updates, and resolution spans top members only), so
        // every node re-announces itself through the rejoin-by-delta
        // path — pull all suffixes into a hub, then the union back out.
        // Background rounds among still-stale subgroups race the runbook:
        // an `Inform` whose winner has not yet pulled the union re-drops
        // it (under `HighestIdWins` the highest id always wins, so it is
        // pushed to first). Repeat the pull/push cycle until the fleet
        // agrees — each pass is deterministic, so so is the pass count.
        let hub = NodeId(0);
        for _pass in 0..4 {
            for i in 1..self.eng.len() {
                let peer = NodeId(i as u32);
                self.eng.with_node(hub, |p, ctx| p.rejoin(peer, ctx));
                self.eng.run_for(SimDuration::from_secs(2));
            }
            for i in (1..self.eng.len()).rev() {
                let id = NodeId(i as u32);
                self.eng.with_node(id, |p, ctx| p.rejoin(hub, ctx));
                self.eng.run_for(SimDuration::from_secs(2));
            }
            if converged(&self.hashes()) {
                break;
            }
        }
        self.eng.with_node(hub, |p, ctx| p.demand_resolution(ctx));
        self.eng.run_for(scenario.settle);
        let limit = self.eng.now() + scenario.settle;
        let q = self.eng.run_until_quiescent_bounded(limit, SimEngine::<P>::DEFAULT_EVENT_BUDGET);
        let quiescent = matches!(q, Quiescence::Reached { .. });

        self.check_invariants(self.eng.now(), &mut violations);
        let final_hashes = self.hashes();
        RunReport {
            name: scenario.name.clone(),
            seed: scenario.seed,
            trace,
            violations,
            quiescent,
            converged: converged(&final_hashes),
            final_hashes,
            messages: self.eng.stats().total_messages(),
            dropped: self.eng.stats().dropped(),
        }
    }

    /// Applies one event. References that make no sense in the current
    /// fleet state (crash a down node, work a down node, out-of-range
    /// index) are silent no-ops — the tolerance the shrinker needs.
    fn apply(&mut self, event: &FaultEvent) {
        let n = self.eng.len() as u32;
        match event {
            FaultEvent::Partition { groups } => self.apply_partition(groups),
            FaultEvent::Heal => self.eng.heal_all(),
            FaultEvent::Loss { from, to, p } if *from < n && *to < n => {
                self.eng.set_link_loss(NodeId(*from), NodeId(*to), *p);
            }
            FaultEvent::Loss { .. } => {}
            FaultEvent::Reorder { window } => self.eng.set_reorder_window(*window),
            FaultEvent::Duplicate { p } => self.eng.set_duplicate_rate(*p),
            FaultEvent::Crash { node } if *node < n && !self.down[*node as usize] => {
                let id = NodeId(*node);
                self.eng.pause(id);
                self.eng.drop_parked(id);
                self.down[*node as usize] = true;
            }
            FaultEvent::Crash { .. } => {}
            FaultEvent::Recover { node, via_wal } if *node < n && self.down[*node as usize] => {
                self.recover(NodeId(*node), *via_wal);
            }
            FaultEvent::Recover { .. } => {}
            FaultEvent::ClockSkew { node, ppm } if *node < n => {
                self.eng.set_clock_skew(NodeId(*node), *ppm);
            }
            FaultEvent::ClockSkew { .. } => {}
            FaultEvent::Work(WorkOp::Apply { node, op })
                if *node < n && !self.down[*node as usize] =>
            {
                self.eng.with_node(NodeId(*node), |p, ctx| p.apply_op(*op, ctx));
            }
            FaultEvent::Work(WorkOp::DemandResolution { node })
                if *node < n && !self.down[*node as usize] =>
            {
                self.eng.with_node(NodeId(*node), |p, ctx| p.demand_resolution(ctx));
            }
            FaultEvent::Work(_) => {}
        }
    }

    /// Installs a partition layout: nodes in the same group talk, nodes
    /// in different groups (or listed nowhere) do not.
    fn apply_partition(&mut self, groups: &[Vec<u32>]) {
        self.eng.heal_all();
        let n = self.eng.len() as u32;
        let mut class: HashMap<u32, usize> = HashMap::new();
        for (g, members) in groups.iter().enumerate() {
            for m in members {
                class.insert(*m, g);
            }
        }
        // Unlisted nodes each get a unique singleton class.
        for i in 0..n {
            let next = groups.len() + i as usize;
            class.entry(i).or_insert(next);
        }
        for a in 0..n {
            for b in 0..n {
                if a != b && class[&a] != class[&b] {
                    self.eng.partition(NodeId(a), NodeId(b));
                }
            }
        }
    }

    fn recover(&mut self, id: NodeId, via_wal: bool) {
        // Messages that arrived while the node was dead die with it.
        self.eng.drop_parked(id);
        let replacement = (self.rebuild)(id, via_wal);
        *self.eng.node_mut(id) = replacement;
        self.eng.resume(id);
        self.eng.with_node(id, |p, ctx| p.on_start(ctx));
        self.down[id.index()] = false;
        // Rejoin from the lowest-indexed live peer, if any.
        let peer = (0..self.eng.len())
            .map(|i| NodeId(i as u32))
            .find(|p| *p != id && !self.down[p.index()]);
        if let Some(peer) = peer {
            self.eng.with_node(id, |p, ctx| p.rejoin(peer, ctx));
        }
    }

    fn hashes(&self) -> Vec<u64> {
        (0..self.eng.len()).map(|i| self.eng.node(NodeId(i as u32)).state_hash()).collect()
    }

    fn check_invariants(&self, at: SimTime, out: &mut Vec<Violation>) {
        if self.invariants.is_empty() {
            return;
        }
        let fleet: Vec<&P> = (0..self.eng.len()).map(|i| self.eng.node(NodeId(i as u32))).collect();
        for inv in &self.invariants {
            if let Err(detail) = inv.check(&fleet) {
                out.push(Violation { at, invariant: inv.name().to_string(), detail });
            }
        }
    }
}

/// Short human label for a trace row.
fn label(event: &FaultEvent) -> String {
    match event {
        FaultEvent::Partition { groups } => format!("partition{groups:?}"),
        FaultEvent::Heal => "heal".to_string(),
        FaultEvent::Loss { from, to, p } => format!("loss {from}->{to} p={p:.2}"),
        FaultEvent::Reorder { window } => format!("reorder {}us", window.as_micros()),
        FaultEvent::Duplicate { p } => format!("duplicate p={p:.2}"),
        FaultEvent::Crash { node } => format!("crash {node}"),
        FaultEvent::Recover { node, via_wal } => format!("recover {node} via_wal={via_wal}"),
        FaultEvent::ClockSkew { node, ppm } => format!("skew {node} {ppm}ppm"),
        FaultEvent::Work(WorkOp::Apply { node, op }) => format!("work {node} op={op}"),
        FaultEvent::Work(WorkOp::DemandResolution { node }) => format!("demand {node}"),
    }
}
