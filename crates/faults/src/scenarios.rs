//! The curated named-scenario suite — four adversarial schedules that each
//! aim at a different seam of the protocol, sized for the
//! [`crate::BookingFleetSpec::standard`] 4-node fleet.

use crate::schedule::{FaultEvent, Scenario, Scheduled, WorkOp};
use idea_types::{SimDuration, SimTime};

fn s(at_ms: u64, event: FaultEvent) -> Scheduled {
    Scheduled { at: SimTime::from_millis(at_ms), event }
}

fn work(node: u32, op: u64) -> FaultEvent {
    FaultEvent::Work(WorkOp::Apply { node, op })
}

fn demand(node: u32) -> FaultEvent {
    FaultEvent::Work(WorkOp::DemandResolution { node })
}

/// Split-brain write race: the fleet splits in two, both halves sell
/// aggressively past their stale global views, both halves resolve
/// internally, then the brain heals. Escrow must hold the capacity bound
/// throughout; resolution must converge the halves afterwards.
pub fn split_brain_write_race() -> Scenario {
    let mut ev = vec![s(1_000, FaultEvent::Partition { groups: vec![vec![0, 1], vec![2, 3]] })];
    for round in 0u64..3 {
        for node in 0u32..4 {
            ev.push(s(
                2_000 + round * 1_500 + node as u64 * 100,
                work(node, round * 4 + node as u64),
            ));
        }
    }
    ev.push(s(7_000, demand(0)));
    ev.push(s(7_100, demand(2)));
    ev.push(s(9_000, FaultEvent::Heal));
    ev.push(s(10_000, demand(0)));
    Scenario::named("split-brain-write-race", ev, SimDuration::from_secs(120))
}

/// Flapping link: node 0's connectivity comes and goes five times while
/// the whole fleet keeps selling, with loss, reordering and duplication
/// layered on during the flaps. Exercises retry paths and at-most-once
/// delivery assumptions.
pub fn flapping_link() -> Scenario {
    let mut ev = vec![
        s(500, FaultEvent::Reorder { window: SimDuration::from_millis(100) }),
        s(501, FaultEvent::Duplicate { p: 0.2 }),
    ];
    for flap in 0u64..5 {
        let base = 1_000 + flap * 4_000;
        ev.push(s(base, FaultEvent::Partition { groups: vec![vec![0], vec![1, 2, 3]] }));
        ev.push(s(base + 200, FaultEvent::Loss { from: 1, to: 2, p: 0.6 }));
        for node in 0u32..4 {
            ev.push(s(base + 1_000 + node as u64 * 100, work(node, flap * 4 + node as u64)));
        }
        ev.push(s(base + 2_000, FaultEvent::Heal));
        ev.push(s(base + 2_100, FaultEvent::Loss { from: 1, to: 2, p: 0.0 }));
        ev.push(s(base + 3_000, demand(flap as u32 % 4)));
    }
    Scenario::named("flapping-link", ev, SimDuration::from_secs(120))
}

/// Crash during resolution: a two-phase resolution round is demanded and
/// a participant is killed moments later, mid-round; the survivors keep
/// writing, then the victim recovers through its WAL and rejoins. The
/// round's locking and the recovery delta must both unwind cleanly.
pub fn crash_during_resolution() -> Scenario {
    let mut ev = Vec::new();
    for round in 0u64..2 {
        for node in 0u32..4 {
            ev.push(s(500 + round * 800 + node as u64 * 100, work(node, round * 4 + node as u64)));
        }
    }
    ev.push(s(3_000, demand(1)));
    ev.push(s(3_050, FaultEvent::Crash { node: 2 }));
    for node in [0u32, 1, 3] {
        ev.push(s(4_000 + node as u64 * 150, work(node, 100 + node as u64)));
    }
    ev.push(s(8_000, FaultEvent::Recover { node: 2, via_wal: true }));
    ev.push(s(9_000, work(2, 200)));
    ev.push(s(10_000, demand(0)));
    Scenario::named("crash-during-resolution", ev, SimDuration::from_secs(120))
}

/// Skewed-clock sweep: two nodes' clocks drift hard in opposite
/// directions (±40 % rate) while the fleet sells and resolves. Staleness
/// estimates and timer-driven behaviour see wildly different local times;
/// replicated state must still converge.
pub fn skewed_clock_sweep() -> Scenario {
    let mut ev = vec![
        s(1_000, FaultEvent::ClockSkew { node: 1, ppm: 400_000 }),
        s(1_001, FaultEvent::ClockSkew { node: 3, ppm: -400_000 }),
    ];
    for round in 0u64..3 {
        for node in 0u32..4 {
            ev.push(s(
                2_000 + round * 2_000 + node as u64 * 100,
                work(node, round * 4 + node as u64),
            ));
        }
        ev.push(s(3_500 + round * 2_000, demand((round % 4) as u32)));
    }
    ev.push(s(9_000, demand(0)));
    Scenario::named("skewed-clock-sweep", ev, SimDuration::from_secs(120))
}

/// The whole curated suite, in canonical order.
pub fn named_suite() -> Vec<Scenario> {
    vec![split_brain_write_race(), flapping_link(), crash_during_resolution(), skewed_clock_sweep()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_is_well_formed() {
        let suite = named_suite();
        assert_eq!(suite.len(), 4);
        for sc in &suite {
            assert!(sc.is_monotonic(), "{}", sc.name);
            assert!(!sc.events.is_empty(), "{}", sc.name);
        }
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "split-brain-write-race",
                "flapping-link",
                "crash-during-resolution",
                "skewed-clock-sweep"
            ]
        );
    }
}
