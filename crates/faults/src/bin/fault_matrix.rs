//! The fault-matrix driver: runs the curated named suite plus a sweep of
//! random schedules, each **twice** on identically specced fleets to pin
//! replay identity, and writes `FAULT_matrix.json` with per-scenario rows
//! and the summary gates CI checks (zero invariant violations, full
//! convergence, bit-identical replays).
//!
//! Usage: `fault_matrix [--random N] [--seed S] [--out PATH]`
//!
//! `--random` sets the number of random schedules (default 25), `--seed`
//! offsets their seeds (default 0), `--out` the JSON path (default
//! `FAULT_matrix.json`). Exits non-zero when any gate fails, after still
//! writing the JSON — the artifact is most useful exactly then.

use idea_faults::{named_suite, BookingFleetSpec, RunReport, Scenario};

/// One scenario's double-run result.
struct Row {
    report: RunReport,
    events: usize,
    replay_identical: bool,
    kind: &'static str,
}

fn run_twice(spec: &BookingFleetSpec, scenario: &Scenario, kind: &'static str) -> Row {
    let first = spec.build().run(scenario);
    let second = spec.build().run(scenario);
    let replay_identical = first.replay_key() == second.replay_key();
    Row { report: first, events: scenario.events.len(), replay_identical, kind }
}

fn json_row(r: &Row) -> String {
    let rep = &r.report;
    format!(
        "    {{ \"name\": \"{}\", \"kind\": \"{}\", \"seed\": {}, \"events\": {}, \
         \"violations\": {}, \"quiescent\": {}, \"converged\": {}, \
         \"replay_identical\": {}, \"messages\": {}, \"dropped\": {}, \
         \"final_hash\": \"{:016x}\" }}",
        rep.name,
        r.kind,
        rep.seed,
        r.events,
        rep.violations.len(),
        rep.quiescent,
        rep.converged,
        r.replay_identical,
        rep.messages,
        rep.dropped,
        rep.final_hashes.first().copied().unwrap_or(0),
    )
}

fn arg_val(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let random_n: u64 = arg_val(&args, "--random").map_or(25, |v| v.parse().expect("--random N"));
    let seed_base: u64 = arg_val(&args, "--seed").map_or(0, |v| v.parse().expect("--seed S"));
    let out = arg_val(&args, "--out").unwrap_or_else(|| "FAULT_matrix.json".to_string());

    let mut rows = Vec::new();

    // Named suite: Sync WAL, the paper-faithful durability plane.
    for sc in named_suite() {
        let spec = BookingFleetSpec::standard(42, &sc.name);
        let row = run_twice(&spec, &sc, "named");
        println!(
            "named  {:<24} events={:<3} violations={} quiescent={} converged={} replay={}",
            row.report.name,
            row.events,
            row.report.violations.len(),
            row.report.quiescent,
            row.report.converged,
            row.replay_identical,
        );
        rows.push(row);
    }

    // Random sweep: buffered WAL (recovery still replays the log, without
    // paying an fsync per sale across hundreds of schedules).
    for k in 0..random_n {
        let seed = seed_base + k;
        let sc = Scenario::random(seed, 4, 60);
        let mut spec = BookingFleetSpec::standard(1_000 + seed, &sc.name);
        spec.wal_sync = false;
        let row = run_twice(&spec, &sc, "random");
        println!(
            "random {:<24} events={:<3} violations={} quiescent={} converged={} replay={}",
            row.report.name,
            row.events,
            row.report.violations.len(),
            row.report.quiescent,
            row.report.converged,
            row.replay_identical,
        );
        rows.push(row);
    }

    let violations_total: usize = rows.iter().map(|r| r.report.violations.len()).sum();
    let all_converged = rows.iter().all(|r| r.report.converged);
    let all_quiescent = rows.iter().all(|r| r.report.quiescent);
    let all_replay_identical = rows.iter().all(|r| r.replay_identical);
    let pass = violations_total == 0 && all_converged && all_quiescent && all_replay_identical;

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        r#"{{
  "summary": {{
    "scenarios": {},
    "named": {},
    "random": {},
    "events_total": {},
    "violations_total": {},
    "all_converged": {},
    "all_quiescent": {},
    "all_replay_identical": {},
    "pass": {}
  }},
  "scenarios": [
{}
  ]
}}
"#,
        rows.len(),
        rows.iter().filter(|r| r.kind == "named").count(),
        rows.iter().filter(|r| r.kind == "random").count(),
        rows.iter().map(|r| r.events).sum::<usize>(),
        violations_total,
        all_converged,
        all_quiescent,
        all_replay_identical,
        pass,
        body.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write fault matrix JSON");
    println!(
        "wrote {out}: {} scenarios, {} violations, converged={all_converged}, \
         quiescent={all_quiescent}, replay={all_replay_identical}",
        rows.len(),
        violations_total,
    );
    if !pass {
        std::process::exit(1);
    }
}
