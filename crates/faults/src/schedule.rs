//! The scenario DSL: typed fault events on a virtual-time schedule.
//!
//! A [`Scenario`] is a *value* — a named, seeded list of [`Scheduled`]
//! events plus a settle budget. Running the same value twice on fresh
//! fleets must produce bit-identical traces; shrinking one is just
//! dropping elements of `events` (any subsequence of a monotonic schedule
//! is a valid schedule). [`Scenario::random`] derives an arbitrary but
//! fully reproducible schedule from one seed, which is what the explorer
//! and the proptest sweep feed the runner.

use idea_types::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One injectable fault (or interleaved workload step).
///
/// Node references are raw indices (`u32`, dense from 0) rather than
/// `NodeId` so schedules stay plain data — the runner maps them onto the
/// engine and silently ignores references that make no sense in the
/// current fleet state (crashing a crashed node, working a down node).
/// That tolerance is what keeps every subsequence of a schedule runnable,
/// which the shrinker depends on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Split the fleet into the given groups; traffic flows only within a
    /// group. Nodes listed in no group are fully isolated. Replaces any
    /// partition layout installed earlier.
    Partition {
        /// Connectivity classes, each a list of node indices.
        groups: Vec<Vec<u32>>,
    },
    /// Remove every partition (link loss and skew are untouched).
    Heal,
    /// Set the loss probability of one directed link.
    Loss {
        /// Sending node index.
        from: u32,
        /// Receiving node index.
        to: u32,
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
    /// Set the global reorder window: every remote delivery gets an extra
    /// uniform delay in `[0, window]`, perturbing arrival order.
    Reorder {
        /// Extra-delay window; zero restores FIFO-per-link delivery.
        window: SimDuration,
    },
    /// Set the global duplicate probability for remote deliveries.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Kill a node: parked and in-flight state vanish, timers stop. What
    /// survives is exactly what its WAL (if any) holds.
    Crash {
        /// Victim node index.
        node: u32,
    },
    /// Restart a crashed node. With `via_wal` the replacement is rebuilt
    /// through `IdeaNode::recover` (real WAL replay); without, it comes
    /// back amnesiac (fresh genesis) and must relearn everything from
    /// peers.
    Recover {
        /// Node index to restart.
        node: u32,
        /// Rebuild from the write-ahead log instead of from scratch.
        via_wal: bool,
    },
    /// Skew one node's view of the clock by `ppm` parts per million.
    /// Engine event times are untouched — only the node's `now()` drifts.
    ClockSkew {
        /// Node index whose clock drifts.
        node: u32,
        /// Drift rate; ±500_000 is a clock running 1.5×/0.5× real speed.
        ppm: i64,
    },
    /// An interleaved workload step — faults are only interesting while
    /// the application is writing.
    Work(WorkOp),
}

/// Application work interleaved with the faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkOp {
    /// Apply the host's `op`-th workload operation on one node.
    Apply {
        /// Node index that performs the operation.
        node: u32,
        /// Opaque operation selector, interpreted by the host.
        op: u64,
    },
    /// Force an on-demand resolution round from one node.
    DemandResolution {
        /// Node index that initiates the round.
        node: u32,
    },
}

/// A fault event pinned to a point in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheduled {
    /// When the event fires (events must be non-decreasing in `at`).
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// A complete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable name for reports.
    pub name: String,
    /// Seed this scenario was derived from (0 for hand-written ones).
    pub seed: u64,
    /// The schedule, non-decreasing in `at`.
    pub events: Vec<Scheduled>,
    /// Extra virtual time granted after the final event (and the healing
    /// epilogue) for the fleet to converge.
    pub settle: SimDuration,
}

impl Scenario {
    /// Builds a hand-written scenario.
    pub fn named(name: &str, events: Vec<Scheduled>, settle: SimDuration) -> Self {
        let s = Scenario { name: name.to_string(), seed: 0, events, settle };
        debug_assert!(s.is_monotonic(), "schedule times must be non-decreasing");
        s
    }

    /// Derives a random — but fully seed-determined — schedule for an
    /// `n`-node fleet with roughly `len` events.
    ///
    /// The generator keeps the schedule *runnable*: it only crashes nodes
    /// that are up, only recovers nodes that are down (always `via_wal`,
    /// so recovery exercises real WAL replay), and never takes the whole
    /// fleet down at once. Workload steps dominate the mix so faults land
    /// on a system that is actually writing.
    pub fn random(seed: u64, n: usize, len: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1DEA_FA01);
        let n32 = n as u32;
        let mut at = SimTime::ZERO;
        let mut down: Vec<bool> = vec![false; n];
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            at += SimDuration::from_millis(rng.gen_range(50..2_000));
            let up: Vec<u32> = (0..n32).filter(|i| !down[*i as usize]).collect();
            let downed: Vec<u32> = (0..n32).filter(|i| down[*i as usize]).collect();
            let roll = rng.gen_range(0u32..100);
            let event = match roll {
                // Workload pressure: the majority of the schedule.
                0..=44 => FaultEvent::Work(WorkOp::Apply {
                    node: up[rng.gen_range(0..up.len())],
                    op: rng.gen_range(0..1_000),
                }),
                45..=54 => FaultEvent::Work(WorkOp::DemandResolution {
                    node: up[rng.gen_range(0..up.len())],
                }),
                // Connectivity faults.
                55..=64 => {
                    let cut = rng.gen_range(1..n32.max(2));
                    let (a, b): (Vec<u32>, Vec<u32>) = (0..n32).partition(|i| *i < cut);
                    FaultEvent::Partition { groups: vec![a, b] }
                }
                65..=72 => FaultEvent::Heal,
                73..=79 => FaultEvent::Loss {
                    from: rng.gen_range(0..n32),
                    to: rng.gen_range(0..n32),
                    p: rng.gen_range(0.1..0.9),
                },
                80..=84 => {
                    FaultEvent::Reorder { window: SimDuration::from_millis(rng.gen_range(0..500)) }
                }
                85..=88 => FaultEvent::Duplicate { p: rng.gen_range(0.0..0.5) },
                // Process faults: keep a majority of the fleet up.
                89..=93 if up.len() > n / 2 + 1 => {
                    let victim = up[rng.gen_range(0..up.len())];
                    down[victim as usize] = true;
                    FaultEvent::Crash { node: victim }
                }
                94..=97 if !downed.is_empty() => {
                    let node = downed[rng.gen_range(0..downed.len())];
                    down[node as usize] = false;
                    FaultEvent::Recover { node, via_wal: true }
                }
                _ => FaultEvent::ClockSkew {
                    node: rng.gen_range(0..n32),
                    ppm: rng.gen_range(-500_000..=500_000),
                },
            };
            events.push(Scheduled { at, event });
        }
        Scenario {
            name: format!("random-{seed}"),
            seed,
            events,
            settle: SimDuration::from_secs(120),
        }
    }

    /// True when event times never decrease.
    pub fn is_monotonic(&self) -> bool {
        self.events.windows(2).all(|w| w[0].at <= w[1].at)
    }

    /// Virtual time of the last event ([`SimTime::ZERO`] when empty).
    pub fn end(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_reproducible_values() {
        let a = Scenario::random(7, 4, 60);
        let b = Scenario::random(7, 4, 60);
        assert_eq!(a, b, "same seed, same schedule value");
        let c = Scenario::random(8, 4, 60);
        assert_ne!(a.events, c.events, "different seed, different schedule");
    }

    #[test]
    fn random_schedules_are_monotonic_and_runnable() {
        for seed in 0..20 {
            let s = Scenario::random(seed, 5, 80);
            assert!(s.is_monotonic(), "seed {seed}");
            assert_eq!(s.events.len(), 80);
            // Crash/recover bookkeeping: recovery always goes through the
            // WAL, and no event references a node outside the fleet.
            let mut down = [false; 5];
            for ev in &s.events {
                match &ev.event {
                    FaultEvent::Crash { node } => {
                        assert!(!down[*node as usize], "seed {seed}: crashed a down node");
                        down[*node as usize] = true;
                    }
                    FaultEvent::Recover { node, via_wal } => {
                        assert!(down[*node as usize], "seed {seed}: recovered an up node");
                        assert!(*via_wal);
                        down[*node as usize] = false;
                    }
                    FaultEvent::Work(WorkOp::Apply { node, .. })
                    | FaultEvent::Work(WorkOp::DemandResolution { node })
                    | FaultEvent::ClockSkew { node, .. } => assert!(*node < 5),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn subsequences_stay_monotonic() {
        let mut s = Scenario::random(3, 4, 40);
        s.events.retain(|e| !matches!(e.event, FaultEvent::Work(_)));
        assert!(s.is_monotonic());
    }
}
