//! Convergence and divergence-bound oracles over a fleet.
//!
//! The fault runner delegates *application* predicates to
//! [`idea_apps::FleetInvariant`] checkers; this module holds the
//! protocol-level oracles that apply to any [`crate::FaultHost`] fleet:
//! state-hash convergence and the detection plane's divergence bound.

use idea_core::NodeReport;
use idea_types::SimTime;

/// One observed invariant violation, timestamped in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the violation was observed.
    pub at: SimTime,
    /// Which invariant broke (its stable `name()`).
    pub invariant: String,
    /// Human-readable description, actionable on its own.
    pub detail: String,
}

/// True when every node reports the same state hash (vacuously true for
/// an empty fleet).
pub fn converged(hashes: &[u64]) -> bool {
    hashes.windows(2).all(|w| w[0] == w[1])
}

/// The detection plane's divergence bound: every node's *detected*
/// consistency level must stay at or above a floor.
///
/// The floor is the level the deployment's `ConsistencySpec` hint pins
/// (`NodeReport::hint_floor` is the node's own view of it); a fleet that
/// drifts below while claiming to honour the spec has a broken detection
/// or adaptation plane. Partitioned intervals are exempt by construction:
/// callers check this oracle on connected, settled fleets.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceBound {
    /// Minimum acceptable detected consistency level, in `[0, 1]`.
    pub floor: f64,
}

impl DivergenceBound {
    /// Checks every node's report against the floor.
    ///
    /// # Errors
    /// Returns the first node whose detected level sits below the floor.
    pub fn check_reports(&self, reports: &[NodeReport]) -> Result<(), String> {
        for r in reports {
            let level = r.level.value();
            if level < self.floor {
                return Err(format!(
                    "divergence bound violated: node {} detects level {level:.4} \
                     below floor {:.4}",
                    r.node.0, self.floor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_is_hash_equality() {
        assert!(converged(&[]));
        assert!(converged(&[7]));
        assert!(converged(&[7, 7, 7]));
        assert!(!converged(&[7, 7, 8]));
    }
}
