//! Deterministic fault-injection harness over the simulated engine.
//!
//! The paper's claims (§5, §6) are about behaviour *under* divergence:
//! what the detection plane sees, how resolution reconverges, what the
//! application-level damage is. This crate turns those conditions into
//! first-class, replayable values:
//!
//! * [`schedule`] — the scenario DSL: a [`Scenario`] is a seeded list of
//!   typed [`FaultEvent`]s (partitions, per-link loss, reordering,
//!   duplication, crashes with WAL-replay recovery, clock skew) pinned to
//!   virtual times, interleaved with application work.
//! * [`runner`] — executes a scenario against a fleet, swapping crashed
//!   nodes for WAL-recovered replacements, checking fleet invariants
//!   after every event, and driving a healing epilogue to convergence.
//! * [`oracle`] — protocol-level oracles: state-hash convergence and the
//!   detection plane's divergence bound.
//! * [`fleet`] — canonical booking deployments ([`BookingFleetSpec`])
//!   whose construction is a pure function of the spec, so any schedule
//!   replays bit-identically.
//! * [`scenarios`] — the curated named suite: split-brain write race,
//!   flapping link, crash-during-resolution, skewed-clock sweep.
//! * [`explorer`] — delta-debugging shrinker reducing a failing schedule
//!   to a 1-minimal reproducer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod fleet;
pub mod oracle;
pub mod runner;
pub mod scenarios;
pub mod schedule;

pub use explorer::minimize;
pub use fleet::{BookingFleetSpec, BOOKING_OBJ, FLIGHT};
pub use oracle::{converged, DivergenceBound, Violation};
pub use runner::{FaultHost, FaultRunner, RunReport, TraceStep};
pub use scenarios::named_suite;
pub use schedule::{FaultEvent, Scenario, Scheduled, WorkOp};
