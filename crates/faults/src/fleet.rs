//! Canonical booking fleets for the harness: one spec value describes the
//! whole deployment, and building it twice yields identically seeded
//! engines — the basis of the replay-identity oracle.

use crate::runner::FaultRunner;
use idea_apps::{BookingServer, NoOverbooking};
use idea_core::{DurabilityConfig, IdeaConfig, IdeaNode};
use idea_net::{SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration};
use std::path::PathBuf;

/// The booking record object every fleet replicates.
pub const BOOKING_OBJ: ObjectId = ObjectId(1);

/// The flight number sold by every fleet.
pub const FLIGHT: u32 = 77;

/// Describes a booking fleet completely — building the same spec twice
/// produces engines that replay any schedule bit-identically.
#[derive(Debug, Clone)]
pub struct BookingFleetSpec {
    /// Number of booking servers.
    pub n: usize,
    /// Flight capacity shared by the fleet.
    pub capacity: u32,
    /// Give every server an IPA-style escrow quota of `capacity / n`.
    pub escrow: bool,
    /// Seed for topology and engine RNG.
    pub seed: u64,
    /// Background resolution period.
    pub period: SimDuration,
    /// WAL root directory; `None` runs without durability (crash recovery
    /// then falls back to amnesiac restart even when a schedule asks for
    /// `via_wal`).
    pub wal_dir: Option<PathBuf>,
    /// Fsync per append (`Sync`) instead of buffered appends. Buffered is
    /// the fast default for big random sweeps: within one process the
    /// appended bytes are still visible to recovery reads, so WAL replay
    /// is exercised without paying an fsync per sale.
    pub wal_sync: bool,
}

impl BookingFleetSpec {
    /// A 4-node, capacity-8, escrowed fleet — the named suite's default.
    /// `wal_tag` isolates the WAL directory per test/process.
    pub fn standard(seed: u64, wal_tag: &str) -> Self {
        BookingFleetSpec {
            n: 4,
            capacity: 8,
            escrow: true,
            seed,
            period: SimDuration::from_secs(30),
            wal_dir: Some(
                std::env::temp_dir().join(format!("idea-faults-{}-{wal_tag}", std::process::id())),
            ),
            wal_sync: true,
        }
    }

    /// The node configuration this spec implies.
    pub fn config(&self) -> IdeaConfig {
        let mut cfg = IdeaConfig::booking(self.period);
        if let Some(dir) = &self.wal_dir {
            cfg.durability = if self.wal_sync {
                DurabilityConfig::sync(dir)
            } else {
                DurabilityConfig::buffered(dir)
            };
        }
        cfg
    }

    /// Per-server escrow quota, when escrow is on.
    pub fn quota(&self) -> Option<u32> {
        self.escrow.then(|| self.capacity / self.n as u32)
    }

    /// Builds one server, fresh (genesis — wipes any WAL it finds).
    fn fresh(&self, id: NodeId) -> BookingServer {
        let mut s = BookingServer::new_with(id, BOOKING_OBJ, FLIGHT, self.capacity, self.config());
        s.set_escrow_quota(self.quota());
        s
    }

    /// Builds the runner: a freshly seeded engine over `n` servers, the
    /// WAL-aware rebuild factory, and the no-overbooking oracle.
    pub fn build(&self) -> FaultRunner<BookingServer> {
        let nodes: Vec<BookingServer> = (0..self.n).map(|i| self.fresh(NodeId(i as u32))).collect();
        let eng = SimEngine::new(
            Topology::planetlab(self.n, self.seed),
            SimConfig { seed: self.seed, ..Default::default() },
            nodes,
        );
        let spec = self.clone();
        let rebuild = Box::new(move |id: NodeId, via_wal: bool| {
            if via_wal && spec.wal_dir.is_some() {
                let node = IdeaNode::recover(id, spec.config(), &[BOOKING_OBJ])
                    .expect("recovery config was valid at genesis");
                let mut s = BookingServer::from_node(node, BOOKING_OBJ, FLIGHT, spec.capacity);
                s.set_escrow_quota(spec.quota());
                s
            } else {
                spec.fresh(id)
            }
        });
        FaultRunner::new(eng, rebuild).check(NoOverbooking)
    }
}
