//! The curated named suite, run end to end: every scenario must satisfy
//! all three oracles (zero invariant violations, typed quiescence, fleet
//! convergence), and fixed-seed replays must be bit-identical — same
//! schedule value, same per-event state-hash trajectory, same message
//! totals.

use idea_faults::{named_suite, scenarios, BookingFleetSpec, Scenario};
use idea_net::Quiescence;
use idea_types::{NodeId, SimTime};

fn run(tag: &str, sc: &Scenario) -> idea_faults::RunReport {
    BookingFleetSpec::standard(42, tag).build().run(sc)
}

#[test]
fn every_named_scenario_passes_all_oracles() {
    for sc in named_suite() {
        let rep = run(&format!("suite-{}", sc.name), &sc);
        assert!(
            rep.violations.is_empty(),
            "{}: invariant violations {:?}",
            sc.name,
            rep.violations
        );
        assert!(rep.quiescent, "{}: queue never drained", sc.name);
        assert!(rep.converged, "{}: fleet diverged: {:?}", sc.name, rep.final_hashes);
    }
}

#[test]
fn fixed_seed_replays_are_bit_identical() {
    // Same schedule value from the same seed…
    let a = Scenario::random(11, 4, 60);
    let b = Scenario::random(11, 4, 60);
    assert_eq!(a, b, "the schedule itself is a replayable value");

    // …and the same (spec, schedule) pair replays the whole run: per-event
    // state-hash trajectory, final hashes, message and drop totals.
    let spec = BookingFleetSpec::standard(7, "replay-pin");
    let first = spec.build().run(&a);
    let second = spec.build().run(&b);
    assert_eq!(first.replay_key(), second.replay_key());
    assert_eq!(first.trace, second.trace, "per-event state-hash trajectories differ");
    assert!(!first.trace.is_empty());
}

#[test]
fn split_brain_write_race_stays_inside_capacity_while_partitioned() {
    // The scenario's whole point: both halves sell past their stale
    // global views mid-partition, and the escrow quotas alone keep the
    // fleet inside capacity (zero no_overbooking violations) until
    // resolution reconverges the record.
    let sc = scenarios::split_brain_write_race();
    let mut runner = BookingFleetSpec::standard(42, "split-brain-deep").build();
    let rep = runner.run(&sc);
    assert!(rep.clean(), "violations={:?}", rep.violations);
    let eng = runner.engine();
    let sold: u32 = (0..eng.len()).map(|i| eng.node(NodeId(i as u32)).own_sold()).sum();
    let cap = eng.node(NodeId(0)).capacity();
    assert!(sold <= cap, "{sold} live seats for capacity {cap}");
    assert!(sold > 0, "the race actually sold seats");
}

#[test]
fn quiescence_outcome_is_typed_and_reached_on_a_settled_fleet() {
    // Satellite pin for the typed `Quiescence` API: after a full scenario
    // run the engine drains within one more settle window, and the typed
    // outcome says so — `Reached { at }` with a timestamp inside the
    // limit, not a bare bool.
    let sc = scenarios::crash_during_resolution();
    let mut runner = BookingFleetSpec::standard(42, "quiescence-typed").build();
    let rep = runner.run(&sc);
    assert!(rep.quiescent);
    let eng = runner.engine_mut();
    let limit = eng.now() + sc.settle;
    let q = eng.run_until_quiescent(limit);
    match q {
        Quiescence::Reached { at } => assert!(at <= limit, "drained at {at:?} beyond {limit:?}"),
        Quiescence::LimitHit { at, events } => {
            panic!("settled fleet still busy at {at:?} after {events} events")
        }
    }
    assert!(q.reached());
    assert!(q.at() > SimTime::ZERO);
}

#[test]
fn amnesiac_recovery_also_reconverges() {
    // `via_wal: false` brings the node back empty; the rejoin delta must
    // restore everything the fleet knows, and convergence must not depend
    // on the WAL being there.
    let mut sc = scenarios::crash_during_resolution();
    for ev in &mut sc.events {
        if let idea_faults::FaultEvent::Recover { via_wal, .. } = &mut ev.event {
            *via_wal = false;
        }
    }
    sc.name = "crash-amnesiac".to_string();
    let rep = run("crash-amnesiac", &sc);
    assert!(rep.clean(), "violations={:?} converged={}", rep.violations, rep.converged);
}
