//! Property: *every* random fault schedule — partitions, lossy links,
//! reordering, duplication, crashes with WAL-replay recovery, clock
//! skew — leaves the booking fleet with zero invariant violations and a
//! quiescent, converged record after the healing epilogue.

use idea_faults::{minimize, BookingFleetSpec, Scenario};
use proptest::prelude::*;

fn run_seed(seed: u64) -> idea_faults::RunReport {
    let sc = Scenario::random(seed, 4, 40);
    // Buffered WAL: recovery still replays the log without an fsync per
    // sale — the sweep runs hundreds of schedules.
    let mut spec = BookingFleetSpec::standard(1_000 + seed, &format!("sweep-{seed}"));
    spec.wal_sync = false;
    spec.build().run(&sc)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 25, ..ProptestConfig::default() })]

    #[test]
    fn random_schedules_never_break_the_oracles(seed in 0u64..10_000) {
        let rep = run_seed(seed);
        prop_assert!(rep.violations.is_empty(), "seed {}: {:?}", seed, rep.violations);
        prop_assert!(rep.quiescent, "seed {}: queue never drained", seed);
        prop_assert!(rep.converged, "seed {}: diverged {:?}", seed, rep.final_hashes);
    }
}

#[test]
fn the_shrinker_plugs_into_real_runs() {
    // End-to-end explorer path on a passing schedule: `minimize` probes
    // the real runner once, sees no failure, and hands the schedule back
    // untouched. (The failing-path shrink is pinned unit-side against a
    // synthetic predicate; real runs are the expensive probe.)
    let sc = Scenario::random(3, 4, 20);
    let spec = BookingFleetSpec::standard(99, "shrink-e2e");
    let (out, probes) = minimize(&sc, |cand| !spec.build().run(cand).clean());
    assert_eq!(probes, 1, "a clean schedule costs exactly one probe");
    assert_eq!(out.events, sc.events);
}
