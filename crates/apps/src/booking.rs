//! The airline ticket booking system (§3.2, §5.2).
//!
//! Several booking servers sell seats for the same flight, each tracking its
//! record independently on its local replica. Stale views can **oversell**
//! (two servers sell the last seat) and the locking window of a resolution
//! round can **undersell** (requests bounced while seats remain) — "both
//! underselling and overselling will hurt the company economically" (§3.2).
//!
//! Consistency control is **fully automatic** (§4.6): a background
//! resolution whose frequency an [`AutoController`] adjusts inside learned
//! under/oversell bounds, subject to the Formula-4 bandwidth cap.

use idea_core::client::{apply_to_node, Command, IdeaHost, Response};
use idea_core::{AutoController, IdeaConfig, IdeaMsg, IdeaNode, NodeReport};
use idea_net::{Context, Proto, TimerId};
use idea_types::{NodeId, ObjectId, SimDuration, Update, UpdatePayload, WriterId};
use serde::{Deserialize, Serialize};

/// Outcome of a booking request at one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BookOutcome {
    /// Seats sold; the update carries the sale.
    Accepted {
        /// Seats remaining *in this server's local view* after the sale.
        local_remaining: u32,
    },
    /// The server's local view shows no seats left.
    SoldOut,
    /// A resolution round is in flight: the system is "kind of locked"
    /// (§5.2) and the request bounces — an underselling hazard.
    Locked,
}

/// One booking server: an IDEA node plus inventory semantics.
pub struct BookingServer {
    node: IdeaNode,
    flight_object: ObjectId,
    flight: u32,
    capacity: u32,
    auto: AutoController,
    /// IPA-style escrow quota: when set, this server never accepts more
    /// than `quota` seats of its own sales, however stale its global view.
    /// Quotas summing to at most `capacity` across the fleet make
    /// overbooking impossible under *any* fault schedule.
    escrow_quota: Option<u32>,
    accepted_seats: u32,
    rejected_sold_out: u64,
    rejected_locked: u64,
}

impl BookingServer {
    /// Builds a server for `flight` with `capacity` seats, replicating the
    /// booking record `object`, running background resolution at `period`.
    pub fn new(
        me: NodeId,
        object: ObjectId,
        flight: u32,
        capacity: u32,
        period: SimDuration,
    ) -> Self {
        Self::new_with(me, object, flight, capacity, IdeaConfig::booking(period))
    }

    /// Builds a server over an explicit [`IdeaConfig`] — the entry point
    /// for deployments that need a non-default plane (durability, gossip
    /// mode) under the booking semantics. The controller starts at the
    /// config's background period (or its 60 s default when unset).
    pub fn new_with(
        me: NodeId,
        object: ObjectId,
        flight: u32,
        capacity: u32,
        cfg: IdeaConfig,
    ) -> Self {
        Self::from_node(IdeaNode::new(me, cfg, &[object]), object, flight, capacity)
    }

    /// Wraps an existing node — the crash-recovery path: `node` comes from
    /// [`IdeaNode::recover`], so wrapping must *not* re-run genesis (which
    /// would wipe the WAL). The monotonic sale counter is re-seeded from
    /// the recovered replica's own live sales; under `Sync` durability
    /// that is every acknowledged sale that resolution has not since
    /// invalidated, so the escrow gate stays sound across the crash.
    pub fn from_node(node: IdeaNode, object: ObjectId, flight: u32, capacity: u32) -> Self {
        let period = node.config().background_period.unwrap_or(SimDuration::from_secs(60));
        let mut srv = BookingServer {
            node,
            flight_object: object,
            flight,
            capacity,
            auto: AutoController::new(
                period,
                SimDuration::from_secs(2),
                SimDuration::from_secs(120),
            ),
            escrow_quota: None,
            accepted_seats: 0,
            rejected_sold_out: 0,
            rejected_locked: 0,
        };
        srv.accepted_seats = srv.own_sold();
        srv
    }

    /// The wrapped IDEA node.
    pub fn idea(&self) -> &IdeaNode {
        &self.node
    }

    /// Mutable access to the wrapped IDEA node.
    pub fn idea_mut(&mut self) -> &mut IdeaNode {
        &mut self.node
    }

    /// The automatic frequency controller.
    pub fn controller(&self) -> &AutoController {
        &self.auto
    }

    /// The flight's total seat capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The replicated booking-record object this server sells against.
    pub fn object(&self) -> ObjectId {
        self.flight_object
    }

    /// Kicks off an on-demand active resolution round for the booking
    /// record — the hook fault harnesses use to force reconciliation at a
    /// chosen point in a schedule instead of waiting for the background
    /// period.
    pub fn demand_resolution(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.demand_active_resolution(self.flight_object, ctx);
    }

    /// Seats this server has sold (its own accepted bookings).
    pub fn accepted_seats(&self) -> u32 {
        self.accepted_seats
    }

    /// Enables the IPA-style escrow gate: this server stops accepting once
    /// its own sales reach `quota` seats, regardless of what its (possibly
    /// stale) global view claims remains. `None` disables the gate.
    pub fn set_escrow_quota(&mut self, quota: Option<u32>) {
        self.escrow_quota = quota;
    }

    /// The configured escrow quota, if any.
    pub fn escrow_quota(&self) -> Option<u32> {
        self.escrow_quota
    }

    /// Requests bounced because the local view showed no seats.
    pub fn rejected_sold_out(&self) -> u64 {
        self.rejected_sold_out
    }

    /// Requests bounced during resolution locking.
    pub fn rejected_locked(&self) -> u64 {
        self.rejected_locked
    }

    /// Seats sold according to this server's *local replica view* (its own
    /// sales plus every sale it has learned about).
    pub fn known_sold(&self) -> u32 {
        self.sold_where(|_| true)
    }

    /// This server's own *live* sales: bookings it wrote that are still in
    /// its replica log (accepted and not invalidated by resolution). The
    /// crash-consistent quantity — recovered straight from the WAL — that
    /// fleet invariants sum, since every live sale lives in exactly one
    /// writer's `own_sold`.
    pub fn own_sold(&self) -> u32 {
        let me = WriterId(self.node.id().0);
        self.sold_where(|w| w == me)
    }

    fn sold_where(&self, keep: impl Fn(WriterId) -> bool) -> u32 {
        match self.node.replica(self.flight_object) {
            Ok(replica) => replica
                .log()
                .iter()
                .filter(|u| keep(u.id.writer))
                .filter_map(|u| match &u.payload {
                    UpdatePayload::Booking { seats, .. } => Some(*seats),
                    _ => None,
                })
                .sum(),
            Err(_) => 0,
        }
    }

    /// Attempts to sell `seats` at `price_cents`.
    pub fn try_book(
        &mut self,
        seats: u32,
        price_cents: i64,
        ctx: &mut dyn Context<IdeaMsg>,
    ) -> (BookOutcome, Option<Update>) {
        if self.node.is_resolving(self.flight_object) {
            self.rejected_locked += 1;
            return (BookOutcome::Locked, None);
        }
        // Escrow gate first: the monotonic own-sale counter never resets,
        // so no schedule of partitions or staleness lets this server spend
        // more than its reservation. The max() guards the one path where
        // the counter could lag the log — a recovery shell built before a
        // rejoin pulled this writer's older sales back in.
        if let Some(quota) = self.escrow_quota {
            let spent = self.accepted_seats.max(self.own_sold());
            if spent + seats > quota {
                self.rejected_sold_out += 1;
                return (BookOutcome::SoldOut, None);
            }
        }
        let sold = self.known_sold();
        if sold + seats > self.capacity {
            self.rejected_sold_out += 1;
            return (BookOutcome::SoldOut, None);
        }
        // The sale is a client-layer write command — the same unit a remote
        // booking frontend would submit.
        let cmd = Command::Write {
            object: self.flight_object,
            meta_delta: price_cents,
            payload: UpdatePayload::Booking { flight: self.flight, seats, price_cents },
        };
        let update = match apply_to_node(&mut self.node, cmd, ctx) {
            Response::Written { update } => update,
            other => unreachable!("write on the hosted record cannot fail: {other:?}"),
        };
        self.accepted_seats += seats;
        let local_remaining = self.capacity - (sold + seats);
        (BookOutcome::Accepted { local_remaining }, Some(update))
    }

    /// The harness detected an oversell across the fleet: feed the
    /// controller (frequency was too low) and adopt the new period.
    pub fn report_oversell(&mut self) -> SimDuration {
        self.auto.on_oversell();
        let p = self.auto.period();
        self.node.set_background_period(Some(p));
        p
    }

    /// The harness detected underselling (locked rejections while seats
    /// remained): frequency was too high.
    pub fn report_undersell(&mut self) -> SimDuration {
        self.auto.on_undersell();
        let p = self.auto.period();
        self.node.set_background_period(Some(p));
        p
    }

    /// Adjusts the background frequency for the current load (Formula 4).
    pub fn adjust_for_load(&mut self, available_bps: f64, round_cost_bits: f64) -> SimDuration {
        let p = self.auto.adjust_for_load(available_bps, round_cost_bits);
        self.node.set_background_period(Some(p));
        p
    }

    /// Node report for the booking record object.
    pub fn report(&self) -> NodeReport {
        self.node.report(self.flight_object)
    }
}

impl IdeaHost for BookingServer {
    fn idea(&self) -> &IdeaNode {
        &self.node
    }
    fn idea_mut(&mut self) -> &mut IdeaNode {
        &mut self.node
    }
}

impl Proto for BookingServer {
    type Msg = IdeaMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_start(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_timer(timer, kind, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};

    const OBJ: ObjectId = ObjectId(3);

    fn fleet(n: usize, capacity: u32, period_s: u64, seed: u64) -> SimEngine<BookingServer> {
        let nodes = (0..n)
            .map(|i| {
                BookingServer::new(
                    NodeId(i as u32),
                    OBJ,
                    77,
                    capacity,
                    SimDuration::from_secs(period_s),
                )
            })
            .collect();
        SimEngine::new(
            Topology::planetlab(n, seed),
            SimConfig { seed, ..Default::default() },
            nodes,
        )
    }

    #[test]
    fn bookings_sell_until_local_view_exhausts() {
        let mut eng = fleet(4, 3, 1_000, 1);
        for k in 0..4 {
            let (outcome, upd) = eng.with_node(NodeId(0), |s, ctx| s.try_book(1, 10_000, ctx));
            if k < 3 {
                assert!(matches!(outcome, BookOutcome::Accepted { .. }), "sale {k}");
                assert!(upd.is_some());
            } else {
                assert_eq!(outcome, BookOutcome::SoldOut);
                assert!(upd.is_none());
            }
        }
        let s = eng.node(NodeId(0));
        assert_eq!(s.accepted_seats(), 3);
        assert_eq!(s.rejected_sold_out(), 1);
        assert_eq!(s.known_sold(), 3);
    }

    #[test]
    fn stale_views_oversell_without_resolution() {
        // Capacity 4, background resolution far away: each of 4 servers
        // happily sells 2 seats — 8 sold, oversold by 4.
        let mut eng = fleet(4, 4, 10_000, 2);
        for srv in 0..4u32 {
            for _ in 0..2 {
                let (outcome, _) = eng.with_node(NodeId(srv), |s, ctx| s.try_book(1, 20_000, ctx));
                assert!(matches!(outcome, BookOutcome::Accepted { .. }));
            }
        }
        let total: u32 = (0..4u32).map(|s| eng.node(NodeId(s)).accepted_seats()).sum();
        assert_eq!(total, 8, "global sales exceed capacity — the oversell hazard");
    }

    #[test]
    fn resolution_spreads_sales_and_prevents_further_oversell() {
        let mut eng = fleet(4, 4, 20, 3);
        // Warm the top layer with small sales.
        for round in 0..3 {
            for srv in 0..4u32 {
                eng.with_node(NodeId(srv), |s, ctx| {
                    let _ = s.try_book(1, 5_000, ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
            let _ = round;
        }
        // Let background resolution run (period 20 s).
        eng.run_for(SimDuration::from_secs(45));
        // After reconciliation to the winner, every server sees the same
        // record, so further booking decisions share one view.
        let metas: Vec<i64> = (0..4u32).map(|s| eng.node(NodeId(s)).report().meta).collect();
        assert!(metas.windows(2).all(|m| m[0] == m[1]), "records diverge: {metas:?}");
        // And the shared view blocks sales beyond capacity.
        let known = eng.node(NodeId(0)).known_sold();
        if known >= 4 {
            let (outcome, _) = eng.with_node(NodeId(0), |s, ctx| s.try_book(1, 5_000, ctx));
            assert_eq!(outcome, BookOutcome::SoldOut);
        }
    }

    #[test]
    fn from_node_reseeds_the_sale_counter_from_the_log() {
        let mut eng = fleet(4, 10, 1_000, 8);
        for _ in 0..3 {
            eng.with_node(NodeId(0), |s, ctx| {
                let _ = s.try_book(1, 10_000, ctx);
            });
        }
        // Rebuild the server shell around the same node, as crash recovery
        // does: the monotonic counter comes back from the replica log.
        let node = std::mem::replace(
            eng.node_mut(NodeId(0)).idea_mut(),
            IdeaNode::new(NodeId(0), IdeaConfig::booking(SimDuration::from_secs(1_000)), &[OBJ]),
        );
        let rebuilt = BookingServer::from_node(node, OBJ, 77, 10);
        assert_eq!(rebuilt.accepted_seats(), 3);
        assert_eq!(rebuilt.own_sold(), 3);
        assert_eq!(rebuilt.capacity(), 10);
    }

    #[test]
    fn escrow_gate_caps_own_sales_before_the_global_view_does() {
        let mut eng = fleet(2, 10, 1_000, 9);
        eng.with_node(NodeId(0), |s, _| s.set_escrow_quota(Some(2)));
        for k in 0..3 {
            let (outcome, _) = eng.with_node(NodeId(0), |s, ctx| s.try_book(1, 10_000, ctx));
            if k < 2 {
                assert!(matches!(outcome, BookOutcome::Accepted { .. }), "sale {k}");
            } else {
                assert_eq!(outcome, BookOutcome::SoldOut, "quota spent");
            }
        }
        let s = eng.node(NodeId(0));
        assert_eq!(s.accepted_seats(), 2);
        assert_eq!(s.escrow_quota(), Some(2));
        assert!(s.known_sold() < s.capacity(), "global view still had seats");
    }

    #[test]
    fn controller_feedback_moves_the_period() {
        let mut eng = fleet(4, 100, 20, 4);
        let before = eng.node(NodeId(0)).controller().period();
        let after = eng.with_node(NodeId(0), |s, _| s.report_oversell());
        assert!(after <= before, "oversell must not slow resolution down");
        let after2 = eng.with_node(NodeId(0), |s, _| s.report_undersell());
        assert!(after2 >= after, "undersell must not speed resolution up");
        assert_eq!(eng.node(NodeId(0)).idea().config().background_period, Some(after2));
    }

    #[test]
    fn locked_window_rejects_requests() {
        let mut eng = fleet(4, 100, 1_000, 5);
        for round in 0..3 {
            for srv in 0..4u32 {
                eng.with_node(NodeId(srv), |s, ctx| {
                    let _ = s.try_book(1, 5_000, ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
            let _ = round;
        }
        eng.run_for(SimDuration::from_secs(2));
        // Kick off an active resolution, then immediately try to book on the
        // initiating server: the request must bounce as Locked.
        eng.with_node(NodeId(1), |s, ctx| {
            s.idea_mut().demand_active_resolution(OBJ, ctx);
            let (outcome, _) = s.try_book(1, 5_000, ctx);
            assert_eq!(outcome, BookOutcome::Locked);
        });
        assert_eq!(eng.node(NodeId(1)).rejected_locked(), 1);
    }
}
