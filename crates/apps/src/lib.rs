//! The paper's two emulated applications (§3, §5).
//!
//! * [`whiteboard`] — a distributed white board: synchronous collaboration,
//!   order-error-dominated consistency semantics, on-demand/hint-based
//!   adaptation via direct user interaction.
//! * [`booking`] — an airline ticket booking system: asynchronous
//!   e-business workload, numerical-error (total sale) semantics,
//!   fully-automatic background-resolution control balancing overselling
//!   against underselling.
//!
//! Both applications wrap an [`idea_core::IdeaNode`] and *delegate* the
//! [`idea_net::Proto`] implementation to it, so they run unchanged on the
//! simulator and on the threaded engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod booking;
pub mod invariant;
pub mod whiteboard;

pub use booking::{BookOutcome, BookingServer};
pub use invariant::{FleetInvariant, NoOverbooking};
pub use whiteboard::{ascii_sum, Stroke, WhiteboardClient};
