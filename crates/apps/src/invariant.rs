//! Fleet-level application invariants — the IPA-style oracle layer.
//!
//! Balegas et al. ("IPA") check replicated applications by running them
//! under adversarial network conditions and asserting an *application*
//! predicate over the whole fleet at every step. This module defines that
//! predicate shape for IDEA's emulated applications; the fault harness
//! (`idea-faults`) evaluates the checkers after every scheduled event of
//! every schedule it explores.

use crate::booking::BookingServer;

/// An application invariant over a whole fleet of servers.
///
/// Checkers must be cheap (they run after every fault-schedule event) and
/// side-effect free. A violation returns a description of what broke —
/// enough for a shrunk schedule to be actionable on its own.
pub trait FleetInvariant<S> {
    /// Short stable name for reports and JSON gates.
    fn name(&self) -> &'static str;

    /// Checks the fleet.
    ///
    /// # Errors
    /// Returns a human-readable description of the violation.
    fn check(&self, fleet: &[&S]) -> Result<(), String>;
}

/// The booking system's capacity invariant: the fleet's *live* sales never
/// exceed the flight's capacity.
///
/// Live sales are counted as each server's [`BookingServer::own_sold`] —
/// every live booking sits in exactly one writer's log slice, so the sum
/// double-counts nothing however far the replicas have diverged. Servers
/// selling under escrow quotas that sum to at most the capacity satisfy
/// this under every fault schedule; servers trusting their (possibly
/// stale) global view can violate it in a split-brain write race — which
/// is exactly what the oracle is for.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOverbooking;

impl FleetInvariant<BookingServer> for NoOverbooking {
    fn name(&self) -> &'static str {
        "no_overbooking"
    }

    fn check(&self, fleet: &[&BookingServer]) -> Result<(), String> {
        let Some(first) = fleet.first() else {
            return Ok(());
        };
        let capacity = first.capacity();
        let sold: u32 = fleet.iter().map(|s| s.own_sold()).sum();
        if sold > capacity {
            let per_server: Vec<u32> = fleet.iter().map(|s| s.own_sold()).collect();
            return Err(format!(
                "no_overbooking violated: {sold} live seats sold for capacity \
                 {capacity} (per-server {per_server:?})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};
    use idea_types::{NodeId, ObjectId, SimDuration};

    const OBJ: ObjectId = ObjectId(3);

    fn fleet(n: usize, capacity: u32, escrow: bool) -> SimEngine<BookingServer> {
        let nodes = (0..n)
            .map(|i| {
                let mut s = BookingServer::new(
                    NodeId(i as u32),
                    OBJ,
                    77,
                    capacity,
                    SimDuration::from_secs(10_000),
                );
                if escrow {
                    s.set_escrow_quota(Some(capacity / n as u32));
                }
                s
            })
            .collect();
        SimEngine::new(
            Topology::planetlab(n, 9),
            SimConfig { seed: 9, ..Default::default() },
            nodes,
        )
    }

    fn check(eng: &SimEngine<BookingServer>) -> Result<(), String> {
        let fleet: Vec<&BookingServer> =
            (0..eng.len()).map(|i| eng.node(NodeId(i as u32))).collect();
        NoOverbooking.check(&fleet)
    }

    #[test]
    fn split_brain_oversell_is_detected_without_escrow() {
        // Fully partitioned fleet, stale views: every server sells 2 of
        // the 4 seats — 8 live sales, and the oracle catches it.
        let mut eng = fleet(4, 4, false);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    eng.partition(NodeId(a), NodeId(b));
                }
            }
        }
        assert!(check(&eng).is_ok(), "clean fleet starts inside the bound");
        for srv in 0..4u32 {
            for _ in 0..2 {
                eng.with_node(NodeId(srv), |s, ctx| {
                    let _ = s.try_book(1, 10_000, ctx);
                });
            }
        }
        let err = check(&eng).unwrap_err();
        assert!(err.contains("8 live seats"), "got: {err}");
    }

    #[test]
    fn escrow_quotas_hold_the_bound_under_the_same_split_brain() {
        let mut eng = fleet(4, 4, true);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    eng.partition(NodeId(a), NodeId(b));
                }
            }
        }
        // Each server's quota is 1: the second sale bounces locally even
        // though the stale global view would have allowed it.
        for srv in 0..4u32 {
            for _ in 0..2 {
                eng.with_node(NodeId(srv), |s, ctx| {
                    let _ = s.try_book(1, 10_000, ctx);
                });
            }
        }
        check(&eng).expect("escrow keeps the fleet inside capacity");
        let total: u32 = (0..4u32).map(|s| eng.node(NodeId(s)).accepted_seats()).sum();
        assert_eq!(total, 4, "every server spent exactly its quota");
        assert!(eng.node(NodeId(0)).rejected_sold_out() > 0);
    }

    #[test]
    fn empty_fleet_is_trivially_consistent() {
        assert!(NoOverbooking.check(&[]).is_ok());
        assert_eq!(NoOverbooking.name(), "no_overbooking");
    }
}
