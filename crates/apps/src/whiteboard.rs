//! The distributed white board (§3.1, §5.1).
//!
//! Each participant runs a local board replica; strokes are IDEA updates
//! whose critical metadata is "the sum of the ASCII value of the last
//! several updates" (§4.4.1). Order error dominates the consistency
//! semantics — "these updates make sense only when they are read in order"
//! (§5.1) — so the default weights are [`Weights::WHITEBOARD`].

use idea_core::client::{apply_to_node, Command, IdeaHost, Response};
use idea_core::{IdeaConfig, IdeaMsg, IdeaNode, NodeReport, Weights};
use idea_net::{Context, Proto, TimerId};
use idea_types::{ConsistencyLevel, NodeId, ObjectId, Update, UpdatePayload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One drawn stroke.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stroke {
    /// Horizontal board position.
    pub x: u16,
    /// Vertical board position.
    pub y: u16,
    /// The drawn text.
    pub text: String,
}

/// Sum of the ASCII values of a stroke's text — the paper's white-board
/// metadata function.
pub fn ascii_sum(text: &str) -> i64 {
    text.bytes().map(|b| b as i64).sum()
}

/// A white-board participant: an IDEA node plus board semantics.
pub struct WhiteboardClient {
    node: IdeaNode,
    board: ObjectId,
}

impl WhiteboardClient {
    /// Joins the white board `board` as node `me` with hint level `hint`
    /// (0 disables hint-based control).
    pub fn new(me: NodeId, board: ObjectId, hint: f64) -> Self {
        let mut cfg = IdeaConfig::whiteboard(hint);
        cfg.weights = Weights::WHITEBOARD;
        WhiteboardClient { node: IdeaNode::new(me, cfg, &[board]), board }
    }

    /// Joins with a fully custom configuration.
    pub fn with_config(me: NodeId, board: ObjectId, cfg: IdeaConfig) -> Self {
        WhiteboardClient { node: IdeaNode::new(me, cfg, &[board]), board }
    }

    /// The wrapped IDEA node.
    pub fn idea(&self) -> &IdeaNode {
        &self.node
    }

    /// Mutable access to the wrapped IDEA node (Table-1 API calls).
    pub fn idea_mut(&mut self) -> &mut IdeaNode {
        &mut self.node
    }

    /// The board object id.
    pub fn board_id(&self) -> ObjectId {
        self.board
    }

    /// Draws a stroke: issues the write command with the ASCII-sum
    /// metadata. Routed through the typed client layer — the same
    /// [`Command::Write`] a remote session would send.
    pub fn draw(&mut self, x: u16, y: u16, text: &str, ctx: &mut dyn Context<IdeaMsg>) -> Update {
        let cmd = Command::Write {
            object: self.board,
            meta_delta: ascii_sum(text),
            payload: UpdatePayload::Stroke { x, y, text: text.to_string() },
        };
        match apply_to_node(&mut self.node, cmd, ctx) {
            Response::Written { update } => update,
            other => unreachable!("write on the hosted board cannot fail: {other:?}"),
        }
    }

    /// Renders the replica's current view: last writer wins per cell, in
    /// log-application order.
    pub fn render(&self) -> BTreeMap<(u16, u16), String> {
        let mut cells = BTreeMap::new();
        if let Ok(replica) = self.node.replica(self.board) {
            for u in replica.log() {
                if let UpdatePayload::Stroke { x, y, text } = &u.payload {
                    cells.insert((*x, *y), text.clone());
                }
            }
        }
        cells
    }

    /// This participant's current consistency level.
    pub fn level(&self) -> ConsistencyLevel {
        self.node.level(self.board)
    }

    /// Full node report.
    pub fn report(&self) -> NodeReport {
        self.node.report(self.board)
    }

    /// The participant explicitly demands resolution (§5.1 on-demand mode).
    pub fn demand_resolution(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        let _ =
            apply_to_node(&mut self.node, Command::DemandResolution { object: self.board }, ctx);
    }

    /// The participant tells IDEA the consistency is unacceptable,
    /// optionally re-weighting the three metrics (§5.1's three ways).
    ///
    /// The dissatisfaction itself (floor raise + resolution) is never
    /// swallowed: out-of-domain weights are dropped and the feedback still
    /// applies un-reweighted.
    pub fn complain(&mut self, new_weights: Option<Weights>, ctx: &mut dyn Context<IdeaMsg>) {
        let cmd = Command::Dissatisfied { object: self.board, new_weights };
        if let Response::Rejected { .. } = apply_to_node(&mut self.node, cmd, ctx) {
            let fallback = Command::Dissatisfied { object: self.board, new_weights: None };
            let _ = apply_to_node(&mut self.node, fallback, ctx);
        }
    }
}

impl IdeaHost for WhiteboardClient {
    fn idea(&self) -> &IdeaNode {
        &self.node
    }
    fn idea_mut(&mut self) -> &mut IdeaNode {
        &mut self.node
    }
}

impl Proto for WhiteboardClient {
    type Msg = IdeaMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_start(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: IdeaMsg, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, timer: TimerId, kind: u64, ctx: &mut dyn Context<IdeaMsg>) {
        self.node.on_timer(timer, kind, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};
    use idea_types::SimDuration;

    const BOARD: ObjectId = ObjectId(9);

    fn session(n: usize, hint: f64, seed: u64) -> SimEngine<WhiteboardClient> {
        let nodes = (0..n).map(|i| WhiteboardClient::new(NodeId(i as u32), BOARD, hint)).collect();
        SimEngine::new(
            Topology::planetlab(n, seed),
            SimConfig { seed, ..Default::default() },
            nodes,
        )
    }

    #[test]
    fn ascii_sum_matches_paper_meaning() {
        assert_eq!(ascii_sum("A"), 65);
        assert_eq!(ascii_sum("AB"), 131);
        assert_eq!(ascii_sum(""), 0);
    }

    #[test]
    fn strokes_render_locally() {
        let mut eng = session(4, 0.0, 1);
        eng.with_node(NodeId(0), |c, ctx| {
            c.draw(1, 2, "hello", ctx);
            c.draw(3, 4, "world", ctx);
        });
        let cells = eng.node(NodeId(0)).render();
        assert_eq!(cells.get(&(1, 2)).map(String::as_str), Some("hello"));
        assert_eq!(cells.get(&(3, 4)).map(String::as_str), Some("world"));
        assert_eq!(eng.node(NodeId(1)).render().len(), 0, "no propagation yet");
    }

    #[test]
    fn resolution_reconciles_boards_to_the_winner() {
        let mut eng = session(4, 0.0, 2);
        // Warm the top layer.
        for _ in 0..3 {
            for w in 0..4u32 {
                eng.with_node(NodeId(w), |c, ctx| {
                    c.draw(w as u16, 0, "warm", ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
        }
        eng.run_for(SimDuration::from_secs(2));
        // Conflicting strokes at the same cell.
        for w in 0..4u32 {
            eng.with_node(NodeId(w), |c, ctx| {
                c.draw(5, 5, &format!("writer{w}"), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(1));
        eng.with_node(NodeId(1), |c, ctx| c.demand_resolution(ctx));
        eng.run_for(SimDuration::from_secs(5));
        // Highest-id policy: node 3's stroke wins everywhere.
        for w in 0..4u32 {
            let cells = eng.node(NodeId(w)).render();
            assert_eq!(
                cells.get(&(5, 5)).map(String::as_str),
                Some("writer3"),
                "node {w} shows the wrong winner"
            );
        }
    }

    #[test]
    fn complaining_raises_the_floor_and_resolves() {
        let mut eng = session(4, 0.90, 3);
        for _ in 0..3 {
            for w in 0..4u32 {
                eng.with_node(NodeId(w), |c, ctx| {
                    c.draw(w as u16, 0, "x", ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
        }
        eng.run_for(SimDuration::from_secs(1));
        let floor_before = eng.node(NodeId(0)).report().hint_floor;
        eng.with_node(NodeId(0), |c, ctx| c.complain(None, ctx));
        eng.run_for(SimDuration::from_secs(3));
        let floor_after = eng.node(NodeId(0)).report().hint_floor;
        assert!(floor_after > floor_before, "complaint must raise the floor");
    }

    #[test]
    fn reweighting_changes_the_quantifier() {
        let mut eng = session(4, 0.90, 4);
        eng.with_node(NodeId(0), |c, ctx| {
            c.complain(Some(Weights::new(0.1, 0.1, 0.8)), ctx);
        });
        let w = eng.node(NodeId(0)).idea().quantifier().weights();
        assert!((w.staleness - 0.8).abs() < 1e-9);
    }

    #[test]
    fn default_weights_prioritise_order() {
        let c = WhiteboardClient::new(NodeId(0), BOARD, 0.0);
        let w = c.idea().quantifier().weights();
        assert!(w.order > w.numerical);
        assert!(w.order > w.staleness);
    }
}
