//! Optimistic consistency control (Bayou-flavoured anti-entropy).
//!
//! Writes commit locally and immediately; a periodic anti-entropy timer
//! picks one random peer and sends it a digest; the peer ships back whatever
//! the requester misses. No conflict detection, no user interface: the
//! system converges eventually and silently — the left end of the paper's
//! Figure-2 spectrum (lowest overhead, slowest inconsistency detection).

use crate::messages::BaselineMsg;
use idea_net::{Context, Proto, TimerId};
use idea_store::NodeStore;
use idea_types::{NodeId, ObjectId, SimDuration, Update, UpdatePayload, WriterId};
use rand::Rng;

const K_SYNC: u64 = 1;

/// An optimistic (anti-entropy) replica node.
pub struct OptimisticNode {
    me: NodeId,
    object: ObjectId,
    store: NodeStore,
    sync_period: SimDuration,
    syncs: u64,
}

impl OptimisticNode {
    /// Builds a node replicating `object`, anti-entropying every `period`.
    pub fn new(me: NodeId, object: ObjectId, period: SimDuration) -> Self {
        let mut store = NodeStore::new(me, WriterId(me.0));
        store.open(object);
        OptimisticNode { me, object, store, sync_period: period, syncs: 0 }
    }

    /// Local write: applies immediately, nothing else happens until the next
    /// anti-entropy exchange.
    pub fn local_write(
        &mut self,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<BaselineMsg>,
    ) -> Update {
        self.store.write(self.object, ctx.now(), meta_delta, payload)
    }

    /// The underlying store (oracle access).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Anti-entropy exchanges initiated.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl Proto for OptimisticNode {
    type Msg = BaselineMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<BaselineMsg>) {
        // Stagger first syncs so the fleet doesn't fire in lock-step.
        let stagger =
            SimDuration::from_micros(self.sync_period.as_micros() * (self.me.0 as u64 % 8) / 8);
        ctx.set_timer(self.sync_period + stagger, K_SYNC);
    }

    fn on_message(&mut self, from: NodeId, msg: BaselineMsg, ctx: &mut dyn Context<BaselineMsg>) {
        match msg {
            BaselineMsg::SyncDigest { object, counters } => {
                let Ok(replica) = self.store.replica(object) else {
                    return;
                };
                let updates = replica.updates_beyond(&counters);
                if !updates.is_empty() {
                    ctx.send(from, BaselineMsg::SyncUpdates { object, updates });
                }
            }
            BaselineMsg::SyncUpdates { updates, .. } => {
                for u in updates {
                    let _ = self.store.ingest(u);
                }
            }
            // Strong-protocol traffic is not ours; ignore defensively.
            BaselineMsg::Propagate { .. } | BaselineMsg::PropagateAck { .. } => {}
        }
    }

    fn on_timer(&mut self, _t: TimerId, kind: u64, ctx: &mut dyn Context<BaselineMsg>) {
        if kind != K_SYNC {
            return;
        }
        ctx.set_timer(self.sync_period, K_SYNC);
        let n = ctx.node_count() as u32;
        if n <= 1 {
            return;
        }
        // Pull from one random peer.
        let peer = loop {
            let cand = NodeId(ctx.rng().gen_range(0..n));
            if cand != self.me {
                break cand;
            }
        };
        self.syncs += 1;
        let counters =
            self.store.replica(self.object).expect("opened").version().counters().clone();
        ctx.send(peer, BaselineMsg::SyncDigest { object: self.object, counters });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};
    use idea_types::SimTime;

    const OBJ: ObjectId = ObjectId(1);

    fn cluster(n: usize, period_s: u64, seed: u64) -> SimEngine<OptimisticNode> {
        let nodes = (0..n)
            .map(|i| OptimisticNode::new(NodeId(i as u32), OBJ, SimDuration::from_secs(period_s)))
            .collect();
        SimEngine::new(Topology::lan(n), SimConfig { seed, ..Default::default() }, nodes)
    }

    #[test]
    fn writes_are_local_until_sync() {
        let mut eng = cluster(4, 10, 1);
        eng.with_node(NodeId(0), |p, ctx| {
            p.local_write(5, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
        eng.run_until(SimTime::from_secs(5));
        // No sync yet: peers have nothing.
        assert_eq!(eng.node(NodeId(1)).store().read(OBJ).unwrap().updates, 0);
    }

    #[test]
    fn anti_entropy_converges_eventually() {
        let mut eng = cluster(4, 5, 2);
        for w in 0..4u32 {
            eng.with_node(NodeId(w), |p, ctx| {
                p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
        }
        // Plenty of periods: random pulls cover all pairs with high
        // probability.
        eng.run_until(SimTime::from_secs(200));
        for n in 0..4u32 {
            let snap = eng.node(NodeId(n)).store().read(OBJ).unwrap();
            assert_eq!(snap.updates, 4, "node {n} did not converge");
            assert_eq!(snap.meta, 4);
        }
        assert!(eng.node(NodeId(0)).syncs() > 10);
    }

    #[test]
    fn sync_traffic_is_periodic_not_per_write() {
        let mut eng = cluster(4, 10, 3);
        for _ in 0..10 {
            eng.with_node(NodeId(0), |p, ctx| {
                p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
        }
        eng.run_until(SimTime::from_secs(40));
        // ~4 nodes × 4 periods of digests, plus a few transfers — far fewer
        // than one message per write per peer.
        let digests = eng.stats().messages(idea_net::MsgClass::Detect);
        assert!(digests <= 20, "digests {digests}");
    }
}
