//! Messages shared by the baseline protocols.

use idea_net::{MsgClass, Wire};
use idea_types::{ObjectId, Update, UpdateId};
use idea_vv::VersionVector;
use serde::{Deserialize, Serialize};

/// Wire messages of the three baseline protocols.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BaselineMsg {
    /// Optimistic anti-entropy: "here are my counters" (one-way pull).
    SyncDigest {
        /// Object being synchronised.
        object: ObjectId,
        /// The sender's counters.
        counters: VersionVector,
    },
    /// Anti-entropy response / TACT push: the updates the peer was missing.
    SyncUpdates {
        /// Object being synchronised.
        object: ObjectId,
        /// Updates shipped.
        updates: Vec<Update>,
    },
    /// Strong consistency: eager synchronous propagation of one update.
    Propagate {
        /// Object written.
        object: ObjectId,
        /// The update itself.
        update: Update,
    },
    /// Strong consistency: acknowledgement of a propagated update.
    PropagateAck {
        /// Object written.
        object: ObjectId,
        /// Identity of the acknowledged update.
        id: UpdateId,
    },
}

impl Wire for BaselineMsg {
    fn class(&self) -> MsgClass {
        match self {
            BaselineMsg::SyncDigest { .. } => MsgClass::Detect,
            BaselineMsg::SyncUpdates { .. } => MsgClass::Transfer,
            BaselineMsg::Propagate { .. } => MsgClass::Transfer,
            BaselineMsg::PropagateAck { .. } => MsgClass::ResolutionCtl,
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            BaselineMsg::SyncDigest { counters, .. } => 16 + 12 * counters.writers(),
            BaselineMsg::SyncUpdates { updates, .. } => {
                16 + updates.iter().map(|u| u.wire_size()).sum::<usize>()
            }
            BaselineMsg::Propagate { update, .. } => 16 + update.wire_size(),
            BaselineMsg::PropagateAck { .. } => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::{SimTime, WriterId};

    #[test]
    fn classes_and_sizes() {
        let digest = BaselineMsg::SyncDigest {
            object: ObjectId(0),
            counters: VersionVector::from_pairs([(WriterId(0), 3)]),
        };
        assert_eq!(digest.class(), MsgClass::Detect);
        assert!(digest.wire_size() > 16);

        let u = Update::opaque(ObjectId(0), WriterId(0), 1, SimTime::ZERO, 1);
        let push = BaselineMsg::SyncUpdates { object: ObjectId(0), updates: vec![u.clone()] };
        assert_eq!(push.class(), MsgClass::Transfer);
        let prop = BaselineMsg::Propagate { object: ObjectId(0), update: u };
        assert_eq!(push.wire_size(), prop.wire_size());
        assert_eq!(
            BaselineMsg::PropagateAck { object: ObjectId(0), id: prop_id(&prop) }.class(),
            MsgClass::ResolutionCtl
        );
    }

    fn prop_id(m: &BaselineMsg) -> idea_types::UpdateId {
        match m {
            BaselineMsg::Propagate { update, .. } => update.id,
            _ => unreachable!(),
        }
    }
}
