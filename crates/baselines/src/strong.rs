//! Strong consistency: synchronous write-all replication.
//!
//! Every write is eagerly propagated to every replica and only *commits*
//! when all acknowledgements return — multiversion-locking flavour
//! (the paper's ref \[1\]) reduced to its cost essence: per-write latency of
//! a full WAN round-trip and per-write fan-out traffic. The right end of
//! the Figure-2 spectrum: highest overhead, instant "detection" (conflicts
//! cannot accumulate).

use crate::messages::BaselineMsg;
use idea_net::{Context, Proto};
use idea_store::NodeStore;
use idea_types::{
    NodeId, ObjectId, SimDuration, SimTime, Update, UpdateId, UpdatePayload, WriterId,
};
use std::collections::HashMap;

/// A strongly-consistent replica node (write-all, ack-all).
pub struct StrongNode {
    me: NodeId,
    object: ObjectId,
    store: NodeStore,
    /// In-flight writes: update id → (acks outstanding, issue time).
    pending: HashMap<UpdateId, (usize, SimTime)>,
    /// Commit latencies of completed writes.
    commit_latencies: Vec<SimDuration>,
}

impl StrongNode {
    /// Builds a node replicating `object`.
    pub fn new(me: NodeId, object: ObjectId) -> Self {
        let mut store = NodeStore::new(me, WriterId(me.0));
        store.open(object);
        StrongNode { me, object, store, pending: HashMap::new(), commit_latencies: Vec::new() }
    }

    /// Issues a write: applies locally and propagates to every other node;
    /// the write is *committed* when all acks return.
    pub fn local_write(
        &mut self,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<BaselineMsg>,
    ) -> Update {
        let update = self.store.write(self.object, ctx.now(), meta_delta, payload);
        let others = ctx.node_count() - 1;
        if others == 0 {
            self.commit_latencies.push(SimDuration::ZERO);
            return update;
        }
        self.pending.insert(update.id, (others, ctx.now()));
        for i in 0..ctx.node_count() as u32 {
            let to = NodeId(i);
            if to != self.me {
                ctx.send(
                    to,
                    BaselineMsg::Propagate { object: self.object, update: update.clone() },
                );
            }
        }
        update
    }

    /// The underlying store (oracle access).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Latencies of committed writes (one WAN RTT each).
    pub fn commit_latencies(&self) -> &[SimDuration] {
        &self.commit_latencies
    }

    /// Writes still awaiting acknowledgements.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

impl Proto for StrongNode {
    type Msg = BaselineMsg;

    fn on_message(&mut self, from: NodeId, msg: BaselineMsg, ctx: &mut dyn Context<BaselineMsg>) {
        match msg {
            BaselineMsg::Propagate { object, update } => {
                let id = update.id;
                let _ = self.store.ingest(update);
                ctx.send(from, BaselineMsg::PropagateAck { object, id });
            }
            BaselineMsg::PropagateAck { id, .. } => {
                if let Some((left, issued)) = self.pending.get_mut(&id) {
                    *left -= 1;
                    if *left == 0 {
                        let issued = *issued;
                        self.pending.remove(&id);
                        self.commit_latencies.push(ctx.now().saturating_since(issued));
                    }
                }
            }
            BaselineMsg::SyncDigest { .. } | BaselineMsg::SyncUpdates { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{MsgClass, SimConfig, SimEngine, Topology};

    const OBJ: ObjectId = ObjectId(1);

    fn cluster(n: usize, seed: u64) -> SimEngine<StrongNode> {
        let nodes = (0..n).map(|i| StrongNode::new(NodeId(i as u32), OBJ)).collect();
        SimEngine::new(
            Topology::planetlab(n, seed),
            SimConfig { seed, ..Default::default() },
            nodes,
        )
    }

    #[test]
    fn writes_reach_everyone_immediately() {
        let mut eng = cluster(4, 1);
        eng.with_node(NodeId(2), |p, ctx| {
            p.local_write(7, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
        eng.run_for(SimDuration::from_secs(1));
        for n in 0..4u32 {
            assert_eq!(eng.node(NodeId(n)).store().read(OBJ).unwrap().meta, 7);
        }
    }

    #[test]
    fn commit_latency_is_a_wan_round_trip() {
        let mut eng = cluster(4, 2);
        eng.with_node(NodeId(0), |p, ctx| {
            p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
        eng.run_for(SimDuration::from_secs(2));
        let lat = eng.node(NodeId(0)).commit_latencies();
        assert_eq!(lat.len(), 1);
        assert_eq!(eng.node(NodeId(0)).in_flight(), 0);
        // Cross-region RTT ≈ 80–120 ms; commit waits for the slowest peer.
        assert!(lat[0] >= SimDuration::from_millis(60), "latency {}", lat[0]);
        assert!(lat[0] <= SimDuration::from_millis(200), "latency {}", lat[0]);
    }

    #[test]
    fn per_write_fanout_traffic() {
        let mut eng = cluster(5, 3);
        for _ in 0..3 {
            eng.with_node(NodeId(0), |p, ctx| {
                p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(2));
        // 3 writes × 4 propagates + 4 acks.
        assert_eq!(eng.stats().messages(MsgClass::Transfer), 12);
        assert_eq!(eng.stats().messages(MsgClass::ResolutionCtl), 12);
    }

    #[test]
    fn single_node_commits_instantly() {
        let mut eng = cluster(1, 4);
        eng.with_node(NodeId(0), |p, ctx| {
            p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
        eng.run_for(SimDuration::from_millis(10));
        assert_eq!(eng.node(NodeId(0)).commit_latencies(), &[SimDuration::ZERO]);
    }
}
