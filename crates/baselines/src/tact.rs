//! TACT-style bounded consistency (Yu & Vahdat, OSDI 2000).
//!
//! TACT *enforces a predefined consistency level*: each replica bounds its
//! conit error and pushes pending writes to every peer before a bound would
//! be violated. We implement the two bounds that map onto the paper's
//! workload — **order error** (number of local writes not yet seen by
//! peers) and **staleness** (age of the oldest unpushed write). This is the
//! fixed-level comparator that IDEA's *adaptive* control is contrasted with
//! in §7.1: "Instead of tightly bound a system's predefined consistency
//! level as was the case in TACT, IDEA … adaptively maintain[s an]
//! acceptable consistency level".

use crate::messages::BaselineMsg;
use idea_net::{Context, Proto, TimerId};
use idea_store::NodeStore;
use idea_types::{NodeId, ObjectId, SimDuration, SimTime, Update, UpdatePayload, WriterId};
use serde::{Deserialize, Serialize};

const K_STALENESS: u64 = 1;

/// The enforced conit bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TactBounds {
    /// Maximum local writes a peer may be behind before a push (order
    /// error bound).
    pub order: usize,
    /// Maximum age of an unpushed write before a push (staleness bound).
    pub staleness: SimDuration,
}

impl Default for TactBounds {
    fn default() -> Self {
        TactBounds { order: 4, staleness: SimDuration::from_secs(15) }
    }
}

/// A TACT replica node enforcing fixed conit bounds.
pub struct TactNode {
    me: NodeId,
    object: ObjectId,
    store: NodeStore,
    bounds: TactBounds,
    /// Local writes not yet pushed to peers (in issue order).
    unpushed: Vec<Update>,
    /// Issue time of the oldest unpushed write.
    oldest_unpushed: Option<SimTime>,
    pushes: u64,
}

impl TactNode {
    /// Builds a node replicating `object` under `bounds`.
    pub fn new(me: NodeId, object: ObjectId, bounds: TactBounds) -> Self {
        let mut store = NodeStore::new(me, WriterId(me.0));
        store.open(object);
        TactNode {
            me,
            object,
            store,
            bounds,
            unpushed: Vec::new(),
            oldest_unpushed: None,
            pushes: 0,
        }
    }

    /// Local write; triggers a push when the order bound is reached.
    pub fn local_write(
        &mut self,
        meta_delta: i64,
        payload: UpdatePayload,
        ctx: &mut dyn Context<BaselineMsg>,
    ) -> Update {
        let update = self.store.write(self.object, ctx.now(), meta_delta, payload);
        if self.oldest_unpushed.is_none() {
            self.oldest_unpushed = Some(ctx.now());
            ctx.set_timer(self.bounds.staleness, K_STALENESS);
        }
        self.unpushed.push(update.clone());
        if self.unpushed.len() >= self.bounds.order {
            self.push_all(ctx);
        }
        update
    }

    /// Pushes completed so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// The underlying store (oracle access).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Writes buffered awaiting a bound violation.
    pub fn unpushed(&self) -> usize {
        self.unpushed.len()
    }

    fn push_all(&mut self, ctx: &mut dyn Context<BaselineMsg>) {
        if self.unpushed.is_empty() {
            return;
        }
        let updates = std::mem::take(&mut self.unpushed);
        self.oldest_unpushed = None;
        self.pushes += 1;
        for i in 0..ctx.node_count() as u32 {
            let to = NodeId(i);
            if to != self.me {
                ctx.send(
                    to,
                    BaselineMsg::SyncUpdates { object: self.object, updates: updates.clone() },
                );
            }
        }
    }
}

impl Proto for TactNode {
    type Msg = BaselineMsg;

    fn on_message(&mut self, _from: NodeId, msg: BaselineMsg, _ctx: &mut dyn Context<BaselineMsg>) {
        match msg {
            BaselineMsg::SyncUpdates { updates, .. } => {
                for u in updates {
                    let _ = self.store.ingest(u);
                }
            }
            BaselineMsg::SyncDigest { .. }
            | BaselineMsg::Propagate { .. }
            | BaselineMsg::PropagateAck { .. } => {}
        }
    }

    fn on_timer(&mut self, _t: TimerId, kind: u64, ctx: &mut dyn Context<BaselineMsg>) {
        if kind != K_STALENESS {
            return;
        }
        // The staleness bound expired for the oldest unpushed write.
        if let Some(oldest) = self.oldest_unpushed {
            if ctx.now().saturating_since(oldest) >= self.bounds.staleness {
                self.push_all(ctx);
            } else {
                // Re-arm for the remainder (a newer write restarted the
                // window).
                let remaining = self.bounds.staleness - ctx.now().saturating_since(oldest);
                ctx.set_timer(remaining, K_STALENESS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_net::{SimConfig, SimEngine, Topology};

    const OBJ: ObjectId = ObjectId(1);

    fn cluster(n: usize, bounds: TactBounds, seed: u64) -> SimEngine<TactNode> {
        let nodes = (0..n).map(|i| TactNode::new(NodeId(i as u32), OBJ, bounds)).collect();
        SimEngine::new(Topology::lan(n), SimConfig { seed, ..Default::default() }, nodes)
    }

    fn write(eng: &mut SimEngine<TactNode>, node: u32) {
        eng.with_node(NodeId(node), |p, ctx| {
            p.local_write(1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
        });
    }

    #[test]
    fn order_bound_forces_push() {
        let bounds = TactBounds { order: 3, staleness: SimDuration::from_secs(1_000) };
        let mut eng = cluster(3, bounds, 1);
        write(&mut eng, 0);
        write(&mut eng, 0);
        eng.run_for(SimDuration::from_secs(1));
        // Two writes: below the bound, nothing pushed.
        assert_eq!(eng.node(NodeId(1)).store().read(OBJ).unwrap().updates, 0);
        assert_eq!(eng.node(NodeId(0)).unpushed(), 2);
        write(&mut eng, 0); // third write hits the bound
        eng.run_for(SimDuration::from_secs(1));
        assert_eq!(eng.node(NodeId(1)).store().read(OBJ).unwrap().updates, 3);
        assert_eq!(eng.node(NodeId(0)).pushes(), 1);
        assert_eq!(eng.node(NodeId(0)).unpushed(), 0);
    }

    #[test]
    fn staleness_bound_forces_push() {
        let bounds = TactBounds { order: 100, staleness: SimDuration::from_secs(10) };
        let mut eng = cluster(3, bounds, 2);
        write(&mut eng, 0);
        eng.run_for(SimDuration::from_secs(5));
        assert_eq!(eng.node(NodeId(2)).store().read(OBJ).unwrap().updates, 0);
        eng.run_for(SimDuration::from_secs(6));
        // The 10 s staleness bound expired: everyone has the write.
        assert_eq!(eng.node(NodeId(2)).store().read(OBJ).unwrap().updates, 1);
    }

    #[test]
    fn bounded_divergence_never_exceeds_order_bound() {
        let bounds = TactBounds { order: 4, staleness: SimDuration::from_secs(1_000) };
        let mut eng = cluster(2, bounds, 3);
        for _ in 0..20 {
            write(&mut eng, 0);
            eng.run_for(SimDuration::from_millis(100));
            let behind = eng.node(NodeId(0)).store().read(OBJ).unwrap().updates
                - eng.node(NodeId(1)).store().read(OBJ).unwrap().updates;
            assert!(behind < 4 + 1, "peer fell {behind} behind, bound is 4");
        }
    }

    #[test]
    fn pushes_batch_rather_than_per_write() {
        let bounds = TactBounds { order: 5, staleness: SimDuration::from_secs(1_000) };
        let mut eng = cluster(4, bounds, 4);
        for _ in 0..10 {
            write(&mut eng, 0);
        }
        eng.run_for(SimDuration::from_secs(1));
        // 10 writes, order bound 5 → exactly 2 pushes of a 3-message fanout.
        assert_eq!(eng.node(NodeId(0)).pushes(), 2);
        assert_eq!(eng.stats().messages(idea_net::MsgClass::Transfer), 6);
    }
}
