//! Baseline consistency protocols for the Figure-2 trade-off study.
//!
//! Figure 2 of the paper positions IDEA between **optimistic consistency
//! control** ("the de facto consistency protocol in large distributed
//! systems" — slower detection, lowest overhead) and **strong consistency**
//! (fast "detection" by construction, highest overhead). The related-work
//! comparison adds **TACT** (Yu & Vahdat, OSDI 2000), which *bounds*
//! inconsistency at a predefined level rather than adapting it.
//!
//! All three baselines run on the same engines and store as IDEA, so the
//! trade-off ablation (`idea-bench --bin fig2`) measures them under an
//! identical workload and an identical consistency oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod optimistic;
pub mod strong;
pub mod tact;

pub use messages::BaselineMsg;
pub use optimistic::OptimisticNode;
pub use strong::StrongNode;
pub use tact::{TactBounds, TactNode};
