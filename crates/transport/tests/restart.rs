//! Served-engine restart pins: a durability-enabled `ShardedEngine` behind
//! `IdeaServer`/`RemoteEngine` over real loopback TCP survives both a
//! clean shutdown and an unflushed kill, and restarts into a node whose
//! replica content (`state_hash`) is bit-identical — then serves again.
//!
//! This is the test the CI `crash-recovery-smoke` job drives in release
//! mode.

use idea_core::{Command, DurabilityConfig, IdeaConfig, IdeaNode, Response, Session};
use idea_net::{ShardedEngine, ThreadedConfig, Topology};
use idea_transport::{IdeaServer, RemoteEngine};
use idea_types::{NodeId, ObjectId, UpdatePayload};
use idea_wal::ShardWal;
use std::sync::Arc;

const OBJECTS: [ObjectId; 4] = [ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(7)];
const N: usize = 2;
const SHARDS: usize = 2;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("idea-transport-restart-{}-{tag}", std::process::id()))
}

fn cfg_with(dir: std::path::PathBuf) -> IdeaConfig {
    IdeaConfig {
        store_shards: SHARDS,
        durability: DurabilityConfig::sync(dir),
        ..IdeaConfig::default()
    }
}

fn build(nodes: Vec<IdeaNode>) -> ShardedEngine<IdeaNode> {
    ShardedEngine::start(
        Topology::lan(N),
        ThreadedConfig { seed: 5, time_scale: 0.01, shards: SHARDS },
        nodes,
    )
}

fn fresh_nodes(cfg: &IdeaConfig) -> Vec<IdeaNode> {
    (0..N).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &OBJECTS)).collect()
}

/// Drives an acknowledged write workload through the remote session layer:
/// every write below was applied (and, under Sync, persisted) before this
/// function returns.
fn workload(remote: &mut RemoteEngine, rounds: i64) {
    for round in 0..rounds {
        for node in 0..N as u32 {
            for &obj in &OBJECTS {
                let mut session = Session::open(remote, NodeId(node));
                session
                    .object(obj)
                    .write(round + 1 + i64::from(node), UpdatePayload::none())
                    .expect("acknowledged write");
            }
        }
    }
}

fn meta_of(remote: &mut RemoteEngine, node: u32, obj: ObjectId) -> i64 {
    match Session::open(remote, NodeId(node)).execute(Command::Peek { object: obj }) {
        Response::Value { read } => read.meta,
        other => panic!("peek failed: {other:?}"),
    }
}

/// Serve → workload → clean shutdown (flush) → empty WAL tails → recover →
/// bit-identical content → serve the recovered deployment again.
#[test]
fn clean_shutdown_flushes_and_recovers_bit_identical() {
    let dir = tmp_dir("clean");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(dir.clone());

    // Phase 1: serve a fresh deployment and drive acknowledged writes.
    let engine = Arc::new(build(fresh_nodes(&cfg)));
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect_pool(server.local_addr(), 2).expect("connect pool");
    workload(&mut remote, 3);
    let metas: Vec<i64> = OBJECTS.iter().map(|&o| meta_of(&mut remote, 0, o)).collect();

    // Clean shutdown: release the server, take the nodes back, flush.
    server.stop();
    drop(remote);
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let mut nodes = engine.stop();
    let hashes: Vec<u64> = nodes.iter().map(IdeaNode::state_hash).collect();
    for node in &mut nodes {
        node.flush_durability();
    }
    drop(nodes);

    // The clean-shutdown invariant: every shard's WAL tail is empty.
    for n in 0..N as u32 {
        for s in 0..SHARDS as u32 {
            let r = ShardWal::load(&cfg.durability, NodeId(n), s).expect("readable WAL");
            assert!(r.tail.is_empty(), "node {n} shard {s}: non-empty tail after flush");
            assert_eq!(r.torn_bytes, 0, "node {n} shard {s}: torn bytes after clean stop");
        }
    }

    // Restart: recover every node and pin content bit-identical.
    let recovered: Vec<IdeaNode> = (0..N as u32)
        .map(|i| IdeaNode::recover(NodeId(i), cfg.clone(), &OBJECTS).expect("valid config"))
        .collect();
    for (i, (node, &h)) in recovered.iter().zip(&hashes).enumerate() {
        assert_eq!(node.state_hash(), h, "node {i}: recovered state diverged");
    }

    // The recovered deployment serves again, with the pre-restart values.
    let engine = Arc::new(build(recovered));
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr()).expect("connect");
    for (&obj, &meta) in OBJECTS.iter().zip(&metas) {
        assert_eq!(meta_of(&mut remote, 0, obj), meta, "{obj:?}: meta lost across restart");
    }
    server.stop();
    drop(remote);
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let _ = engine.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill without a flush: under Sync every acknowledged write hit the log
/// before its response, so recovery replays the whole tail and lands on
/// exactly the killed node's state — and keeps serving new writes.
#[test]
fn unflushed_kill_recovers_every_acknowledged_write() {
    let dir = tmp_dir("kill");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cfg_with(dir.clone());

    let engine = Arc::new(build(fresh_nodes(&cfg)));
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr()).expect("connect");
    workload(&mut remote, 2);

    // Kill: tear the service down with NO durability flush — the WAL tail
    // alone must carry the state.
    server.stop();
    drop(remote);
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let nodes = engine.stop();
    let hashes: Vec<u64> = nodes.iter().map(IdeaNode::state_hash).collect();
    drop(nodes);

    let recovered: Vec<IdeaNode> = (0..N as u32)
        .map(|i| IdeaNode::recover(NodeId(i), cfg.clone(), &OBJECTS).expect("valid config"))
        .collect();
    for (i, (node, &h)) in recovered.iter().zip(&hashes).enumerate() {
        assert_eq!(node.state_hash(), h, "node {i}: unflushed recovery diverged");
        assert!(h != 0, "node {i}: workload must leave non-empty content");
    }

    // The recovered deployment accepts new writes where the old left off.
    let engine = Arc::new(build(recovered));
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr()).expect("connect");
    let before = meta_of(&mut remote, 0, OBJECTS[0]);
    let update = Session::open(&mut remote, NodeId(0))
        .object(OBJECTS[0])
        .write(7, UpdatePayload::none())
        .expect("write after restart");
    assert!(update.seq() > 2, "writer sequence must resume, not restart: {}", update.seq());
    assert_eq!(meta_of(&mut remote, 0, OBJECTS[0]), before + 7);

    server.stop();
    drop(remote);
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let _ = engine.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
