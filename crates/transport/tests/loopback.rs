//! Loopback equivalence: the acceptance pin for the served system.
//!
//! 1. A fixed session trace driven through
//!    `RemoteEngine → TCP → IdeaServer → LockedEngine<SimEngine>`
//!    reproduces the in-process PR-4 trace **bit-for-bit** (the
//!    deterministic engine is the one whose responses are reproducible
//!    down to the timestamp, which is what makes a byte-level comparison
//!    honest).
//! 2. The same remote session function runs against a served
//!    `ShardedEngine` over real TCP — the write path's deterministic
//!    projection (sanctioned update identities) matches the in-process
//!    run, and errors crossing the wire are the identical typed values.

use idea_core::client::ReadConsistency;
use idea_core::quantify::Weights;
use idea_core::resolution::ResolutionPolicy;
use idea_core::{
    Command, ConsistencySpec, EngineHandle, IdeaConfig, IdeaNode, LockedEngine, Response, Session,
};
use idea_net::{ShardedEngine, SimConfig, SimEngine, ThreadedConfig, Topology};
use idea_transport::{IdeaServer, RemoteEngine, WireCodec};
use idea_types::{ConsistencyLevel, NodeId, ObjectId, SimDuration, UpdatePayload, WireError};
use std::sync::Arc;

const OBJ_A: ObjectId = ObjectId(1);
const OBJ_B: ObjectId = ObjectId(7);
const MISSING: ObjectId = ObjectId(99);
const N: usize = 3;

fn sim_engine() -> SimEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> = (0..N)
        .map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::default(), &[OBJ_A, OBJ_B]))
        .collect();
    SimEngine::new(Topology::lan(N), SimConfig { seed: 11, ..Default::default() }, nodes)
}

/// The fixed-seed session trace: every command variant, valid and invalid,
/// across nodes and objects. Timing-free, so the deterministic engine
/// produces the identical byte stream on every run.
fn script() -> Vec<(u32, Command)> {
    let spec = ConsistencySpec::builder()
        .metric(10.0, 10.0, SimDuration::from_secs(10))
        .weights(0.3, 0.3, 0.4)
        .resolution(ResolutionPolicy::PriorityWins)
        .hint(0.8)
        .build()
        .expect("valid spec");
    let mut ops: Vec<(u32, Command)> = vec![
        (0, Command::Configure { spec }),
        (1, Command::SetHint { hint: 0.9 }),
        (2, Command::SetResolution { code: 2 }),
        (0, Command::SetPriority { node: NodeId(2), priority: 7 }),
    ];
    for round in 0..4i64 {
        for node in 0..N as u32 {
            ops.push((
                node,
                Command::Write {
                    object: OBJ_A,
                    meta_delta: round + i64::from(node),
                    payload: UpdatePayload::Stroke { x: 1, y: 2, text: "s".into() },
                },
            ));
            ops.push((
                node,
                Command::Write { object: OBJ_B, meta_delta: 2, payload: UpdatePayload::none() },
            ));
        }
    }
    ops.push((0, Command::Read { object: OBJ_A, consistency: ReadConsistency::Any }));
    ops.push((
        1,
        Command::Read {
            object: OBJ_A,
            consistency: ReadConsistency::AtLeast(ConsistencyLevel::new(0.99)),
        },
    ));
    ops.push((2, Command::Read { object: OBJ_B, consistency: ReadConsistency::Fresh }));
    ops.push((0, Command::Peek { object: OBJ_B }));
    ops.push((1, Command::Level { object: OBJ_A }));
    ops.push((2, Command::Report { object: OBJ_A }));
    ops.push((0, Command::DemandResolution { object: OBJ_A }));
    ops.push((1, Command::Dissatisfied { object: OBJ_B, new_weights: None }));
    ops.push((2, Command::Dissatisfied { object: OBJ_B, new_weights: Some(Weights::WHITEBOARD) }));
    // Rejections must cross the wire as the identical typed errors.
    ops.push((0, Command::Peek { object: MISSING }));
    ops.push((
        1,
        Command::Write { object: MISSING, meta_delta: 1, payload: UpdatePayload::none() },
    ));
    ops.push((9, Command::Level { object: OBJ_A })); // unknown node
    ops.push((0, Command::SetHint { hint: 1.5 })); // out of domain
    ops.push((2, Command::Report { object: OBJ_B }));
    ops
}

/// Runs the script through any engine handle, collecting the responses.
fn drive<E: EngineHandle>(eng: &mut E) -> Vec<Response> {
    script().into_iter().map(|(node, cmd)| Session::open(eng, NodeId(node)).execute(cmd)).collect()
}

#[test]
fn remote_trace_is_bit_identical_to_in_process() {
    // In-process reference: the PR-4 surface, engine driven directly.
    let mut local = sim_engine();
    let local_trace = drive(&mut local);

    // Served run: identical engine behind LockedEngine → IdeaServer → TCP.
    let shared = Arc::new(LockedEngine::new(sim_engine()));
    let server = IdeaServer::bind("127.0.0.1:0", shared.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr()).expect("connect");
    assert_eq!(EngineHandle::nodes(&remote), N, "Hello must carry the deployment size");
    let remote_trace = drive(&mut remote);

    assert_eq!(remote_trace.len(), local_trace.len());
    for (i, (r, l)) in remote_trace.iter().zip(&local_trace).enumerate() {
        assert_eq!(r, l, "trace diverges at op {i}: {:?}", script()[i]);
        // Bit-for-bit, not just structurally equal.
        assert_eq!(r.to_bytes(), l.to_bytes(), "encoded bytes diverge at op {i}");
    }

    server.stop();
    drop(remote);
}

/// The same session function against a served ShardedEngine over real TCP:
/// the sanctioned-update identities of a sequential write drain are
/// deterministic (per-node writer sequence numbers), so they must match
/// the in-process run exactly even though the engine is threaded.
#[test]
fn remote_sharded_write_path_matches_in_process() {
    const SHARDS: usize = 2;
    const OBJECTS: [ObjectId; 4] = [ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(7)];
    let build = || -> ShardedEngine<IdeaNode> {
        let cfg = IdeaConfig { store_shards: SHARDS, ..IdeaConfig::default() };
        let nodes: Vec<IdeaNode> =
            (0..2).map(|i| IdeaNode::new(NodeId(i), cfg.clone(), &OBJECTS)).collect();
        ShardedEngine::start(
            Topology::lan(2),
            ThreadedConfig { seed: 5, time_scale: 0.01, shards: SHARDS },
            nodes,
        )
    };
    // Writes through an engine handle: returns (writer, seq, object, delta).
    fn written<E: EngineHandle>(eng: &mut E) -> Vec<(u32, u64, u64, i64)> {
        let mut out = Vec::new();
        for round in 0..3i64 {
            for &obj in &OBJECTS {
                let mut session = Session::open(eng, NodeId(0));
                let update =
                    session.object(obj).write(round + 1, UpdatePayload::none()).expect("write");
                out.push((update.writer().0, update.seq(), update.object.0, update.meta_delta));
            }
        }
        out
    }

    let mut local = build();
    let local_writes = written(&mut local);
    let _ = local.stop();

    let engine = Arc::new(build());
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect_pool(server.local_addr(), 2).expect("connect pool");
    let remote_writes = written(&mut remote);

    assert_eq!(remote_writes, local_writes, "write path diverges over the wire");

    // Rejections are the identical typed error, local and remote.
    let remote_rejection =
        Session::open(&mut remote, NodeId(0)).execute(Command::Peek { object: MISSING });
    assert_eq!(remote_rejection, Response::Rejected { error: WireError::UnknownObject(MISSING) });

    server.stop();
    drop(remote);
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let _ = engine.stop();
}

/// Once the server is gone, a remote command surfaces a typed transport
/// error — the boundary never panics.
#[test]
fn lost_server_is_a_typed_error_not_a_panic() {
    let shared = Arc::new(LockedEngine::new(sim_engine()));
    let server = IdeaServer::bind("127.0.0.1:0", shared).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr())
        .expect("connect")
        .with_response_timeout(std::time::Duration::from_secs(2));
    server.stop();
    // Writes may race the close notification; retry until the error shows.
    let mut last = None;
    for _ in 0..50 {
        match Session::open(&mut remote, NodeId(0)).execute(Command::Peek { object: OBJ_A }) {
            Response::Rejected { error } => {
                last = Some(error);
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    match last {
        Some(WireError::Transport(_)) | Some(WireError::Protocol(_)) => {}
        other => panic!("expected a typed transport error, got {other:?}"),
    }
}
