//! Event-loop-specific guarantees of the evented [`IdeaServer`]: an idle
//! server schedules zero wakeups, admission past the connection cap is a
//! *typed* rejection (never a hang), and a slow reader hitting the
//! write-queue high-water mark has its reads deferred without stalling
//! other connections.

use idea_core::{Command, CommandExecutor, Response};
use idea_transport::frame::{frame_bytes, read_frame, Frame, FramePayload, NO_REPLY};
use idea_transport::{IdeaServer, RemoteEngine, ServerConfig, ServerMode};
use idea_types::{NodeId, ObjectId, WireError};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An executor answering every command with a ~32 KiB response, inline on
/// the calling thread — bulk enough that a client who stops reading pushes
/// the server's write queue over any small high-water mark.
struct BlobExecutor;

const BLOB_BYTES: usize = 32 * 1024;

impl CommandExecutor for BlobExecutor {
    fn node_count(&self) -> usize {
        1
    }
    fn try_execute(&self, _node: NodeId, _cmd: Command) -> Result<Response, WireError> {
        Ok(Response::Rejected { error: WireError::Protocol("x".repeat(BLOB_BYTES)) })
    }
}

fn peek_frame(request_id: u64) -> Vec<u8> {
    frame_bytes(&Frame {
        request_id,
        node: NodeId(0),
        payload: FramePayload::Command(Command::Peek { object: ObjectId(1) }),
    })
    .unwrap()
}

/// Reads the server greeting off a raw socket.
fn expect_hello(stream: &mut TcpStream) {
    let frame = read_frame(stream).unwrap().expect("greeting");
    assert!(matches!(frame.payload, FramePayload::Hello { .. }), "{frame:?}");
}

/// An idle evented server blocks in its poll: zero wakeups while nothing
/// happens (the regression pin for the accept loop's old 20 ms sleep
/// poll), and wakeups only once a client actually connects.
#[test]
fn idle_server_schedules_no_wakeups() {
    if !mio::Poll::new().unwrap().is_os_backed() {
        // The portable fallback backend is *defined* by periodic spurious
        // wakeups; the zero-wakeup property only holds over a real OS
        // readiness queue.
        return;
    }
    let server =
        IdeaServer::bind_with("127.0.0.1:0", Arc::new(BlobExecutor), ServerConfig::default())
            .unwrap();
    assert_eq!(server.mode(), ServerMode::Evented);

    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(server.loop_wakeups(), 0, "idle server must not wake");

    let mut client = TcpStream::connect(server.local_addr()).unwrap();
    expect_hello(&mut client);
    assert!(server.loop_wakeups() >= 1);
    assert_eq!(server.connections_accepted(), 1);
}

/// A connection past `max_connections` is answered with the typed
/// `ServerAtCapacity` rejection — the client's connect call fails with
/// that exact error, promptly, and the slot frees once a live connection
/// closes.
#[test]
fn over_cap_connection_is_rejected_with_typed_error() {
    let server = IdeaServer::bind_with(
        "127.0.0.1:0",
        Arc::new(BlobExecutor),
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let first = RemoteEngine::connect(addr).unwrap();
    let _second = RemoteEngine::connect(addr).unwrap();

    let started = Instant::now();
    let Err(err) = RemoteEngine::connect(addr) else {
        panic!("third connection is over the cap and must be refused");
    };
    assert_eq!(err, WireError::ServerAtCapacity { limit: 2 });
    assert!(started.elapsed() < Duration::from_secs(5), "rejection must be prompt, not a hang");
    assert_eq!(server.connections_rejected(), 1);

    // Closing a live connection frees its admission slot (the server
    // notices the close on its next readiness event).
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match RemoteEngine::connect(addr) {
            Ok(_) => break,
            Err(WireError::ServerAtCapacity { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected connect failure: {e}"),
        }
    }
}

/// A client who stops reading has its *reads* parked once un-flushed
/// responses cross the high-water mark — other connections keep getting
/// served — and every owed response is still delivered once the slow
/// client drains.
#[test]
fn slow_reader_defers_reads_without_stalling_neighbours() {
    const COMMANDS: u64 = 300;
    let server = IdeaServer::bind_with(
        "127.0.0.1:0",
        Arc::new(BlobExecutor),
        ServerConfig { high_water_bytes: 64 * 1024, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // The slow reader: pipeline 300 commands (~9.6 MiB of responses) and
    // read nothing.
    let mut slow = TcpStream::connect(addr).unwrap();
    expect_hello(&mut slow);
    let mut burst = Vec::new();
    for id in 1..=COMMANDS {
        burst.extend_from_slice(&peek_frame(id));
    }
    slow.write_all(&burst).unwrap();

    // A neighbour connection stays fully served while the slow reader's
    // queue is parked at the high-water mark.
    let neighbour = RemoteEngine::connect(addr).unwrap();
    let started = Instant::now();
    for _ in 0..10 {
        let response = neighbour.try_execute(NodeId(0), Command::Peek { object: ObjectId(1) });
        assert!(matches!(response, Ok(Response::Rejected { .. })), "{response:?}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "neighbour stalled behind a backpressured connection"
    );

    // Now drain the slow connection: all 300 responses arrive, in request
    // order (one connection, one object, inline completions), none lost to
    // the defer/resume cycles.
    slow.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for expected_id in 1..=COMMANDS {
        let frame = read_frame(&mut slow).unwrap().expect("response stream ended early");
        assert_eq!(frame.request_id, expected_id);
        let FramePayload::Response(Response::Rejected { error: WireError::Protocol(blob) }) =
            frame.payload
        else {
            panic!("unexpected payload for request {expected_id}");
        };
        assert_eq!(blob.len(), BLOB_BYTES);
    }
    assert!(
        server.reads_deferred_total() >= 1,
        "the high-water mark was never crossed — the test lost its teeth"
    );
}

/// Fire-and-forget frames stay silent on the evented server too: a
/// NO_REPLY command produces no response frame, and the next correlated
/// command's response is the first thing on the wire.
#[test]
fn no_reply_commands_stay_silent() {
    let server =
        IdeaServer::bind_with("127.0.0.1:0", Arc::new(BlobExecutor), ServerConfig::default())
            .unwrap();
    let mut client = TcpStream::connect(server.local_addr()).unwrap();
    expect_hello(&mut client);

    let mut bytes = peek_frame(NO_REPLY);
    bytes.extend_from_slice(&peek_frame(42));
    client.write_all(&bytes).unwrap();

    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame = read_frame(&mut client).unwrap().expect("response");
    assert_eq!(frame.request_id, 42, "the NO_REPLY command must not be answered");
}
