//! The fire-and-forget pin: `submit` must genuinely pipeline — N submits
//! complete without N round-trip waits — on both the remote stub and the
//! in-process threaded engine.

use idea_core::{Command, CommandExecutor, EngineHandle, IdeaConfig, IdeaNode, Response, Session};
use idea_net::{ThreadedConfig, ThreadedEngine, Topology};
use idea_transport::{IdeaServer, RemoteEngine};
use idea_types::{NodeId, ObjectId, UpdatePayload, WireError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const OBJ: ObjectId = ObjectId(1);

/// An executor that takes `delay` per command — a stand-in for a busy
/// engine, making any hidden per-command round trip show up as wall time.
struct SlowExecutor {
    delay: Duration,
    applied: Mutex<Vec<Command>>,
}

impl SlowExecutor {
    fn new(delay: Duration) -> Self {
        SlowExecutor { delay, applied: Mutex::new(Vec::new()) }
    }
}

impl CommandExecutor for SlowExecutor {
    fn node_count(&self) -> usize {
        1
    }

    fn try_execute(&self, _node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        std::thread::sleep(self.delay);
        self.applied.lock().push(cmd);
        Ok(Response::Done)
    }
}

/// N submits against a server whose executor costs `DELAY` per command
/// must return in far less than N × DELAY: the client writes the frames
/// and moves on, while the server chews through them. The closing
/// blocking execute observes all previous commands applied (per-connection
/// arrival order), and the stats pin exactly one awaited round trip.
#[test]
fn remote_submits_pipeline_without_round_trips() {
    const WRITES: u64 = 15;
    const DELAY: Duration = Duration::from_millis(30);
    let executor = Arc::new(SlowExecutor::new(DELAY));
    let server = IdeaServer::bind("127.0.0.1:0", executor.clone()).expect("bind loopback");
    let mut remote = RemoteEngine::connect(server.local_addr()).expect("connect");

    let started = Instant::now();
    for i in 0..WRITES {
        remote.submit(
            NodeId(0),
            Command::Write { object: OBJ, meta_delta: i as i64, payload: UpdatePayload::none() },
        );
    }
    let submit_wall = started.elapsed();
    // Serial floor would be WRITES × DELAY = 450 ms; allow half before
    // declaring a hidden block.
    assert!(
        submit_wall < DELAY * (WRITES as u32) / 2,
        "submits took {submit_wall:?} — they are waiting on replies"
    );

    // One blocking command flushes the connection: the reader processes
    // frames in arrival order, so every submit has been applied by the
    // time its response arrives.
    let response = remote.execute(NodeId(0), Command::Peek { object: OBJ });
    assert_eq!(response, Response::Done, "SlowExecutor answers everything with Done");
    assert_eq!(
        executor.applied.lock().len() as u64,
        WRITES + 1,
        "all pipelined submits must be applied before the flush's response"
    );

    let stats = remote.stats();
    assert_eq!(stats.frames_sent, WRITES + 1);
    assert_eq!(stats.replies_awaited, 1, "only the flush may wait a round trip");

    server.stop();
}

/// The same pin for the in-process threaded engine: submits return while
/// the node's worker is busy, instead of queueing behind it for a reply.
#[test]
fn threaded_submits_do_not_block_on_a_busy_worker() {
    const WRITES: usize = 64;
    let nodes = vec![IdeaNode::new(NodeId(0), IdeaConfig::default(), &[OBJ])];
    let mut eng = ThreadedEngine::start(Topology::lan(1), ThreadedConfig::default(), nodes);

    // Occupy the node thread so any hidden execute-and-wait would stall.
    eng.invoke(NodeId(0), |_, _| std::thread::sleep(Duration::from_millis(400)));

    let started = Instant::now();
    let mut session = Session::open(&mut eng, NodeId(0));
    for i in 0..WRITES {
        session.submit(Command::Write {
            object: OBJ,
            meta_delta: i as i64,
            payload: UpdatePayload::none(),
        });
    }
    let submit_wall = started.elapsed();
    assert!(
        submit_wall < Duration::from_millis(200),
        "submits took {submit_wall:?} behind a 400 ms-busy worker — they are blocking"
    );

    // A blocking read drains the queue and sees every posted write.
    let read = Session::open(&mut eng, NodeId(0)).object(OBJ).peek().expect("peek");
    assert_eq!(read.updates, WRITES, "all fire-and-forget writes must apply in order");
    eng.stop();
}
