//! Codec pins: every `Command`/`Response` variant survives
//! encode → decode bit-for-bit, both bare and framed.
//!
//! One deterministic exhaustive pass covers each variant at least once
//! (so a forgotten tag fails loudly, not probabilistically), and a
//! proptest drives randomized payloads through the same round trip.

use bytes::Bytes;
use idea_core::client::ReadConsistency;
use idea_core::quantify::Weights;
use idea_core::resolution::ResolutionPolicy;
use idea_core::resolution::{ReferenceState, ReferenceWire};
use idea_core::{Command, ConsistencySpec, NodeReport, ReadResult, Response};
use idea_transport::frame::{frame_bytes, read_frame, Frame, FramePayload, NO_REPLY};
use idea_transport::WireCodec;
use idea_types::{
    ConsistencyLevel, NodeId, ObjectId, SimDuration, SimTime, Update, UpdateId, UpdatePayload,
    WireError, WriterId,
};
use idea_vv::{VersionVector, VvDelta, VvSummary, WriterSuffix};
use proptest::prelude::*;

// ====================================================================
// Strategies
// ====================================================================

fn arb_payload() -> impl Strategy<Value = UpdatePayload> {
    (0u8..3, prop::collection::vec(0u8..255, 0..12), (0u16..500, 0u16..500), 1i64..100_000)
        .prop_map(|(tag, bytes, (x, y), price)| match tag {
            0 => UpdatePayload::Opaque(Bytes::from(bytes)),
            1 => UpdatePayload::Stroke {
                x,
                y,
                text: bytes.iter().map(|b| char::from(b'a' + b % 26)).collect(),
            },
            _ => UpdatePayload::Booking {
                flight: u32::from(x),
                seats: u32::from(y),
                price_cents: price,
            },
        })
}

fn arb_level() -> impl Strategy<Value = ConsistencyLevel> {
    (0u64..1_000_001).prop_map(|ppm| ConsistencyLevel::new(ppm as f64 / 1e6))
}

fn arb_consistency() -> impl Strategy<Value = ReadConsistency> {
    (0u8..3, arb_level()).prop_map(|(tag, level)| match tag {
        0 => ReadConsistency::Any,
        1 => ReadConsistency::AtLeast(level),
        _ => ReadConsistency::Fresh,
    })
}

fn arb_weights() -> impl Strategy<Value = Weights> {
    (0u32..100, 0u32..100, 1u32..100).prop_map(|(a, b, c)| Weights {
        numerical: f64::from(a) / 10.0,
        order: f64::from(b) / 10.0,
        staleness: f64::from(c) / 10.0,
    })
}

fn arb_spec() -> impl Strategy<Value = ConsistencySpec> {
    ((0u8..2, 0u8..2, 0u8..2), (1u32..1000, 1u64..100, 1u64..120), arb_weights(), 0u32..101)
        .prop_map(|((has_metric, has_policy, has_background), (max, stale, period), w, hint)| {
            let mut b = ConsistencySpec::builder().weights(w.numerical, w.order, w.staleness);
            if has_metric == 1 {
                b = b.metric(f64::from(max), f64::from(max) / 2.0, SimDuration::from_secs(stale));
            }
            if has_policy == 1 {
                b = b.resolution(ResolutionPolicy::PriorityWins);
            }
            b = match has_background {
                1 => b.background_every(SimDuration::from_secs(period)),
                _ => b.hint(f64::from(hint) / 100.0),
            };
            b.build().expect("strategy emits valid specs")
        })
}

fn arb_command() -> impl Strategy<Value = Command> {
    (
        0u8..14,
        (0u64..64).prop_map(ObjectId),
        (-1_000i64..1_000, arb_payload()),
        (arb_consistency(), arb_weights(), 0u8..2),
        (1u64..3_600, 0u32..101, 1u8..4),
        arb_spec(),
    )
        .prop_map(
            |(
                tag,
                object,
                (meta_delta, payload),
                (consistency, w, opt),
                (secs, pct, code),
                spec,
            )| {
                match tag {
                    0 => Command::Write { object, meta_delta, payload },
                    1 => Command::Read { object, consistency },
                    2 => Command::Peek { object },
                    3 => Command::Level { object },
                    4 => Command::Report { object },
                    5 => Command::DemandResolution { object },
                    6 => Command::Dissatisfied { object, new_weights: (opt == 1).then_some(w) },
                    7 => Command::SetConsistencyMetric {
                        numerical_max: f64::from(pct) + 1.0,
                        order_max: f64::from(pct) + 2.0,
                        staleness_max: SimDuration::from_secs(secs),
                    },
                    8 => Command::SetWeight {
                        numerical: w.numerical,
                        order: w.order,
                        staleness: w.staleness,
                    },
                    9 => Command::SetResolution { code },
                    10 => Command::SetHint { hint: f64::from(pct) / 100.0 },
                    11 => Command::SetBackgroundFreq {
                        period: (opt == 1).then_some(SimDuration::from_secs(secs)),
                    },
                    12 => Command::SetPriority { node: NodeId(u32::from(code)), priority: code },
                    _ => Command::Configure { spec },
                }
            },
        )
}

fn arb_update() -> impl Strategy<Value = Update> {
    (
        (0u64..64).prop_map(ObjectId),
        (0u32..8, 1u64..1_000),
        0u64..600_000_000,
        -1_000i64..1_000,
        arb_payload(),
    )
        .prop_map(|(object, (writer, seq), at, meta_delta, payload)| Update {
            object,
            id: UpdateId { writer: WriterId(writer), seq },
            at: SimTime(at),
            meta_delta,
            payload,
        })
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    (0u8..13, 0u32..100, prop::collection::vec(0u8..255, 0..20)).prop_map(|(tag, n, bytes)| {
        let text: String = bytes.iter().map(|b| char::from(b' ' + b % 95)).collect();
        match tag {
            0 => WireError::UnknownNode(NodeId(n)),
            1 => WireError::UnknownObject(ObjectId(u64::from(n))),
            2 => WireError::NonConsecutiveSeq {
                writer: WriterId(n),
                expected: u64::from(n) + 1,
                got: u64::from(n) + 3,
            },
            3 => WireError::RollbackBeyondLog,
            4 => WireError::InvalidParameter(text),
            5 => WireError::InvalidConfig { field: text.clone(), reason: text },
            6 => WireError::NothingToResolve,
            7 => WireError::ResolutionContended,
            8 => WireError::HorizonExceeded,
            9 => WireError::EngineUnavailable(text),
            10 => WireError::Transport(text),
            11 => WireError::Protocol(text),
            _ => WireError::ServerAtCapacity { limit: n },
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..6,
        arb_update(),
        (arb_level(), arb_level(), 0u8..2),
        (0u64..20, 0usize..5_000, -1_000i64..1_000),
        prop::collection::vec((0u32..64).prop_map(NodeId), 0..8),
        arb_wire_error(),
    )
        .prop_map(
            |(tag, update, (level, floor, probed), (counts, updates, meta), members, error)| {
                match tag {
                    0 => Response::Done,
                    1 => Response::Written { update },
                    2 => Response::Value {
                        read: ReadResult {
                            object: update.object,
                            meta,
                            updates,
                            latest_update: (probed == 1).then_some(update.at),
                            level,
                            probed: probed == 1,
                        },
                    },
                    3 => Response::Level { level },
                    4 => Response::Report {
                        report: NodeReport {
                            node: NodeId(3),
                            level,
                            hint_floor: floor,
                            resolutions_initiated: counts,
                            rollbacks: counts / 2,
                            top_members: members,
                            meta,
                            updates,
                        },
                    },
                    _ => Response::Rejected { error },
                }
            },
        )
}

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    prop::collection::btree_map(0u32..16, 1u64..500, 0..6)
        .prop_map(|m| VersionVector::from_pairs(m.into_iter().map(|(w, c)| (WriterId(w), c))))
}

fn arb_suffixes() -> impl Strategy<Value = Vec<WriterSuffix>> {
    prop::collection::vec(
        (0u32..16, 1u64..100, prop::collection::vec(0u64..600_000_000, 0..5)),
        0..4,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(w, start_seq, times)| WriterSuffix {
                writer: WriterId(w),
                start_seq,
                times: times.into_iter().map(SimTime).collect(),
            })
            .collect()
    })
}

fn arb_reference_wire() -> impl Strategy<Value = ReferenceWire> {
    (0u8..2, 0u8..2, 0u32..8, arb_vv(), prop::collection::vec((0u32..16, 0u64..500), 0..5))
        .prop_map(|(tag, has_winner, winner, counts, diffs)| {
            let winner = (has_winner == 1).then_some(NodeId(winner));
            match tag {
                0 => ReferenceWire::Full(ReferenceState { winner, counts }),
                _ => ReferenceWire::Delta {
                    winner,
                    diffs: diffs.into_iter().map(|(w, c)| (WriterId(w), c)).collect(),
                },
            }
        })
}

// ====================================================================
// Deterministic exhaustive pass: one fixture per variant
// ====================================================================

fn fixture_commands() -> Vec<Command> {
    let obj = ObjectId(7);
    vec![
        Command::Write {
            object: obj,
            meta_delta: -42,
            payload: UpdatePayload::Stroke { x: 3, y: 9, text: "hi".into() },
        },
        Command::Write {
            object: obj,
            meta_delta: 1,
            payload: UpdatePayload::Booking { flight: 12, seats: 2, price_cents: 45_000 },
        },
        Command::Write { object: obj, meta_delta: 0, payload: UpdatePayload::none() },
        Command::Read { object: obj, consistency: ReadConsistency::Any },
        Command::Read {
            object: obj,
            consistency: ReadConsistency::AtLeast(ConsistencyLevel::new(0.87)),
        },
        Command::Read { object: obj, consistency: ReadConsistency::Fresh },
        Command::Peek { object: obj },
        Command::Level { object: obj },
        Command::Report { object: obj },
        Command::DemandResolution { object: obj },
        Command::Dissatisfied { object: obj, new_weights: None },
        Command::Dissatisfied { object: obj, new_weights: Some(Weights::WHITEBOARD) },
        Command::SetConsistencyMetric {
            numerical_max: 10.0,
            order_max: 10.0,
            staleness_max: SimDuration::from_secs(10),
        },
        Command::SetWeight { numerical: 0.2, order: 0.7, staleness: 0.1 },
        Command::SetResolution { code: 2 },
        Command::SetHint { hint: 0.9 },
        Command::SetBackgroundFreq { period: Some(SimDuration::from_secs(20)) },
        Command::SetBackgroundFreq { period: None },
        Command::SetPriority { node: NodeId(5), priority: 9 },
        Command::Configure {
            spec: ConsistencySpec::builder()
                .metric(10.0, 10.0, SimDuration::from_secs(10))
                .weights(0.4, 0.0, 0.6)
                .resolution(ResolutionPolicy::HighestIdWins)
                .hint(0.85)
                .background_every(SimDuration::from_secs(30))
                .build()
                .unwrap(),
        },
        Command::Configure { spec: ConsistencySpec::default() },
    ]
}

fn fixture_responses() -> Vec<Response> {
    vec![
        Response::Done,
        Response::Written {
            update: Update {
                object: ObjectId(7),
                id: UpdateId { writer: WriterId(2), seq: 11 },
                at: SimTime::from_millis(1_234),
                meta_delta: 5,
                payload: UpdatePayload::Opaque(Bytes::from(vec![1, 2, 3])),
            },
        },
        Response::Value {
            read: ReadResult {
                object: ObjectId(7),
                meta: -9,
                updates: 14,
                latest_update: Some(SimTime::from_secs(3)),
                level: ConsistencyLevel::new(0.93),
                probed: true,
            },
        },
        Response::Level { level: ConsistencyLevel::PERFECT },
        Response::Report {
            report: NodeReport {
                node: NodeId(1),
                level: ConsistencyLevel::new(0.5),
                hint_floor: ConsistencyLevel::WORST,
                resolutions_initiated: 3,
                rollbacks: 1,
                top_members: vec![NodeId(0), NodeId(1), NodeId(3)],
                meta: 77,
                updates: 5,
            },
        },
        Response::Rejected { error: WireError::UnknownObject(ObjectId(99)) },
        Response::Rejected { error: WireError::EngineUnavailable("engine worker stopped".into()) },
        Response::Rejected { error: WireError::ServerAtCapacity { limit: 4_096 } },
    ]
}

#[test]
fn every_command_variant_round_trips() {
    for cmd in fixture_commands() {
        let bytes = cmd.to_bytes();
        assert_eq!(Command::from_bytes(&bytes).unwrap(), cmd, "{cmd:?}");
    }
}

#[test]
fn every_response_variant_round_trips() {
    for resp in fixture_responses() {
        let bytes = resp.to_bytes();
        assert_eq!(Response::from_bytes(&bytes).unwrap(), resp, "{resp:?}");
    }
}

/// Decoding must reject every truncation of every fixture — no prefix of a
/// valid encoding is itself valid (self-delimiting check).
#[test]
fn no_fixture_prefix_decodes() {
    for cmd in fixture_commands() {
        let bytes = cmd.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Command::from_bytes(&bytes[..cut]).is_err(),
                "{cmd:?} decoded from a {cut}-byte prefix of {} bytes",
                bytes.len()
            );
        }
    }
}

// ====================================================================
// Property pass
// ====================================================================

proptest! {
    #[test]
    fn random_commands_round_trip(cmd in arb_command()) {
        let bytes = cmd.to_bytes();
        prop_assert_eq!(Command::from_bytes(&bytes).unwrap(), cmd);
    }

    #[test]
    fn random_responses_round_trip(resp in arb_response()) {
        let bytes = resp.to_bytes();
        prop_assert_eq!(Response::from_bytes(&bytes).unwrap(), resp);
    }

    /// The resolution-plane vector forms (PR-8 compaction wire) are
    /// bijective: random summaries, deltas and reference encodings all
    /// survive encode → decode bit-for-bit.
    #[test]
    fn random_vector_forms_round_trip(
        counters in arb_vv(),
        meta in -1_000i64..1_000,
        latest_raw in (0u8..2, 0u64..600_000_000),
        suffixes in arb_suffixes(),
        reference in arb_reference_wire(),
    ) {
        let latest = (latest_raw.0 == 1).then_some(latest_raw.1);
        prop_assert_eq!(
            VersionVector::from_bytes(&counters.to_bytes()).unwrap(),
            counters.clone()
        );
        let summary = VvSummary {
            counters: counters.clone(),
            meta,
            latest: latest.map(SimTime),
            tail: suffixes.clone(),
        };
        prop_assert_eq!(VvSummary::from_bytes(&summary.to_bytes()).unwrap(), summary);
        let delta = VvDelta { counters, meta, latest: latest.map(SimTime), suffixes };
        prop_assert_eq!(VvDelta::from_bytes(&delta.to_bytes()).unwrap(), delta);
        prop_assert_eq!(ReferenceWire::from_bytes(&reference.to_bytes()).unwrap(), reference);
    }

    #[test]
    fn framed_commands_round_trip(cmd in arb_command(), id in 0u64..1_000, node in 0u32..64) {
        let frame = Frame {
            request_id: id,
            node: NodeId(node),
            payload: FramePayload::Command(cmd),
        };
        let wire = frame_bytes(&frame).unwrap();
        prop_assert_eq!(read_frame(&mut &wire[..]).unwrap().unwrap(), frame);
    }

    #[test]
    fn framed_responses_round_trip(resp in arb_response(), id in 1u64..1_000) {
        let frame = Frame {
            request_id: id,
            node: NodeId(0),
            payload: FramePayload::Response(resp),
        };
        let wire = frame_bytes(&frame).unwrap();
        prop_assert_eq!(read_frame(&mut &wire[..]).unwrap().unwrap(), frame);
    }
}

#[test]
fn no_reply_id_is_zero() {
    // The pipelining contract hangs off this constant; pin it.
    assert_eq!(NO_REPLY, 0);
}
