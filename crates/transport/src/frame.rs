//! Framing: how encoded values travel over a byte stream.
//!
//! ```text
//! +-------+---------+--------+------------------------------------+
//! | magic | version | length | body                               |
//! | IDEA  |   u16   |  u32   | request_id u64 · node u32 · tagged |
//! | 4 B   |   2 B   |  4 B   | payload (Hello / Command /         |
//! |       |         |        | Response)                          |
//! +-------+---------+--------+------------------------------------+
//! ```
//!
//! All integers little-endian. `length` counts the body only and is capped
//! at [`MAX_FRAME_BYTES`] so a corrupt peer cannot coerce a huge
//! allocation. `request_id` correlates responses with requests on a
//! pipelined connection; id `0` is reserved for fire-and-forget commands,
//! which the server never answers.

use crate::codec::{CodecError, WireCodec, WireReader};
use idea_core::{Command, Response};
use idea_types::{NodeId, WireError};
use std::io::{self, Read, Write};

/// Frame magic: the ASCII bytes `IDEA`.
pub const MAGIC: [u8; 4] = *b"IDEA";

/// Protocol version carried in every frame header. A peer speaking a
/// different version is rejected at the first frame.
pub const VERSION: u16 = 1;

/// Upper bound on one frame's body.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Request id reserved for fire-and-forget commands (no response frame).
pub const NO_REPLY: u64 = 0;

/// What a frame carries.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// Server greeting, sent once per connection before anything else:
    /// the deployment size, so a remote client can implement
    /// `EngineHandle::nodes` without configuration.
    Hello {
        /// Number of nodes served.
        nodes: u32,
    },
    /// A client operation (client → server).
    Command(Command),
    /// The outcome of the operation with the same `request_id`
    /// (server → client).
    Response(Response),
}

/// One framed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlates a [`FramePayload::Response`] with its command;
    /// [`NO_REPLY`] marks fire-and-forget commands.
    pub request_id: u64,
    /// The node the command addresses (echoed in responses).
    pub node: NodeId,
    /// The message itself.
    pub payload: FramePayload,
}

impl WireCodec for FramePayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FramePayload::Hello { nodes } => {
                out.push(0);
                nodes.encode(out);
            }
            FramePayload::Command(cmd) => {
                out.push(1);
                cmd.encode(out);
            }
            FramePayload::Response(resp) => {
                out.push(2);
                resp.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(FramePayload::Hello { nodes: u32::decode(r)? }),
            1 => Ok(FramePayload::Command(Command::decode(r)?)),
            2 => Ok(FramePayload::Response(Response::decode(r)?)),
            _ => Err(CodecError { at: 0, what: "FramePayload tag out of domain" }),
        }
    }
}

impl WireCodec for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.request_id.encode(out);
        self.node.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Frame {
            request_id: u64::decode(r)?,
            node: NodeId::decode(r)?,
            payload: FramePayload::decode(r)?,
        })
    }
}

/// Encodes `frame` with its header into a buffer ready to write.
///
/// # Errors
/// Rejects a body over [`MAX_FRAME_BYTES`] with a typed protocol error —
/// enforced on the send side too, so an oversized command fails *its own*
/// call instead of poisoning the connection for every pipelined request.
pub fn frame_bytes(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let body = frame.to_bytes();
    if body.len() > MAX_FRAME_BYTES {
        return Err(protocol_err(format!(
            "frame body of {} bytes exceeds cap {MAX_FRAME_BYTES}",
            body.len()
        )));
    }
    let mut out = Vec::with_capacity(10 + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Writes one frame (header + body) and flushes.
///
/// # Errors
/// [`WireError::Protocol`] for an over-cap body (nothing is written),
/// [`WireError::Transport`] for I/O failures.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let bytes = frame_bytes(frame)?;
    w.write_all(&bytes).map_err(|e| transport_err(&e))?;
    w.flush().map_err(|e| transport_err(&e))
}

fn transport_err(e: &io::Error) -> WireError {
    WireError::Transport(e.to_string())
}

fn protocol_err(what: impl Into<String>) -> WireError {
    WireError::Protocol(what.into())
}

/// Reads one frame. `Ok(None)` is a *clean* end of stream (the peer closed
/// the connection between frames); EOF mid-frame is a protocol error.
///
/// # Errors
/// [`WireError::Transport`] on I/O failure, [`WireError::Protocol`] on bad
/// magic, version mismatch, an oversized length or a malformed body.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; 10];
    // Distinguish "closed between frames" from "died mid-frame": the first
    // byte decides.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(protocol_err("connection closed mid-frame header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(transport_err(&e)),
        }
    }
    if header[..4] != MAGIC {
        return Err(protocol_err("bad frame magic"));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(protocol_err(format!(
            "protocol version mismatch: peer speaks v{version}, this build speaks v{VERSION}"
        )));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(protocol_err(format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            protocol_err("connection closed mid-frame body")
        } else {
            transport_err(&e)
        }
    })?;
    let frame = Frame::from_bytes(&body).map_err(WireError::from)?;
    Ok(Some(frame))
}

/// Tries to parse one frame from the front of `buf` without consuming it —
/// the reassembly primitive for nonblocking reads, where a socket hands
/// over arbitrary byte runs that rarely align with frame boundaries.
///
/// Returns `Ok(Some((frame, consumed)))` when `buf` starts with a complete
/// frame (`consumed` = header + body bytes to advance past), `Ok(None)`
/// when the prefix is valid so far but incomplete (read more and retry).
///
/// # Errors
/// The same protocol errors as [`read_frame`]: bad magic, version
/// mismatch, an over-cap length (rejected from the header alone, before
/// the body arrives) or a malformed body.
pub fn parse_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 10 {
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            return Err(protocol_err("bad frame magic"));
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(protocol_err("bad frame magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(protocol_err(format!(
            "protocol version mismatch: peer speaks v{version}, this build speaks v{VERSION}"
        )));
    }
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(protocol_err(format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}")));
    }
    let Some(body) = buf.get(10..10 + len) else {
        return Ok(None);
    };
    let frame = Frame::from_bytes(body).map_err(WireError::from)?;
    Ok(Some((frame, 10 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::ObjectId;

    fn sample() -> Frame {
        Frame {
            request_id: 7,
            node: NodeId(2),
            payload: FramePayload::Command(Command::Peek { object: ObjectId(5) }),
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample()).unwrap();
        write_frame(
            &mut wire,
            &Frame {
                request_id: 7,
                node: NodeId(2),
                payload: FramePayload::Response(Response::Done),
            },
        )
        .unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), sample());
        let second = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(second.payload, FramePayload::Response(Response::Done)));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after the last frame");
    }

    #[test]
    fn bad_magic_and_version_are_protocol_errors() {
        let mut wire = frame_bytes(&sample()).unwrap();
        wire[0] = b'X';
        assert!(matches!(read_frame(&mut &wire[..]), Err(WireError::Protocol(_))));

        let mut wire = frame_bytes(&sample()).unwrap();
        wire[4] = 99; // version
        let err = read_frame(&mut &wire[..]).unwrap_err();
        let WireError::Protocol(msg) = err else { panic!("{err:?}") };
        assert!(msg.contains("version"), "{msg}");
    }

    #[test]
    fn truncated_frames_are_protocol_errors() {
        let wire = frame_bytes(&sample()).unwrap();
        // Cut inside the header.
        assert!(matches!(read_frame(&mut &wire[..6]), Err(WireError::Protocol(_))));
        // Cut inside the body.
        assert!(matches!(read_frame(&mut &wire[..wire.len() - 2]), Err(WireError::Protocol(_))));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut wire = frame_bytes(&sample()).unwrap();
        wire[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, WireError::Protocol(_)), "{err:?}");
    }

    /// `parse_frame` yields the same frames as `read_frame` no matter how
    /// the bytes are chopped: every split point of a two-frame stream
    /// parses to incomplete-then-complete with the right consumed counts.
    #[test]
    fn parse_frame_reassembles_across_arbitrary_splits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample()).unwrap();
        let first_len = wire.len();
        write_frame(
            &mut wire,
            &Frame {
                request_id: 9,
                node: NodeId(1),
                payload: FramePayload::Response(Response::Done),
            },
        )
        .unwrap();

        for split in 0..=wire.len() {
            let prefix = &wire[..split];
            match parse_frame(prefix).unwrap() {
                None => assert!(split < first_len, "complete frame reported incomplete"),
                Some((frame, consumed)) => {
                    assert_eq!(consumed, first_len);
                    assert_eq!(frame, sample());
                    // The remainder parses as the second frame once whole.
                    let rest = &prefix[consumed..];
                    if split == wire.len() {
                        let (second, used) = parse_frame(rest).unwrap().unwrap();
                        assert_eq!(used, rest.len());
                        assert_eq!(second.request_id, 9);
                    }
                }
            }
        }
    }

    /// `parse_frame` rejects garbage from the very first byte — it never
    /// waits for a full header to call bad magic.
    #[test]
    fn parse_frame_rejects_bad_prefixes_early() {
        assert!(matches!(parse_frame(b"X"), Err(WireError::Protocol(_))));
        assert!(matches!(parse_frame(b"IDEX"), Err(WireError::Protocol(_))));
        assert!(parse_frame(b"IDE").unwrap().is_none(), "valid prefix of the magic");
        assert!(parse_frame(b"").unwrap().is_none());

        let mut wire = frame_bytes(&sample()).unwrap();
        wire[4] = 99; // version
        let err = parse_frame(&wire).unwrap_err();
        let WireError::Protocol(msg) = err else { panic!("{err:?}") };
        assert!(msg.contains("version"), "{msg}");

        let mut wire = frame_bytes(&sample()).unwrap();
        wire[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(parse_frame(&wire[..10]), Err(WireError::Protocol(_))),
            "over-cap length must be rejected from the header alone"
        );
    }

    /// The cap binds on the send side too: an over-cap frame fails its own
    /// encode with a typed error and writes nothing.
    #[test]
    fn oversized_body_is_rejected_on_send() {
        use idea_types::UpdatePayload;
        let huge = Frame {
            request_id: 1,
            node: NodeId(0),
            payload: FramePayload::Command(Command::Write {
                object: ObjectId(1),
                meta_delta: 0,
                payload: UpdatePayload::Opaque(bytes::Bytes::from(vec![0u8; MAX_FRAME_BYTES + 1])),
            }),
        };
        assert!(matches!(frame_bytes(&huge), Err(WireError::Protocol(_))));
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        assert!(sink.is_empty(), "nothing may reach the wire");
    }
}
