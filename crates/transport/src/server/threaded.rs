//! The thread-per-connection baseline ([`super::ServerMode::Threaded`]).
//!
//! One accept-loop thread; per connection one *reader* thread (decodes
//! frames, hands commands to the executor) and one *writer* thread (owns
//! the socket's write half, encodes responses as they complete). Commands
//! addressed to an object are dispatched into the engine's existing
//! per-shard mailboxes without blocking the reader, and each response
//! frame carries the `request_id` of its command — so a single connection
//! pipelines: many commands can be in flight, replies return in completion
//! order, and per-object ordering is still guaranteed because the reader
//! dispatches sequentially into per-object FIFO mailboxes.
//!
//! Fire-and-forget frames (`request_id == `[`NO_REPLY`]) are submitted
//! with no reply path at all — the server stays silent on success, and
//! closes the connection if the engine can no longer accept commands.
//!
//! This implementation is kept verbatim as the fan-in benchmark's pinned
//! baseline: two OS threads (plus two fds for the shutdown clone) per
//! connection is exactly the scaling wall the evented server removes.

use crate::frame::{read_frame, write_frame, Frame, FramePayload, NO_REPLY};
use crossbeam::channel::{unbounded, Sender};
use idea_core::{CommandExecutor, Response};
use idea_types::{NodeId, WireError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One response queued for a connection's writer thread.
type Outbound = (u64, NodeId, Response);

/// Live connections, keyed by accept order, holding the duplicated stream
/// used to shut a connection down. A reader removes its own entry when it
/// exits, so closed connections do not accumulate fds for the server's
/// lifetime.
type ConnTable = Arc<Mutex<HashMap<u64, TcpStream>>>;

pub(super) struct ThreadedServer {
    local_addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: ConnTable,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accepted: Arc<AtomicU64>,
}

impl ThreadedServer {
    pub(super) fn spawn(
        listener: TcpListener,
        executor: Arc<dyn CommandExecutor>,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let stop_flag = Arc::new(AtomicBool::new(false));
        let conns: ConnTable = Arc::new(Mutex::new(HashMap::new()));
        let readers = Arc::new(Mutex::new(Vec::new()));
        let accepted = Arc::new(AtomicU64::new(0));

        let accept = {
            let stop_flag = Arc::clone(&stop_flag);
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            let accepted = Arc::clone(&accepted);
            thread::Builder::new()
                .name("idea-accept".into())
                .spawn(move || loop {
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(_) if stop_flag.load(Ordering::SeqCst) => break,
                        Err(_) => {
                            // Persistent failures (e.g. fd exhaustion)
                            // must not busy-spin the accept thread.
                            thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                    };
                    if stop_flag.load(Ordering::SeqCst) {
                        break; // the wake-up connection from stop()
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = accepted.fetch_add(1, Ordering::SeqCst);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().insert(conn_id, clone);
                    }
                    // Reap reader threads of connections that have closed
                    // (dropping a finished JoinHandle just detaches it).
                    readers.lock().retain(|h: &JoinHandle<()>| !h.is_finished());
                    let executor = Arc::clone(&executor);
                    let table = Arc::clone(&conns);
                    let handle = thread::Builder::new()
                        .name("idea-conn".into())
                        .spawn(move || {
                            serve_connection(stream, executor);
                            // Release the shutdown handle (and its fd) as
                            // soon as the connection is done.
                            table.lock().remove(&conn_id);
                        })
                        .expect("spawn connection reader");
                    readers.lock().push(handle);
                })
                .expect("spawn accept loop")
        };

        Ok(ThreadedServer { local_addr, stop_flag, accept: Some(accept), conns, readers, accepted })
    }

    pub(super) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(super) fn connections_accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    fn shutdown_now(&mut self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self.readers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Reader half of one connection; spawns its writer sibling.
fn serve_connection(stream: TcpStream, executor: Arc<dyn CommandExecutor>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (out_tx, out_rx) = unbounded::<Outbound>();

    // Writer thread: owns the write half; exits when every sender (the
    // reader below plus any in-flight dispatch replies) is gone, or on the
    // first write failure.
    let writer = thread::Builder::new().name("idea-conn-writer".into()).spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok((request_id, node, response)) = out_rx.recv() {
            let frame = Frame { request_id, node, payload: FramePayload::Response(response) };
            match write_frame(&mut w, &frame) {
                Ok(()) => {}
                // An unframeable (over-cap) response fails only its own
                // request: substitute a typed rejection so the waiting
                // client is answered and the connection survives.
                Err(error @ WireError::Protocol(_)) => {
                    let substitute = Frame {
                        request_id,
                        node,
                        payload: FramePayload::Response(Response::Rejected { error }),
                    };
                    if write_frame(&mut w, &substitute).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    if writer.is_err() {
        return;
    }

    // Greeting: the deployment size, before any command response.
    {
        let frame = Frame {
            request_id: NO_REPLY,
            node: NodeId(0),
            payload: FramePayload::Hello { nodes: executor.node_count() as u32 },
        };
        let mut hello = stream.try_clone().ok();
        let sent = hello.as_mut().map(|s| write_frame(s, &frame).is_ok()).unwrap_or(false);
        if !sent {
            return;
        }
    }

    let mut reader = BufReader::new(stream);
    // A clean close, an I/O failure and a malformed frame all drop the
    // connection: a frame that fails to decode leaves the stream position
    // unknown, so per-command recovery is impossible.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        let Frame { request_id, node, payload } = frame;
        match payload {
            FramePayload::Command(cmd) if request_id == NO_REPLY => {
                match executor.try_submit(node, cmd) {
                    Ok(()) => {}
                    // Command-independent failure: the engine is gone, so
                    // every later command would fail too — close, which the
                    // client observes as a transport error.
                    Err(WireError::EngineUnavailable(_)) => break,
                    Err(_) => {}
                }
            }
            FramePayload::Command(cmd) => {
                let tx: Sender<Outbound> = out_tx.clone();
                executor.dispatch(
                    node,
                    cmd,
                    Box::new(move |response| {
                        let _ = tx.send((request_id, node, response));
                    }),
                );
            }
            // Only clients send Hello/Response frames — answer with a
            // typed rejection when correlatable, otherwise ignore.
            FramePayload::Hello { .. } | FramePayload::Response(_) => {
                if request_id != NO_REPLY {
                    let error = WireError::Protocol("clients must send Command frames".to_string());
                    let _ = out_tx.send((request_id, node, Response::Rejected { error }));
                }
            }
        }
    }
}
