//! The readiness-driven event loop ([`super::ServerMode::Evented`]).
//!
//! One thread multiplexes the listener and every connection over the
//! vendored `mio`-style poller. The loop blocks in `poll` with no timeout
//! — an idle server schedules zero wakeups (the regression pin replacing
//! the old 20 ms accept-poll). Per connection the loop keeps:
//!
//! * a **read buffer** reassembling frames from whatever byte runs the
//!   nonblocking socket hands over ([`parse_frame`] replaces the blocking
//!   reader thread);
//! * a **write queue**: one contiguous buffer that response frames append
//!   to and flushes drain with single `write` calls — many small pipelined
//!   responses coalesce into one syscall (replacing the writer thread).
//!
//! Commands still dispatch in arrival order through the non-blocking
//! [`CommandExecutor::dispatch`] reply-callback path; callbacks push onto
//! a completion queue and wake the loop, which encodes them in completion
//! order — the same per-connection semantics as the threaded baseline,
//! byte for byte.
//!
//! Readiness handling is drain-to-`WouldBlock` throughout, so the loop is
//! correct under both level-triggered semantics (the epoll backend) and
//! the portable backend's spurious readiness.
//!
//! Admission and backpressure (the two knobs the threaded baseline lacks):
//! an over-cap connection is answered with the typed
//! [`WireError::ServerAtCapacity`] rejection and closed; a connection
//! whose un-flushed responses exceed `high_water_bytes` has its reads —
//! and the parsing of already-buffered frames — deferred until the queue
//! drains below half the mark, so a slow reader stops generating new work
//! instead of ballooning server memory, without stalling its neighbours.

use super::ServerConfig;
use crate::frame::{frame_bytes, parse_frame, Frame, FramePayload, NO_REPLY};
use idea_core::{CommandExecutor, Response};
use idea_types::{NodeId, WireError};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// First connection token; tokens are monotonic and never reused, so a
/// completion for a closed connection can never be misdelivered to a new
/// one occupying the same slot.
const FIRST_CONN: usize = 2;

/// Read-side scratch granularity per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Compact the read buffer once this many consumed bytes sit ahead of the
/// unparsed remainder.
const COMPACT_AT: usize = 64 * 1024;

/// A completed command's response, queued by a dispatch callback for the
/// loop to encode: `(connection token, request_id, node, response)`.
type Completion = (usize, u64, NodeId, Response);

/// Counters shared between the loop thread and the server handle.
#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    wakeups: AtomicU64,
    reads_deferred: AtomicU64,
}

pub(super) struct EventedServer {
    local_addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    waker: Arc<Waker>,
    handle: Option<JoinHandle<()>>,
    stats: Arc<Stats>,
}

impl EventedServer {
    pub(super) fn spawn(
        listener: TcpListener,
        executor: Arc<dyn CommandExecutor>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.registry().register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
        let stop_flag = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::default());

        let handle = {
            let stop_flag = Arc::clone(&stop_flag);
            let waker = Arc::clone(&waker);
            let stats = Arc::clone(&stats);
            thread::Builder::new().name("idea-evented".into()).spawn(move || {
                EventLoop {
                    poll,
                    listener,
                    executor,
                    config,
                    waker,
                    stop_flag,
                    stats,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN,
                    completions: Arc::new(Mutex::new(Vec::new())),
                    scratch: vec![0u8; READ_CHUNK],
                }
                .run();
            })?
        };

        Ok(EventedServer { local_addr, stop_flag, waker, handle: Some(handle), stats })
    }

    pub(super) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(super) fn connections_accepted(&self) -> u64 {
        self.stats.accepted.load(Ordering::SeqCst)
    }

    pub(super) fn connections_rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::SeqCst)
    }

    pub(super) fn loop_wakeups(&self) -> u64 {
        self.stats.wakeups.load(Ordering::SeqCst)
    }

    pub(super) fn reads_deferred_total(&self) -> u64 {
        self.stats.reads_deferred.load(Ordering::SeqCst)
    }
}

impl Drop for EventedServer {
    fn drop(&mut self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Incoming bytes not yet parsed into frames; `in_start` marks the
    /// consumed prefix (compacted lazily).
    in_buf: Vec<u8>,
    in_start: usize,
    /// The write queue: encoded response frames awaiting flush; `out_pos`
    /// marks the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// What the poller currently watches for this socket (`None` =
    /// deregistered — e.g. drained EOF still awaiting completions).
    registered: Option<Interest>,
    /// Responses dispatched but not yet completed.
    in_flight: usize,
    /// Reads parked by backpressure until the write queue drains.
    reads_deferred: bool,
    /// No further reads: peer EOF, malformed frame, or engine loss. The
    /// connection closes once `in_flight` and the write queue drain.
    no_more_reads: bool,
    /// Hard failure: close without draining.
    dead: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// The interest this connection currently needs from the poller.
    fn desired_interest(&self) -> Option<Interest> {
        if self.dead {
            return None;
        }
        let wants_read = !self.no_more_reads && !self.reads_deferred;
        let wants_write = self.pending_out() > 0;
        match (wants_read, wants_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        }
    }

    fn done(&self) -> bool {
        self.dead || (self.no_more_reads && self.in_flight == 0 && self.pending_out() == 0)
    }
}

struct EventLoop {
    poll: Poll,
    listener: TcpListener,
    executor: Arc<dyn CommandExecutor>,
    config: ServerConfig,
    waker: Arc<Waker>,
    stop_flag: Arc<AtomicBool>,
    stats: Arc<Stats>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    completions: Arc<Mutex<Vec<Completion>>>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut touched: Vec<usize> = Vec::new();
        while !self.stop_flag.load(Ordering::SeqCst) {
            if self.poll.poll(&mut events, None).is_err() {
                continue; // EINTR and transient poll failures
            }
            self.stats.wakeups.fetch_add(1, Ordering::SeqCst);
            touched.clear();
            for event in events.iter() {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    Token(t) => {
                        if self.conns.contains_key(&t) {
                            touched.push(t);
                        }
                    }
                }
            }
            // Completions queued by dispatch callbacks since the last
            // pass — encode them in completion order, exactly as the
            // threaded writer drained its channel.
            let completed = std::mem::take(&mut *self.completions.lock().expect("completions"));
            for (t, request_id, node, response) in completed {
                let Some(conn) = self.conns.get_mut(&t) else {
                    continue; // connection died while the command ran
                };
                conn.in_flight -= 1;
                enqueue_response(conn, request_id, node, response);
                if !touched.contains(&t) {
                    touched.push(t);
                }
            }
            for &t in &touched {
                self.pump(t);
            }
        }
    }

    /// Drains the accept queue: admit (Hello) or reject (typed capacity
    /// error) every pending connection.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient (EMFILE etc.) — retry on next readiness
            };
            self.stats.accepted.fetch_add(1, Ordering::SeqCst);
            let _ = stream.set_nodelay(true);

            if self.conns.len() >= self.config.max_connections {
                self.reject_at_capacity(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }

            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn {
                stream,
                in_buf: Vec::new(),
                in_start: 0,
                out: Vec::new(),
                out_pos: 0,
                registered: None,
                in_flight: 0,
                reads_deferred: false,
                no_more_reads: false,
                dead: false,
            };
            // Greeting: the deployment size, before any command response.
            let hello = Frame {
                request_id: NO_REPLY,
                node: NodeId(0),
                payload: FramePayload::Hello { nodes: self.executor.node_count() as u32 },
            };
            match frame_bytes(&hello) {
                Ok(bytes) => conn.out.extend_from_slice(&bytes),
                Err(_) => continue, // unreachable: a Hello frame is tiny
            }
            self.conns.insert(token, conn);
            self.pump(token);
        }
    }

    /// Answers an over-cap connection with the typed rejection and closes
    /// it. The socket is still in blocking mode and its send buffer is
    /// empty, so the one small frame cannot block the loop.
    fn reject_at_capacity(&self, mut stream: TcpStream) {
        self.stats.rejected.fetch_add(1, Ordering::SeqCst);
        let error = WireError::ServerAtCapacity { limit: self.config.max_connections as u32 };
        let frame = Frame {
            request_id: NO_REPLY,
            node: NodeId(0),
            payload: FramePayload::Response(Response::Rejected { error }),
        };
        if let Ok(bytes) = frame_bytes(&frame) {
            let _ = stream.write_all(&bytes);
        }
    }

    /// Advances one connection's state machine as far as readiness allows:
    /// read to `WouldBlock`, parse and dispatch buffered frames (unless
    /// deferred), flush the write queue, re-evaluate backpressure, update
    /// poller interest, and reap the connection once done.
    fn pump(&mut self, token: usize) {
        let Some(mut conn) = self.conns.remove(&token) else { return };

        if !conn.no_more_reads && !conn.reads_deferred && !conn.dead {
            self.read_ready(&mut conn);
        }
        // Parse / flush / re-evaluate backpressure until no further
        // progress is possible. The loop matters for liveness: a resumed
        // connection may still hold complete frames in its read buffer
        // with nothing left in the socket — no readiness event will ever
        // re-announce them, so they must be consumed before registering.
        loop {
            self.parse_frames(token, &mut conn);
            flush(&mut conn);
            // Backpressure: park reads past the high-water mark; resume
            // once the flush above drained below half of it.
            if !conn.reads_deferred && conn.pending_out() > self.config.high_water_bytes {
                conn.reads_deferred = true;
                self.stats.reads_deferred.fetch_add(1, Ordering::SeqCst);
            } else if conn.reads_deferred && conn.pending_out() <= self.config.high_water_bytes / 2
            {
                conn.reads_deferred = false;
                // Bytes may have queued in the socket while reads were
                // parked; level-triggered readiness would re-announce
                // them, but the portable backend's spurious events would
                // not carry them here promptly.
                self.read_ready(&mut conn);
            }
            if conn.dead || conn.no_more_reads || conn.reads_deferred {
                break;
            }
            if !has_buffered_frame(&conn.in_buf[conn.in_start..]) {
                break;
            }
        }

        if conn.done() {
            if conn.registered.is_some() {
                let _ = self.poll.registry().deregister(&conn.stream);
            }
            return; // dropping the stream closes the connection
        }
        let desired = conn.desired_interest();
        if desired != conn.registered {
            let registry = self.poll.registry();
            let outcome = match (conn.registered, desired) {
                (None, Some(want)) => registry.register(&conn.stream, Token(token), want),
                (Some(_), Some(want)) => registry.reregister(&conn.stream, Token(token), want),
                (Some(_), None) => registry.deregister(&conn.stream),
                (None, None) => Ok(()),
            };
            match outcome {
                Ok(()) => conn.registered = desired,
                Err(_) => return, // poller refused the fd: drop the connection
            }
        }
        self.conns.insert(token, conn);
    }

    /// Reads until `WouldBlock` (or EOF / failure), appending to the
    /// connection's reassembly buffer.
    fn read_ready(&mut self, conn: &mut Conn) {
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.no_more_reads = true;
                    return;
                }
                Ok(n) => conn.in_buf.extend_from_slice(&self.scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Parses and handles every complete buffered frame, stopping early if
    /// backpressure engages mid-batch. A malformed frame stops reads for
    /// good (the stream position is unrecoverable) but still drains
    /// responses already owed.
    fn parse_frames(&mut self, token: usize, conn: &mut Conn) {
        loop {
            if conn.dead || conn.pending_out() > self.config.high_water_bytes {
                break;
            }
            match parse_frame(&conn.in_buf[conn.in_start..]) {
                Ok(Some((frame, used))) => {
                    conn.in_start += used;
                    self.handle_frame(token, conn, frame);
                }
                Ok(None) => break,
                Err(_) => {
                    conn.no_more_reads = true;
                    break;
                }
            }
        }
        if conn.in_start == conn.in_buf.len() {
            conn.in_buf.clear();
            conn.in_start = 0;
        } else if conn.in_start >= COMPACT_AT {
            conn.in_buf.drain(..conn.in_start);
            conn.in_start = 0;
        }
    }

    /// One decoded frame — the same command handling as the threaded
    /// reader, with the reply callback queueing into the completion list
    /// instead of a per-connection channel.
    fn handle_frame(&mut self, token: usize, conn: &mut Conn, frame: Frame) {
        let Frame { request_id, node, payload } = frame;
        match payload {
            FramePayload::Command(cmd) if request_id == NO_REPLY => {
                match self.executor.try_submit(node, cmd) {
                    Ok(()) => {}
                    // Command-independent failure: the engine is gone, so
                    // every later command would fail too — stop reading,
                    // which the client observes as a closed connection.
                    Err(WireError::EngineUnavailable(_)) => conn.no_more_reads = true,
                    Err(_) => {}
                }
            }
            FramePayload::Command(cmd) => {
                conn.in_flight += 1;
                let completions = Arc::clone(&self.completions);
                let waker = Arc::clone(&self.waker);
                self.executor.dispatch(
                    node,
                    cmd,
                    Box::new(move |response| {
                        completions
                            .lock()
                            .expect("completions")
                            .push((token, request_id, node, response));
                        let _ = waker.wake();
                    }),
                );
                // An inline executor may have completed synchronously;
                // fold completions for *this* connection straight into its
                // write queue so a burst of pipelined commands coalesces
                // into one flush. Completions for other connections stay
                // queued — their callback's wakeup is already pending and
                // the run loop's drain is what pumps those connections.
                let mine = {
                    let mut queue = self.completions.lock().expect("completions");
                    let mut mine = Vec::new();
                    queue.retain(|entry| {
                        if entry.0 == token {
                            mine.push(entry.clone());
                            false
                        } else {
                            true
                        }
                    });
                    mine
                };
                for (_, id, n, response) in mine {
                    conn.in_flight -= 1;
                    enqueue_response(conn, id, n, response);
                }
            }
            // Only clients send Hello/Response frames — answer with a
            // typed rejection when correlatable, otherwise ignore.
            FramePayload::Hello { .. } | FramePayload::Response(_) => {
                if request_id != NO_REPLY {
                    let error = WireError::Protocol("clients must send Command frames".to_string());
                    enqueue_response(conn, request_id, node, Response::Rejected { error });
                }
            }
        }
    }
}

/// Whether `buf` starts with one complete frame — the cheap length-only
/// check `pump` uses to decide if another parse pass can make progress.
/// Malformed prefixes count as "complete": the parse pass must see them to
/// fail the connection.
fn has_buffered_frame(buf: &[u8]) -> bool {
    if buf.is_empty() {
        return false;
    }
    let Some(header) = buf.get(..10) else {
        // A short prefix that cannot be a frame header: complete only if
        // it is already un-parseable (bad magic).
        return !crate::frame::MAGIC.starts_with(&buf[..buf.len().min(4)]);
    };
    if header[..4] != crate::frame::MAGIC {
        return true;
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    len > crate::frame::MAX_FRAME_BYTES || buf.len() >= 10 + len
}

/// Appends one response frame to the connection's write queue. An
/// unframeable (over-cap) response fails only its own request: substitute
/// a typed rejection so the waiting client is answered and the connection
/// survives — the same policy as the threaded writer.
fn enqueue_response(conn: &mut Conn, request_id: u64, node: NodeId, response: Response) {
    let frame = Frame { request_id, node, payload: FramePayload::Response(response) };
    let bytes = match frame_bytes(&frame) {
        Ok(bytes) => bytes,
        Err(error) => {
            let substitute = Frame {
                request_id,
                node,
                payload: FramePayload::Response(Response::Rejected { error }),
            };
            match frame_bytes(&substitute) {
                Ok(bytes) => bytes,
                Err(_) => return, // unreachable: the substitute is tiny
            }
        }
    };
    conn.out.extend_from_slice(&bytes);
}

/// Flushes the write queue until `WouldBlock` or empty. One `write` call
/// covers every queued frame — the coalescing that replaces the
/// frame-at-a-time writer thread.
fn flush(conn: &mut Conn) {
    while conn.pending_out() > 0 {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}
