//! TCP transport for the IDEA service API — the paper's *infrastructure*
//! positioning made literal: a replicated service links the client stub,
//! IDEA runs as a served system.
//!
//! Three layers, bottom up:
//!
//! * [`codec`] — a deterministic binary encoding ([`WireCodec`]) for every
//!   type of the client surface (`Command`, `Response`, their leaves),
//!   hand-written because the offline `serde` stand-in cannot drive
//!   serialization; strict decoding maps malformed input to
//!   [`idea_types::WireError::Protocol`].
//! * [`frame`] — the length-prefixed, versioned frame
//!   (`magic · version · length · request_id · node · payload`) that
//!   carries encoded values over a byte stream; `request_id` correlates
//!   pipelined responses, id [`frame::NO_REPLY`] marks fire-and-forget.
//! * [`server`] / [`client`] — [`IdeaServer`] fronts any
//!   [`idea_core::CommandExecutor`] (in practice a `ShardedEngine`, whose
//!   per-shard mailboxes the dispatch path feeds directly), and
//!   [`RemoteEngine`] implements [`idea_core::EngineHandle`] over a
//!   connection pool, so `Session` code from `idea_core::client` runs
//!   unchanged against a remote cluster. The server has two
//!   implementations behind [`ServerConfig`]: the default readiness-driven
//!   event loop (one thread for every connection, with admission and
//!   backpressure control) and the original thread-per-connection baseline
//!   ([`ServerMode::Threaded`]).
//!
//! ## Ordering and pipelining guarantees
//!
//! Per connection, commands are dispatched in arrival order into
//! per-object FIFO worker mailboxes: two commands on the same connection
//! addressing the same object execute in order. Responses return in
//! *completion* order (correlate by `request_id`). Across connections —
//! including the pool connections of one [`RemoteEngine`] — only commands
//! for the same object keep their order, because the pool pins each object
//! to one connection by the same `ShardId::of` hash the server shards by.
//!
//! ```no_run
//! use idea_core::{IdeaConfig, IdeaNode, LockedEngine, Session};
//! use idea_net::{SimConfig, SimEngine, Topology};
//! use idea_transport::{IdeaServer, RemoteEngine};
//! use idea_types::{NodeId, ObjectId, UpdatePayload};
//! use std::sync::Arc;
//!
//! let object = ObjectId(1);
//! let nodes: Vec<IdeaNode> =
//!     (0..2).map(|i| IdeaNode::new(NodeId(i), IdeaConfig::default(), &[object])).collect();
//! let engine = SimEngine::new(Topology::lan(2), SimConfig::default(), nodes);
//!
//! // Serve the engine, then talk to it over real TCP.
//! let shared = Arc::new(LockedEngine::new(engine));
//! let server = IdeaServer::bind("127.0.0.1:0", shared.clone()).unwrap();
//! let mut remote = RemoteEngine::connect(server.local_addr()).unwrap();
//! let mut session = Session::open(&mut remote, NodeId(0));
//! session.object(object).write(7, UpdatePayload::none()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod frame;
pub mod server;

pub use client::{RemoteEngine, RemoteStats};
pub use codec::{CodecError, WireCodec, WireReader};
pub use frame::{Frame, FramePayload, MAX_FRAME_BYTES, VERSION};
pub use server::{IdeaServer, ServerConfig, ServerMode};
