//! [`IdeaServer`]: the TCP frontend over any [`CommandExecutor`], in two
//! interchangeable implementations selected by [`ServerConfig::mode`]:
//!
//! * [`ServerMode::Evented`] (the default) — one readiness-driven event
//!   loop thread multiplexing every connection over the vendored
//!   `mio`-style poller: nonblocking accept, per-connection read-buffer
//!   frame reassembly, and a per-connection write queue whose flushes
//!   coalesce many small response frames into one `write` syscall. Thread
//!   count is O(1) in the number of connections — the fan-in path.
//! * [`ServerMode::Threaded`] — the original two-OS-threads-per-connection
//!   server, kept as the pinned baseline the fan-in benchmark compares
//!   against (and a conservative fallback).
//!
//! Both speak the identical wire protocol with identical per-connection
//! semantics: commands dispatch in arrival order into the executor's
//! per-object FIFO mailboxes via the non-blocking
//! [`CommandExecutor::dispatch`] reply-callback path, responses return in
//! *completion* order correlated by `request_id`, and fire-and-forget
//! frames (`request_id == `[`NO_REPLY`](crate::frame::NO_REPLY)) are
//! submitted with no reply path at all. The loopback byte-equivalence
//! suite runs unchanged against either mode.
//!
//! The evented server adds connection admission and backpressure, which
//! the threaded baseline does not have:
//!
//! * a connection past [`ServerConfig::max_connections`] is answered with
//!   the typed [`WireError::ServerAtCapacity`](idea_types::WireError::ServerAtCapacity) rejection and closed —
//!   never silently dropped, never hung;
//! * a connection whose un-flushed response bytes exceed
//!   [`ServerConfig::high_water_bytes`] (a slow or stalled reader) has its
//!   *reads* deferred until the queue drains below half the mark, so one
//!   slow consumer cannot balloon server memory or stall its neighbours.

use idea_core::CommandExecutor;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;

mod evented;
mod threaded;

/// Which server implementation [`IdeaServer::bind_with`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Readiness-driven event loop: one thread for every connection.
    Evented,
    /// Two OS threads (reader + writer) per connection — the pre-event-loop
    /// implementation, kept as the pinned fan-in baseline.
    Threaded,
}

/// Tuning for [`IdeaServer::bind_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Implementation to start (default [`ServerMode::Evented`]).
    pub mode: ServerMode,
    /// Admission cap: a connection accepted while this many are live is
    /// answered with the typed [`WireError::ServerAtCapacity`](idea_types::WireError::ServerAtCapacity) rejection
    /// and closed. Enforced by the evented server only (the threaded
    /// baseline predates admission control). Default 16 384.
    pub max_connections: usize,
    /// Per-connection backpressure mark: once a connection's un-flushed
    /// response bytes exceed this, its reads are deferred until the queue
    /// drains below half the mark. Evented server only. Default 1 MiB.
    pub high_water_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: ServerMode::Evented,
            max_connections: 16_384,
            high_water_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// The default configuration with `mode` taken from the
    /// `IDEA_SERVER_MODE` environment variable (`threaded` or `evented`,
    /// default evented) — how CI drives the same test suite against both
    /// implementations.
    pub fn from_env() -> Self {
        let mode = match std::env::var("IDEA_SERVER_MODE").as_deref() {
            Ok("threaded") => ServerMode::Threaded,
            _ => ServerMode::Evented,
        };
        ServerConfig { mode, ..ServerConfig::default() }
    }

    /// The threaded baseline with otherwise-default settings.
    pub fn threaded() -> Self {
        ServerConfig { mode: ServerMode::Threaded, ..ServerConfig::default() }
    }
}

/// A running TCP server fronting a [`CommandExecutor`].
///
/// Bind with [`IdeaServer::bind`] (mode from the environment, evented by
/// default) or [`IdeaServer::bind_with`]; the listener address (useful
/// with port `0`) is [`IdeaServer::local_addr`]. [`IdeaServer::stop`]
/// (also run on drop) closes the listener and every connection and joins
/// the service threads — it does **not** stop the engine, which the
/// caller still owns.
pub struct IdeaServer {
    inner: Inner,
}

enum Inner {
    Threaded(threaded::ThreadedServer),
    Evented(evented::EventedServer),
}

impl IdeaServer {
    /// Binds `addr` and starts serving `executor` with
    /// [`ServerConfig::from_env`].
    ///
    /// # Errors
    /// Propagates listener-setup I/O failures; per-connection failures
    /// after that only close the affected connection.
    pub fn bind(addr: impl ToSocketAddrs, executor: Arc<dyn CommandExecutor>) -> io::Result<Self> {
        Self::bind_with(addr, executor, ServerConfig::from_env())
    }

    /// Binds `addr` and starts serving `executor` under `config`.
    ///
    /// # Errors
    /// Propagates listener- and poller-setup I/O failures.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        executor: Arc<dyn CommandExecutor>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let inner = match config.mode {
            ServerMode::Threaded => {
                Inner::Threaded(threaded::ThreadedServer::spawn(listener, executor)?)
            }
            ServerMode::Evented => {
                Inner::Evented(evented::EventedServer::spawn(listener, executor, config)?)
            }
        };
        Ok(IdeaServer { inner })
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::Threaded(s) => s.local_addr(),
            Inner::Evented(s) => s.local_addr(),
        }
    }

    /// The implementation this server runs.
    pub fn mode(&self) -> ServerMode {
        match &self.inner {
            Inner::Threaded(_) => ServerMode::Threaded,
            Inner::Evented(_) => ServerMode::Evented,
        }
    }

    /// Connections accepted since bind (monotonic; includes closed and
    /// admission-rejected ones).
    pub fn connections_accepted(&self) -> u64 {
        match &self.inner {
            Inner::Threaded(s) => s.connections_accepted(),
            Inner::Evented(s) => s.connections_accepted(),
        }
    }

    /// Connections refused at admission with the typed
    /// [`WireError::ServerAtCapacity`](idea_types::WireError::ServerAtCapacity) rejection. Always 0 in threaded
    /// mode, which has no admission control.
    pub fn connections_rejected(&self) -> u64 {
        match &self.inner {
            Inner::Threaded(_) => 0,
            Inner::Evented(s) => s.connections_rejected(),
        }
    }

    /// Times the event loop woke from its poll since bind — accept
    /// readiness, connection I/O, and completion wake-ups all count. An
    /// *idle* evented server on an OS-backed poller blocks in the poll and
    /// burns none (the regression pin for the old 20 ms accept-poll).
    /// Always 0 in threaded mode.
    pub fn loop_wakeups(&self) -> u64 {
        match &self.inner {
            Inner::Threaded(_) => 0,
            Inner::Evented(s) => s.loop_wakeups(),
        }
    }

    /// Count of reads-deferred transitions: how many times a connection
    /// crossed [`ServerConfig::high_water_bytes`] and had its reads parked
    /// until the write queue drained. Always 0 in threaded mode.
    pub fn reads_deferred_total(&self) -> u64 {
        match &self.inner {
            Inner::Threaded(_) => 0,
            Inner::Evented(s) => s.reads_deferred_total(),
        }
    }

    /// Stops accepting, closes every connection and joins the service
    /// threads. Idempotent; also runs on drop.
    pub fn stop(self) {
        // Drop runs the shutdown.
    }
}
