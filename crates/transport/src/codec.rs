//! The binary codec for the service API's wire types.
//!
//! Every type that crosses the TCP boundary implements [`WireCodec`]: a
//! deterministic little-endian binary form with length-prefixed strings,
//! byte buffers and sequences, and one-byte tags for enum variants. The
//! encoding is the runtime realisation of the `serde` annotations the wire
//! types already carry — the offline `serde` stand-in cannot drive
//! serialization (see `vendor/README.md`), so the adapter is hand-written
//! against the same field layout the derives describe. Round-trip equality
//! over every [`Command`]/[`Response`] variant is property-tested in
//! `tests/codec_roundtrip.rs`.
//!
//! Decoding is strict: unknown enum tags, out-of-domain values (a
//! resolution-policy code outside 1..=3, a non-finite weight) and trailing
//! bytes are [`CodecError`]s, which the transport surfaces as
//! [`WireError::Protocol`] — a malformed peer can reject a command, never
//! corrupt an engine.

use bytes::Bytes;
use idea_core::client::{BackgroundFreq, ReadConsistency};
use idea_core::quantify::{MaxBounds, Weights};
use idea_core::resolution::{ReferenceState, ReferenceWire, ResolutionPolicy};
use idea_core::{Command, ConsistencySpec, NodeReport, ReadResult, Response};
use idea_types::{
    ConsistencyLevel, NodeId, ObjectId, SimDuration, SimTime, Update, UpdateId, UpdatePayload,
    WireError, WriterId,
};
use idea_vv::{VersionVector, VvDelta, VvSummary, WriterSuffix};
use std::fmt;

/// A decode failure: where in the buffer and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the decoder had reached.
    pub at: usize,
    /// What was malformed.
    pub what: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Protocol(e.to_string())
    }
}

/// Cursor over a received buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err(&self, what: &'static str) -> CodecError {
        CodecError { at: self.pos, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err("unexpected end of payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fails unless every byte was consumed — a frame must contain exactly
    /// one value.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError { at: self.pos, what: "trailing bytes after payload" });
        }
        Ok(())
    }
}

/// Deterministic binary encoding for one wire type.
pub trait WireCodec: Sized {
    /// Appends the encoded form to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    /// Fails on truncation, unknown tags or out-of-domain values.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must span the whole buffer.
    ///
    /// # Errors
    /// Fails on any decode error or trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

// ====================================================================
// Primitives
// ====================================================================

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl WireCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(r.err("bool out of domain")),
        }
    }
}

impl WireCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        usize::try_from(u64::decode(r)?).map_err(|_| r.err("length exceeds platform usize"))
    }
}

/// Sequence lengths are bounded so a malformed frame cannot trigger a huge
/// pre-allocation; real payloads (top-member lists, strings) are far
/// smaller than the frame cap anyway.
fn decode_len(r: &mut WireReader<'_>) -> Result<usize, CodecError> {
    let len = usize::decode(r)?;
    if len > r.remaining() {
        return Err(r.err("length prefix exceeds payload"));
    }
    Ok(len)
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| r.err("string is not UTF-8"))
    }
}

impl WireCodec for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        Ok(Bytes::from(r.take(len)?.to_vec()))
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(r.err("Option tag out of domain")),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// ====================================================================
// Identifier / time / level newtypes
// ====================================================================

macro_rules! newtype_codec {
    ($($t:ident($inner:ty)),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                Ok($t(<$inner>::decode(r)?))
            }
        }
    )*};
}

newtype_codec!(NodeId(u32), WriterId(u32), ObjectId(u64), SimTime(u64), SimDuration(u64));

impl WireCodec for ConsistencyLevel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let v = f64::decode(r)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(r.err("consistency level outside [0, 1]"));
        }
        Ok(ConsistencyLevel::new(v))
    }
}

impl WireCodec for UpdateId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.writer.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(UpdateId { writer: WriterId::decode(r)?, seq: u64::decode(r)? })
    }
}

impl WireCodec for UpdatePayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            UpdatePayload::Opaque(bytes) => {
                out.push(0);
                bytes.encode(out);
            }
            UpdatePayload::Stroke { x, y, text } => {
                out.push(1);
                x.encode(out);
                y.encode(out);
                text.encode(out);
            }
            UpdatePayload::Booking { flight, seats, price_cents } => {
                out.push(2);
                flight.encode(out);
                seats.encode(out);
                price_cents.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(UpdatePayload::Opaque(Bytes::decode(r)?)),
            1 => Ok(UpdatePayload::Stroke {
                x: u16::decode(r)?,
                y: u16::decode(r)?,
                text: String::decode(r)?,
            }),
            2 => Ok(UpdatePayload::Booking {
                flight: u32::decode(r)?,
                seats: u32::decode(r)?,
                price_cents: i64::decode(r)?,
            }),
            _ => Err(r.err("UpdatePayload tag out of domain")),
        }
    }
}

impl WireCodec for Update {
    fn encode(&self, out: &mut Vec<u8>) {
        self.object.encode(out);
        self.id.encode(out);
        self.at.encode(out);
        self.meta_delta.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Update {
            object: ObjectId::decode(r)?,
            id: UpdateId::decode(r)?,
            at: SimTime::decode(r)?,
            meta_delta: i64::decode(r)?,
            payload: UpdatePayload::decode(r)?,
        })
    }
}

// ====================================================================
// Resolution-plane vector forms
// ====================================================================

/// A version vector is a sorted run of `(writer, counter)` pairs. Zero
/// counters are elided by construction ([`VersionVector`] never stores
/// them), so a zero on the wire is a malformed frame, not a representable
/// value — rejecting it keeps encode/decode a bijection.
impl WireCodec for VersionVector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.writers().encode(out);
        for (w, c) in self.iter() {
            w.encode(out);
            c.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut pairs = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let w = WriterId::decode(r)?;
            let c = u64::decode(r)?;
            if c == 0 {
                return Err(r.err("zero counter in version vector"));
            }
            pairs.push((w, c));
        }
        Ok(VersionVector::from_pairs(pairs))
    }
}

impl WireCodec for WriterSuffix {
    fn encode(&self, out: &mut Vec<u8>) {
        self.writer.encode(out);
        self.start_seq.encode(out);
        self.times.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(WriterSuffix {
            writer: WriterId::decode(r)?,
            start_seq: u64::decode(r)?,
            times: Vec::<SimTime>::decode(r)?,
        })
    }
}

impl WireCodec for VvSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.counters.encode(out);
        self.meta.encode(out);
        self.latest.encode(out);
        self.tail.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(VvSummary {
            counters: VersionVector::decode(r)?,
            meta: i64::decode(r)?,
            latest: Option::<SimTime>::decode(r)?,
            tail: Vec::<WriterSuffix>::decode(r)?,
        })
    }
}

impl WireCodec for VvDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.counters.encode(out);
        self.meta.encode(out);
        self.latest.encode(out);
        self.suffixes.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(VvDelta {
            counters: VersionVector::decode(r)?,
            meta: i64::decode(r)?,
            latest: Option::<SimTime>::decode(r)?,
            suffixes: Vec::<WriterSuffix>::decode(r)?,
        })
    }
}

impl WireCodec for ReferenceState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.winner.encode(out);
        self.counts.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(ReferenceState {
            winner: Option::<NodeId>::decode(r)?,
            counts: VersionVector::decode(r)?,
        })
    }
}

impl WireCodec for ReferenceWire {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReferenceWire::Full(reference) => {
                out.push(0);
                reference.encode(out);
            }
            ReferenceWire::Delta { winner, diffs } => {
                out.push(1);
                winner.encode(out);
                diffs.len().encode(out);
                for (w, c) in diffs {
                    w.encode(out);
                    // Unlike a vector entry, a zero *override* is
                    // meaningful: it erases the writer from the base.
                    c.encode(out);
                }
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(ReferenceWire::Full(ReferenceState::decode(r)?)),
            1 => {
                let winner = Option::<NodeId>::decode(r)?;
                let len = decode_len(r)?;
                let mut diffs = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    diffs.push((WriterId::decode(r)?, u64::decode(r)?));
                }
                Ok(ReferenceWire::Delta { winner, diffs })
            }
            _ => Err(r.err("ReferenceWire tag out of domain")),
        }
    }
}

// ====================================================================
// Client-layer configuration types
// ====================================================================

impl WireCodec for ReadConsistency {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReadConsistency::Any => out.push(0),
            ReadConsistency::AtLeast(level) => {
                out.push(1);
                level.encode(out);
            }
            ReadConsistency::Fresh => out.push(2),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(ReadConsistency::Any),
            1 => Ok(ReadConsistency::AtLeast(ConsistencyLevel::decode(r)?)),
            2 => Ok(ReadConsistency::Fresh),
            _ => Err(r.err("ReadConsistency tag out of domain")),
        }
    }
}

impl WireCodec for MaxBounds {
    fn encode(&self, out: &mut Vec<u8>) {
        self.numerical.encode(out);
        self.order.encode(out);
        self.staleness.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(MaxBounds {
            numerical: f64::decode(r)?,
            order: f64::decode(r)?,
            staleness: SimDuration::decode(r)?,
        })
    }
}

impl WireCodec for Weights {
    fn encode(&self, out: &mut Vec<u8>) {
        self.numerical.encode(out);
        self.order.encode(out);
        self.staleness.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Weights {
            numerical: f64::decode(r)?,
            order: f64::decode(r)?,
            staleness: f64::decode(r)?,
        })
    }
}

impl WireCodec for ResolutionPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.code().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let code = u8::decode(r)?;
        ResolutionPolicy::from_code(code)
            .ok_or_else(|| r.err("resolution policy code out of domain"))
    }
}

impl WireCodec for BackgroundFreq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BackgroundFreq::Disabled => out.push(0),
            BackgroundFreq::Every(period) => {
                out.push(1);
                period.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(BackgroundFreq::Disabled),
            1 => Ok(BackgroundFreq::Every(SimDuration::decode(r)?)),
            _ => Err(r.err("BackgroundFreq tag out of domain")),
        }
    }
}

impl WireCodec for ConsistencySpec {
    fn encode(&self, out: &mut Vec<u8>) {
        let (bounds, weights, policy, hint, background) = self.parts();
        bounds.encode(out);
        weights.encode(out);
        policy.encode(out);
        hint.encode(out);
        background.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let bounds = Option::<MaxBounds>::decode(r)?;
        let weights = Option::<Weights>::decode(r)?;
        let policy = Option::<ResolutionPolicy>::decode(r)?;
        let hint = Option::<f64>::decode(r)?;
        let background = Option::<BackgroundFreq>::decode(r)?;
        ConsistencySpec::from_parts(bounds, weights, policy, hint, background)
            .map_err(|_| r.err("consistency spec fields out of domain"))
    }
}

// ====================================================================
// Command / Response
// ====================================================================

impl WireCodec for Command {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Command::Write { object, meta_delta, payload } => {
                out.push(0);
                object.encode(out);
                meta_delta.encode(out);
                payload.encode(out);
            }
            Command::Read { object, consistency } => {
                out.push(1);
                object.encode(out);
                consistency.encode(out);
            }
            Command::Peek { object } => {
                out.push(2);
                object.encode(out);
            }
            Command::Level { object } => {
                out.push(3);
                object.encode(out);
            }
            Command::Report { object } => {
                out.push(4);
                object.encode(out);
            }
            Command::DemandResolution { object } => {
                out.push(5);
                object.encode(out);
            }
            Command::Dissatisfied { object, new_weights } => {
                out.push(6);
                object.encode(out);
                new_weights.encode(out);
            }
            Command::SetConsistencyMetric { numerical_max, order_max, staleness_max } => {
                out.push(7);
                numerical_max.encode(out);
                order_max.encode(out);
                staleness_max.encode(out);
            }
            Command::SetWeight { numerical, order, staleness } => {
                out.push(8);
                numerical.encode(out);
                order.encode(out);
                staleness.encode(out);
            }
            Command::SetResolution { code } => {
                out.push(9);
                code.encode(out);
            }
            Command::SetHint { hint } => {
                out.push(10);
                hint.encode(out);
            }
            Command::SetBackgroundFreq { period } => {
                out.push(11);
                period.encode(out);
            }
            Command::SetPriority { node, priority } => {
                out.push(12);
                node.encode(out);
                priority.encode(out);
            }
            Command::Configure { spec } => {
                out.push(13);
                spec.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Command::Write {
                object: ObjectId::decode(r)?,
                meta_delta: i64::decode(r)?,
                payload: UpdatePayload::decode(r)?,
            }),
            1 => Ok(Command::Read {
                object: ObjectId::decode(r)?,
                consistency: ReadConsistency::decode(r)?,
            }),
            2 => Ok(Command::Peek { object: ObjectId::decode(r)? }),
            3 => Ok(Command::Level { object: ObjectId::decode(r)? }),
            4 => Ok(Command::Report { object: ObjectId::decode(r)? }),
            5 => Ok(Command::DemandResolution { object: ObjectId::decode(r)? }),
            6 => Ok(Command::Dissatisfied {
                object: ObjectId::decode(r)?,
                new_weights: Option::<Weights>::decode(r)?,
            }),
            7 => Ok(Command::SetConsistencyMetric {
                numerical_max: f64::decode(r)?,
                order_max: f64::decode(r)?,
                staleness_max: SimDuration::decode(r)?,
            }),
            8 => Ok(Command::SetWeight {
                numerical: f64::decode(r)?,
                order: f64::decode(r)?,
                staleness: f64::decode(r)?,
            }),
            9 => Ok(Command::SetResolution { code: u8::decode(r)? }),
            10 => Ok(Command::SetHint { hint: f64::decode(r)? }),
            11 => Ok(Command::SetBackgroundFreq { period: Option::<SimDuration>::decode(r)? }),
            12 => Ok(Command::SetPriority { node: NodeId::decode(r)?, priority: u8::decode(r)? }),
            13 => Ok(Command::Configure { spec: ConsistencySpec::decode(r)? }),
            _ => Err(r.err("Command tag out of domain")),
        }
    }
}

impl WireCodec for ReadResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.object.encode(out);
        self.meta.encode(out);
        self.updates.encode(out);
        self.latest_update.encode(out);
        self.level.encode(out);
        self.probed.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(ReadResult {
            object: ObjectId::decode(r)?,
            meta: i64::decode(r)?,
            updates: usize::decode(r)?,
            latest_update: Option::<SimTime>::decode(r)?,
            level: ConsistencyLevel::decode(r)?,
            probed: bool::decode(r)?,
        })
    }
}

impl WireCodec for NodeReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.level.encode(out);
        self.hint_floor.encode(out);
        self.resolutions_initiated.encode(out);
        self.rollbacks.encode(out);
        self.top_members.encode(out);
        self.meta.encode(out);
        self.updates.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(NodeReport {
            node: NodeId::decode(r)?,
            level: ConsistencyLevel::decode(r)?,
            hint_floor: ConsistencyLevel::decode(r)?,
            resolutions_initiated: u64::decode(r)?,
            rollbacks: u64::decode(r)?,
            top_members: Vec::<NodeId>::decode(r)?,
            meta: i64::decode(r)?,
            updates: usize::decode(r)?,
        })
    }
}

impl WireCodec for WireError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireError::UnknownNode(n) => {
                out.push(0);
                n.encode(out);
            }
            WireError::UnknownObject(o) => {
                out.push(1);
                o.encode(out);
            }
            WireError::NonConsecutiveSeq { writer, expected, got } => {
                out.push(2);
                writer.encode(out);
                expected.encode(out);
                got.encode(out);
            }
            WireError::RollbackBeyondLog => out.push(3),
            WireError::InvalidParameter(what) => {
                out.push(4);
                what.encode(out);
            }
            WireError::InvalidConfig { field, reason } => {
                out.push(5);
                field.encode(out);
                reason.encode(out);
            }
            WireError::NothingToResolve => out.push(6),
            WireError::ResolutionContended => out.push(7),
            WireError::HorizonExceeded => out.push(8),
            WireError::EngineUnavailable(what) => {
                out.push(9);
                what.encode(out);
            }
            WireError::Transport(what) => {
                out.push(10);
                what.encode(out);
            }
            WireError::Protocol(what) => {
                out.push(11);
                what.encode(out);
            }
            // Appended after tags 0..=11 were pinned: existing encodings
            // are untouched, old decoders reject tag 12 as out-of-domain.
            WireError::ServerAtCapacity { limit } => {
                out.push(12);
                limit.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(WireError::UnknownNode(NodeId::decode(r)?)),
            1 => Ok(WireError::UnknownObject(ObjectId::decode(r)?)),
            2 => Ok(WireError::NonConsecutiveSeq {
                writer: WriterId::decode(r)?,
                expected: u64::decode(r)?,
                got: u64::decode(r)?,
            }),
            3 => Ok(WireError::RollbackBeyondLog),
            4 => Ok(WireError::InvalidParameter(String::decode(r)?)),
            5 => Ok(WireError::InvalidConfig {
                field: String::decode(r)?,
                reason: String::decode(r)?,
            }),
            6 => Ok(WireError::NothingToResolve),
            7 => Ok(WireError::ResolutionContended),
            8 => Ok(WireError::HorizonExceeded),
            9 => Ok(WireError::EngineUnavailable(String::decode(r)?)),
            10 => Ok(WireError::Transport(String::decode(r)?)),
            11 => Ok(WireError::Protocol(String::decode(r)?)),
            12 => Ok(WireError::ServerAtCapacity { limit: u32::decode(r)? }),
            _ => Err(r.err("WireError tag out of domain")),
        }
    }
}

impl WireCodec for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Done => out.push(0),
            Response::Written { update } => {
                out.push(1);
                update.encode(out);
            }
            Response::Value { read } => {
                out.push(2);
                read.encode(out);
            }
            Response::Level { level } => {
                out.push(3);
                level.encode(out);
            }
            Response::Report { report } => {
                out.push(4);
                report.encode(out);
            }
            Response::Rejected { error } => {
                out.push(5);
                error.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Response::Done),
            1 => Ok(Response::Written { update: Update::decode(r)? }),
            2 => Ok(Response::Value { read: ReadResult::decode(r)? }),
            3 => Ok(Response::Level { level: ConsistencyLevel::decode(r)? }),
            4 => Ok(Response::Report { report: NodeReport::decode(r)? }),
            5 => Ok(Response::Rejected { error: WireError::decode(r)? }),
            _ => Err(r.err("Response tag out of domain")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        0xABu8.encode(&mut out);
        0xBEEFu16.encode(&mut out);
        7u32.encode(&mut out);
        u64::MAX.encode(&mut out);
        (-3i64).encode(&mut out);
        1.5f64.encode(&mut out);
        true.encode(&mut out);
        "héllo".to_string().encode(&mut out);
        let mut r = WireReader::new(&out);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::decode(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut r).unwrap(), -3);
        assert_eq!(f64::decode(&mut r).unwrap(), 1.5);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let bytes = 42u64.to_bytes();
        assert!(u64::from_bytes(&bytes[..7]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(u64::from_bytes(&long).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        // A length prefix claiming u64::MAX elements must fail fast.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        assert!(Vec::<u8>::from_bytes(&buf).is_err());
        assert!(String::from_bytes(&buf).is_err());
    }

    #[test]
    fn resolution_vector_forms_round_trip() {
        let vv = VersionVector::from_pairs([(WriterId(1), 4), (WriterId(9), 2)]);
        assert_eq!(VersionVector::from_bytes(&vv.to_bytes()).unwrap(), vv);

        let summary = VvSummary {
            counters: vv.clone(),
            meta: -7,
            latest: Some(SimTime::from_micros(42)),
            tail: vec![WriterSuffix {
                writer: WriterId(9),
                start_seq: 1,
                times: vec![SimTime::from_micros(40), SimTime::from_micros(42)],
            }],
        };
        assert_eq!(VvSummary::from_bytes(&summary.to_bytes()).unwrap(), summary);

        let delta = VvDelta {
            counters: vv.clone(),
            meta: 3,
            latest: None,
            suffixes: vec![WriterSuffix {
                writer: WriterId(1),
                start_seq: 4,
                times: vec![SimTime::ZERO],
            }],
        };
        assert_eq!(VvDelta::from_bytes(&delta.to_bytes()).unwrap(), delta);

        let full = ReferenceWire::Full(ReferenceState { winner: Some(NodeId(3)), counts: vv });
        assert_eq!(ReferenceWire::from_bytes(&full.to_bytes()).unwrap(), full);
        // A zero override is meaningful in a Delta (it erases the writer).
        let compact =
            ReferenceWire::Delta { winner: None, diffs: vec![(WriterId(1), 0), (WriterId(2), 5)] };
        assert_eq!(ReferenceWire::from_bytes(&compact.to_bytes()).unwrap(), compact);
    }

    #[test]
    fn zero_vector_counter_is_rejected() {
        // VersionVector elides zero counters, so a zero entry can only come
        // from a malformed frame.
        let mut buf = Vec::new();
        1usize.encode(&mut buf);
        WriterId(5).encode(&mut buf);
        0u64.encode(&mut buf);
        assert!(VersionVector::from_bytes(&buf).is_err());
        // An unknown ReferenceWire tag is out of domain.
        assert!(ReferenceWire::from_bytes(&[2]).is_err());
    }

    #[test]
    fn out_of_domain_values_are_rejected() {
        assert!(bool::from_bytes(&[9]).is_err());
        // Resolution policy code 0 is unassigned.
        assert!(ResolutionPolicy::from_bytes(&[0]).is_err());
        // Consistency level outside the unit interval.
        let bytes = 1.5f64.to_bytes();
        assert!(ConsistencyLevel::from_bytes(&bytes).is_err());
        // An out-of-domain hint inside a spec fails revalidation on decode.
        let mut buf = Vec::new();
        Option::<MaxBounds>::None.encode(&mut buf);
        Option::<Weights>::None.encode(&mut buf);
        Option::<ResolutionPolicy>::None.encode(&mut buf);
        Some(7.5f64).encode(&mut buf);
        Option::<BackgroundFreq>::None.encode(&mut buf);
        assert!(ConsistencySpec::from_bytes(&buf).is_err());
    }
}
