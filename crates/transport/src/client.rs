//! [`RemoteEngine`]: the client stub that makes a served IDEA cluster look
//! like a local engine.
//!
//! Implements [`EngineHandle`] (and [`CommandExecutor`]), so the
//! `Session`/`ObjectHandle` API from `idea_core::client` runs unchanged
//! against a remote deployment. A small connection pool carries the
//! traffic; object-addressed commands are pinned to the pool connection
//! `ShardId::of(object, pool)` — the same hash the server-side shard
//! mailboxes use — so writes to one object stay FIFO end to end while
//! disjoint objects spread across connections.
//!
//! Blocking calls ([`EngineHandle::execute`]) register the request id,
//! write the frame and wait for the correlated response; fire-and-forget
//! calls ([`EngineHandle::submit`]) write a [`NO_REPLY`] frame and return
//! as soon as the bytes are handed to the socket — no hidden round trip,
//! which is what lets a write drain pipeline over one connection.

use crate::frame::{frame_bytes, read_frame, Frame, FramePayload, NO_REPLY};
use crossbeam::channel::{bounded, Sender};
use idea_core::{Command, CommandExecutor, EngineHandle, Response};
use idea_types::{NodeId, ShardId, WireError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Counters for observing a client's traffic — the pipelining pin in
/// `tests/pipelining.rs` asserts on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Command frames written (both blocking and fire-and-forget).
    pub frames_sent: u64,
    /// Round trips actually waited for (blocking executes only).
    pub replies_awaited: u64,
}

type PendingMap = Mutex<HashMap<u64, Sender<Result<Response, WireError>>>>;

/// Shared between a connection and its reader thread: the in-flight
/// request map plus the "connection is gone" marker. The reader records
/// the disconnect reason *before* draining the map, so a request that
/// registers after the drain still observes the failure instead of
/// waiting out its timeout.
struct ConnShared {
    pending: PendingMap,
    closed: Mutex<Option<WireError>>,
}

struct Connection {
    /// Write half; a lock serialises concurrent frame writes.
    write: Mutex<TcpStream>,
    /// For shutting the socket down on drop (unblocks the reader thread).
    raw: TcpStream,
    shared: Arc<ConnShared>,
    reader: Option<JoinHandle<()>>,
}

impl Connection {
    fn open(addr: SocketAddr, handshake_timeout: Duration) -> Result<(Self, u32), WireError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| WireError::Transport(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);

        // Handshake under a read timeout so a silent peer cannot hang the
        // constructor; the reader thread afterwards blocks indefinitely.
        let _ = stream.set_read_timeout(Some(handshake_timeout));
        let mut read_half =
            stream.try_clone().map_err(|e| WireError::Transport(format!("clone stream: {e}")))?;
        let hello = read_frame(&mut read_half)?
            .ok_or_else(|| WireError::Transport("server closed during handshake".into()))?;
        let nodes = match hello.payload {
            FramePayload::Hello { nodes } => nodes,
            // The server refused admission: surface its typed rejection
            // (e.g. `ServerAtCapacity`) as this call's error so callers can
            // tell "server full" from a dead or misbehaving peer.
            FramePayload::Response(Response::Rejected { error }) => return Err(error),
            _ => return Err(WireError::Protocol("expected Hello as the first frame".into())),
        };
        let _ = stream.set_read_timeout(None);

        let shared =
            Arc::new(ConnShared { pending: Mutex::new(HashMap::new()), closed: Mutex::new(None) });
        let reader = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("idea-remote-reader".into())
                .spawn(move || reader_loop(read_half, &shared))
                .map_err(|e| WireError::Transport(format!("spawn reader: {e}")))?
        };
        let conn = Connection {
            write: Mutex::new(
                stream
                    .try_clone()
                    .map_err(|e| WireError::Transport(format!("clone stream: {e}")))?,
            ),
            raw: stream,
            shared,
            reader: Some(reader),
        };
        Ok((conn, nodes))
    }

    fn send(&self, frame: &Frame) -> Result<(), WireError> {
        // An over-cap command fails its own call with a typed error here,
        // before anything touches the socket.
        let bytes = frame_bytes(frame)?;
        let mut w = self.write.lock();
        w.write_all(&bytes).map_err(|e| WireError::Transport(format!("write frame: {e}")))
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        let _ = self.raw.shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// Demultiplexes response frames into the pending-request map; on any
/// read failure fails every in-flight request with a transport error.
fn reader_loop(mut read_half: TcpStream, shared: &ConnShared) {
    let disconnect = loop {
        match read_frame(&mut read_half) {
            Ok(Some(Frame { request_id, payload: FramePayload::Response(resp), .. })) => {
                if let Some(tx) = shared.pending.lock().remove(&request_id) {
                    let _ = tx.send(Ok(resp));
                }
                // An unknown id is a late reply whose waiter timed out —
                // dropped on the floor by design.
            }
            // Servers send nothing but responses after the handshake.
            Ok(Some(_)) => break WireError::Protocol("unexpected non-response frame".into()),
            Ok(None) => break WireError::Transport("connection closed by server".into()),
            Err(e) => break e,
        }
    };
    // Mark the connection dead *first*, then fail the in-flight requests:
    // a request registering between the two steps sees the marker.
    *shared.closed.lock() = Some(disconnect.clone());
    for (_, tx) in shared.pending.lock().drain() {
        let _ = tx.send(Err(disconnect.clone()));
    }
}

/// A connected client for a served IDEA deployment. See the module docs.
pub struct RemoteEngine {
    conns: Vec<Connection>,
    nodes: usize,
    next_id: AtomicU64,
    frames_sent: AtomicU64,
    replies_awaited: AtomicU64,
    response_timeout: Duration,
}

impl RemoteEngine {
    /// Connects a single-connection client.
    ///
    /// # Errors
    /// Fails on connection or handshake failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_pool(addr, 1)
    }

    /// Connects a client with `pool` connections (object-addressed traffic
    /// is spread by `ShardId::of(object, pool)`).
    ///
    /// # Errors
    /// Fails on connection or handshake failure, or when the server
    /// reports a different deployment size on different connections.
    pub fn connect_pool(addr: impl ToSocketAddrs, pool: usize) -> Result<Self, WireError> {
        let pool = pool.max(1);
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| WireError::Transport(format!("resolve address: {e}")))?
            .next()
            .ok_or_else(|| WireError::Transport("address resolved to nothing".into()))?;
        let mut conns = Vec::with_capacity(pool);
        let mut nodes = None;
        for _ in 0..pool {
            let (conn, n) = Connection::open(addr, Duration::from_secs(10))?;
            if *nodes.get_or_insert(n) != n {
                return Err(WireError::Protocol(
                    "server reported inconsistent deployment sizes".into(),
                ));
            }
            conns.push(conn);
        }
        Ok(RemoteEngine {
            conns,
            nodes: nodes.unwrap_or(0) as usize,
            next_id: AtomicU64::new(1),
            frames_sent: AtomicU64::new(0),
            replies_awaited: AtomicU64::new(0),
            response_timeout: Duration::from_secs(30),
        })
    }

    /// Replaces the per-request response timeout (default 30 s).
    pub fn with_response_timeout(mut self, timeout: Duration) -> Self {
        self.response_timeout = timeout;
        self
    }

    /// Traffic counters since connect.
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            frames_sent: self.frames_sent.load(Ordering::SeqCst),
            replies_awaited: self.replies_awaited.load(Ordering::SeqCst),
        }
    }

    /// The pool connection a command travels on: object-addressed commands
    /// are pinned by the object hash (end-to-end per-object FIFO),
    /// node-wide commands use the first connection.
    fn conn_for(&self, cmd: &Command) -> &Connection {
        match cmd.object() {
            Some(object) => &self.conns[ShardId::of(object, self.conns.len()).index()],
            None => &self.conns[0],
        }
    }
}

impl CommandExecutor for RemoteEngine {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn try_execute(&self, node: NodeId, cmd: Command) -> std::result::Result<Response, WireError> {
        let conn = self.conn_for(&cmd);
        let request_id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        conn.shared.pending.lock().insert(request_id, tx);
        let frame = Frame { request_id, node, payload: FramePayload::Command(cmd) };
        if let Err(e) = conn.send(&frame) {
            conn.shared.pending.lock().remove(&request_id);
            return Err(e);
        }
        // The reader may have died between registration and now (it fails
        // the requests it saw, then marks the connection): if the marker is
        // set and our entry is still in the map, nobody will answer it.
        if let Some(reason) = conn.shared.closed.lock().clone() {
            if conn.shared.pending.lock().remove(&request_id).is_some() {
                return Err(reason);
            }
        }
        self.frames_sent.fetch_add(1, Ordering::SeqCst);
        self.replies_awaited.fetch_add(1, Ordering::SeqCst);
        match rx.recv_timeout(self.response_timeout) {
            Ok(outcome) => outcome,
            Err(_) => {
                conn.shared.pending.lock().remove(&request_id);
                Err(WireError::Transport(format!("no response within {:?}", self.response_timeout)))
            }
        }
    }

    fn try_submit(&self, node: NodeId, cmd: Command) -> std::result::Result<(), WireError> {
        let conn = self.conn_for(&cmd);
        let frame = Frame { request_id: NO_REPLY, node, payload: FramePayload::Command(cmd) };
        conn.send(&frame)?;
        self.frames_sent.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

impl EngineHandle for RemoteEngine {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn execute(&mut self, node: NodeId, cmd: Command) -> Response {
        CommandExecutor::try_execute(self, node, cmd)
            .unwrap_or_else(|error| Response::Rejected { error })
    }

    fn submit(&mut self, node: NodeId, cmd: Command) {
        let _ = CommandExecutor::try_submit(self, node, cmd);
    }
}
