//! Network substrate for the IDEA reproduction.
//!
//! The paper evaluated IDEA on PlanetLab (40 nodes spanning the US and
//! Canada). This crate replaces that testbed with two interchangeable
//! engines driving the *same* protocol code:
//!
//! * [`sim::SimEngine`] — a deterministic discrete-event simulator in virtual
//!   time. All figures and tables of the paper are regenerated on it; a
//!   seed fully determines a run.
//! * [`threaded::ThreadedEngine`] — one OS thread per node, crossbeam
//!   channels for links, a router thread injecting the same latency model in
//!   wall-clock time. Used by examples and integration tests to demonstrate
//!   the protocol under real concurrency.
//!
//! Protocol logic implements [`Proto`] and interacts with the world only
//! through [`Context`] (time, identity, sends, timers, RNG), which is what
//! makes the two engines interchangeable.
//!
//! [`topology::Topology`] captures the WAN shape (per-pair one-way delays);
//! [`latency::LatencyModel`] adds per-message jitter; [`stats::NetStats`]
//! counts messages and bytes per protocol class — the quantity Table 3 of
//! the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod proto;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod topology;
pub mod wheel;

pub use latency::{Jitter, LatencyModel};
pub use proto::{Context, Proto, ShardedProto, TimerId, Wire};
pub use sim::{Quiescence, SimConfig, SimEngine};
pub use stats::{MsgClass, NetStats, StatsSnapshot};
pub use threaded::{shards_from_env, ShardedEngine, ThreadedConfig, ThreadedEngine};
pub use topology::{Region, Topology};
pub use wheel::TimerWheel;
