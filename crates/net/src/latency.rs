//! One-way latency models.
//!
//! The paper's 40 PlanetLab nodes "span US and Canada", giving one-way
//! delays from a few ms (same site) to ~60 ms (cross-continent). A
//! [`LatencyModel`] yields the *base* one-way delay for an ordered node
//! pair; [`Jitter`] perturbs it per message.

use idea_types::{NodeId, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-message perturbation applied on top of the base pair delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Jitter {
    /// No perturbation: delivery takes exactly the base delay.
    None,
    /// Uniform multiplicative jitter: base × U(1−f, 1+f).
    Proportional {
        /// Fractional half-width, e.g. 0.2 for ±20 %.
        frac: f64,
    },
    /// Additive uniform jitter in microseconds: base + U(0, extra).
    Additive {
        /// Maximum extra delay in microseconds.
        extra_us: u64,
    },
}

impl Jitter {
    /// Applies the jitter to `base` using `rng`.
    pub fn apply<R: Rng + ?Sized>(&self, base: SimDuration, rng: &mut R) -> SimDuration {
        match *self {
            Jitter::None => base,
            Jitter::Proportional { frac } => {
                let f = frac.clamp(0.0, 0.99);
                let k = rng.gen_range((1.0 - f)..=(1.0 + f));
                base.mul_f64(k)
            }
            Jitter::Additive { extra_us } => {
                if extra_us == 0 {
                    base
                } else {
                    base + SimDuration::from_micros(rng.gen_range(0..=extra_us))
                }
            }
        }
    }
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter::Proportional { frac: 0.1 }
    }
}

/// Base one-way delay for an ordered node pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every pair has the same base delay.
    Constant(SimDuration),
    /// Dense per-pair matrix (row = from, column = to), microseconds.
    Matrix {
        /// Number of nodes (matrix is `n × n`).
        n: usize,
        /// Row-major one-way delays in microseconds; diagonal is local.
        us: Vec<u64>,
    },
}

impl LatencyModel {
    /// A flat model with the given one-way delay.
    pub fn constant_ms(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Builds a matrix model from a closure over ordered pairs.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId, NodeId) -> SimDuration) -> Self {
        let mut us = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                us.push(f(NodeId(i as u32), NodeId(j as u32)).as_micros());
            }
        }
        LatencyModel::Matrix { n, us }
    }

    /// Base one-way delay from `from` to `to`.
    pub fn base(&self, from: NodeId, to: NodeId) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Matrix { n, us } => {
                let (i, j) = (from.index(), to.index());
                assert!(i < *n && j < *n, "pair ({from},{to}) outside {n}-node matrix");
                SimDuration::from_micros(us[i * n + j])
            }
        }
    }

    /// Samples the delay for one message.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        jitter: Jitter,
        rng: &mut R,
    ) -> SimDuration {
        jitter.apply(self.base(from, to), rng)
    }

    /// Mean base one-way delay over all ordered pairs (excluding diagonal).
    pub fn mean_base(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Matrix { n, us } => {
                if *n < 2 {
                    return SimDuration::ZERO;
                }
                let mut sum = 0u128;
                let mut cnt = 0u128;
                for i in 0..*n {
                    for j in 0..*n {
                        if i != j {
                            sum += us[i * n + j] as u128;
                            cnt += 1;
                        }
                    }
                }
                SimDuration::from_micros((sum / cnt) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_flat() {
        let m = LatencyModel::constant_ms(50);
        assert_eq!(m.base(NodeId(0), NodeId(1)), SimDuration::from_millis(50));
        assert_eq!(m.base(NodeId(3), NodeId(2)), SimDuration::from_millis(50));
        assert_eq!(m.mean_base(), SimDuration::from_millis(50));
    }

    #[test]
    fn matrix_model_is_directional() {
        let m = LatencyModel::from_fn(2, |a, b| {
            SimDuration::from_millis(if a.0 < b.0 { 10 } else { 30 })
        });
        assert_eq!(m.base(NodeId(0), NodeId(1)), SimDuration::from_millis(10));
        assert_eq!(m.base(NodeId(1), NodeId(0)), SimDuration::from_millis(30));
        assert_eq!(m.mean_base(), SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn matrix_rejects_out_of_range() {
        let m = LatencyModel::from_fn(2, |_, _| SimDuration::from_millis(1));
        let _ = m.base(NodeId(0), NodeId(5));
    }

    #[test]
    fn no_jitter_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = SimDuration::from_millis(40);
        assert_eq!(Jitter::None.apply(base, &mut rng), base);
    }

    #[test]
    fn additive_jitter_only_adds() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = SimDuration::from_millis(40);
        for _ in 0..100 {
            let d = Jitter::Additive { extra_us: 5_000 }.apply(base, &mut rng);
            assert!(d >= base);
            assert!(d <= base + SimDuration::from_micros(5_000));
        }
        assert_eq!(Jitter::Additive { extra_us: 0 }.apply(base, &mut rng), base);
    }

    proptest! {
        #[test]
        fn proportional_jitter_stays_in_band(seed in 0u64..256, frac in 0.0f64..0.5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = SimDuration::from_millis(100);
            let d = Jitter::Proportional { frac }.apply(base, &mut rng);
            let lo = base.mul_f64(1.0 - frac);
            let hi = base.mul_f64(1.0 + frac);
            prop_assert!(d >= lo - SimDuration::from_micros(1));
            prop_assert!(d <= hi + SimDuration::from_micros(1));
        }

        #[test]
        fn sample_uses_base_pair(seed in 0u64..64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = LatencyModel::from_fn(4, |a, b| {
                SimDuration::from_millis(1 + (a.0 + b.0) as u64)
            });
            let d = m.sample(NodeId(1), NodeId(2), Jitter::None, &mut rng);
            prop_assert_eq!(d, SimDuration::from_millis(4));
        }
    }
}
