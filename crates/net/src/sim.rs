//! The deterministic discrete-event engine.
//!
//! [`SimEngine`] owns one [`Proto`] state machine per node, a single event
//! queue ordered by `(virtual time, sequence)`, and a seeded RNG. Identical
//! seeds and inputs produce bit-identical runs, which is what lets the bench
//! harness regenerate the paper's figures exactly.
//!
//! Failure injection (message loss, link partitions, node pauses) is built
//! in: the evaluation of §6 runs clean, while the extension tests exercise
//! the bottom-layer/rollback machinery under faults.

use crate::proto::{Context, Proto, TimerId, Wire};
use crate::stats::NetStats;
use crate::topology::Topology;
use crate::wheel::TimerWheel;
use idea_types::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; fully determines a run given identical inputs.
    pub seed: u64,
    /// Delivery delay for self-sends (models local queueing).
    pub local_delay: SimDuration,
    /// Probability that any remote message is dropped.
    pub loss_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0, local_delay: SimDuration::from_micros(50), loss_rate: 0.0 }
    }
}

/// What an event does when it fires.
#[derive(Debug)]
enum EvKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, kind: u64 },
}

/// Actions a node requested while handling one event.
enum Action<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: u64, delay: SimDuration, kind: u64 },
    Cancel(u64),
}

/// The [`Context`] implementation handed to protocol callbacks.
struct SimCtx<'a, M> {
    now: SimTime,
    me: NodeId,
    n: usize,
    actions: Vec<Action<M>>,
    rng: &'a mut StdRng,
    next_timer: &'a mut u64,
}

impl<M> Context<M> for SimCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn node_count(&self) -> usize {
        self.n
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }
    fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        let id = *self.next_timer;
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer { id, delay, kind });
        TimerId(id)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::Cancel(timer.0));
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// Events buffered while a node is paused.
enum Buffered<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, kind: u64 },
}

/// How a [`SimEngine::run_until_quiescent`] call ended.
///
/// A fault schedule can keep the network permanently busy (a re-arming
/// background timer, a flapping link replaying messages); silently stopping
/// at an internal event cap would let a "converged" assertion pass on a run
/// that never actually settled. The typed outcome makes the distinction
/// explicit so scenario tests can assert on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// Every event at or before the time limit was processed — the network
    /// genuinely drained within the window.
    Reached {
        /// Virtual time of the last processed event (or the starting time
        /// when the queue was already empty).
        at: SimTime,
    },
    /// The event budget ran out while work at or before the time limit
    /// still remained — the network never settled.
    LimitHit {
        /// Virtual time when the budget was exhausted.
        at: SimTime,
        /// Events processed (the full budget).
        events: u64,
    },
}

impl Quiescence {
    /// Virtual time when the run stopped, however it stopped.
    pub fn at(&self) -> SimTime {
        match *self {
            Quiescence::Reached { at } | Quiescence::LimitHit { at, .. } => at,
        }
    }

    /// True when the queue genuinely drained within the window.
    pub fn reached(&self) -> bool {
        matches!(self, Quiescence::Reached { .. })
    }
}

/// The deterministic discrete-event engine.
pub struct SimEngine<P: Proto> {
    cfg: SimConfig,
    topo: Topology,
    nodes: Vec<Option<P>>,
    /// Event queue: a hierarchical timer wheel popping in `(at, seq)`
    /// order, bit-identical to the `BinaryHeap` it replaced (proven by the
    /// proptest in [`crate::wheel`]).
    queue: TimerWheel<EvKind<P::Msg>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    stats: NetStats,
    /// Pending timer ids whose cancellation arrived before they popped.
    /// Entries are removed when the timer event pops, and cancellations of
    /// ids that are no longer live (already fired) are ignored, so the set
    /// is bounded by the number of in-flight timers.
    cancelled: HashSet<u64>,
    /// Timer ids currently queued and not cancelled.
    live_timers: HashSet<u64>,
    next_timer: u64,
    paused: Vec<bool>,
    parked: Vec<Vec<Buffered<P::Msg>>>,
    blocked: HashSet<(NodeId, NodeId)>,
    /// Per-link loss rates overriding the global `cfg.loss_rate`.
    link_loss: HashMap<(NodeId, NodeId), f64>,
    /// Extra seeded delivery jitter on remote sends (0 = off). A window
    /// wider than the inter-send gap reorders messages on a link.
    reorder_window: SimDuration,
    /// Probability a remote message is delivered twice (0 = off).
    duplicate_rate: f64,
    /// Per-node clock skew in parts-per-million of elapsed virtual time.
    /// Only the node's *view* of `now` drifts; engine event times do not.
    skew_ppm: Vec<i64>,
}

impl<P: Proto> SimEngine<P> {
    /// Builds an engine over `topo` with one protocol instance per node and
    /// runs every node's `on_start`.
    ///
    /// # Panics
    /// Panics if `nodes.len() != topo.len()`.
    pub fn new(topo: Topology, cfg: SimConfig, nodes: Vec<P>) -> Self {
        assert_eq!(nodes.len(), topo.len(), "one protocol instance per topology node");
        let n = nodes.len();
        let mut eng = SimEngine {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            topo,
            nodes: nodes.into_iter().map(Some).collect(),
            queue: TimerWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: NetStats::new(),
            cancelled: HashSet::new(),
            live_timers: HashSet::new(),
            next_timer: 0,
            paused: vec![false; n],
            parked: (0..n).map(|_| Vec::new()).collect(),
            blocked: HashSet::new(),
            link_loss: HashMap::new(),
            reorder_window: SimDuration::ZERO,
            duplicate_rate: 0.0,
            skew_ppm: vec![0; n],
        };
        for i in 0..n {
            eng.with_node(NodeId(i as u32), |p, ctx| p.on_start(ctx));
        }
        eng
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The topology the engine runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        self.nodes[id.index()].as_ref().expect("node present")
    }

    /// Mutable access to a node's protocol state (harness-side mutation that
    /// must not send messages; use [`SimEngine::with_node`] otherwise).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.nodes[id.index()].as_mut().expect("node present")
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Injects message loss for all subsequent remote sends.
    pub fn set_loss_rate(&mut self, p: f64) {
        self.cfg.loss_rate = p.clamp(0.0, 1.0);
    }

    /// Sets a per-link loss rate on `from → to`, overriding the global
    /// rate for that link. `p <= 0` removes the override.
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, p: f64) {
        if p <= 0.0 {
            self.link_loss.remove(&(from, to));
        } else {
            self.link_loss.insert((from, to), p.clamp(0.0, 1.0));
        }
    }

    /// Removes every per-link loss override.
    pub fn clear_link_loss(&mut self) {
        self.link_loss.clear();
    }

    /// Adds seeded uniform jitter in `[0, window]` to every remote
    /// delivery delay. A window wider than the inter-send gap reorders
    /// messages on a link; `SimDuration::ZERO` turns the layer off (and
    /// restores bit-identical unperturbed traces — no RNG draws happen).
    pub fn set_reorder_window(&mut self, window: SimDuration) {
        self.reorder_window = window;
    }

    /// Delivers each remote message a second time with probability `p`
    /// (the duplicate samples its own delay, so copies can arrive in
    /// either order). `0` turns the layer off without consuming RNG draws.
    pub fn set_duplicate_rate(&mut self, p: f64) {
        self.duplicate_rate = p.clamp(0.0, 1.0);
    }

    /// Skews `node`'s *view* of the clock by `ppm` parts-per-million of
    /// elapsed virtual time (positive = fast, negative = slow). Event
    /// scheduling is untouched; only `Context::now` as seen by the node
    /// drifts, which is what perturbs update timestamps.
    pub fn set_clock_skew(&mut self, node: NodeId, ppm: i64) {
        self.skew_ppm[node.index()] = ppm;
    }

    /// The clock-skew setting for `node` in parts-per-million.
    pub fn clock_skew(&self, node: NodeId) -> i64 {
        self.skew_ppm[node.index()]
    }

    /// Blocks the directed link `from → to` (partition injection).
    pub fn partition(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Restores the directed link `from → to`.
    pub fn heal(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Restores every blocked link at once.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Pauses a node: deliveries and timers park until `resume`.
    pub fn pause(&mut self, node: NodeId) {
        self.paused[node.index()] = true;
    }

    /// True while `node` is paused.
    pub fn is_paused(&self, node: NodeId) -> bool {
        self.paused[node.index()]
    }

    /// Discards every event parked while `node` was paused, returning how
    /// many were dropped. A `pause` + `drop_parked` + state swap models a
    /// crash: in-flight deliveries and the old incarnation's timer chains
    /// die with the process instead of replaying into the replacement.
    pub fn drop_parked(&mut self, node: NodeId) -> usize {
        std::mem::take(&mut self.parked[node.index()]).len()
    }

    /// Resumes a paused node, replaying parked events in arrival order.
    pub fn resume(&mut self, node: NodeId) {
        let i = node.index();
        if !self.paused[i] {
            return;
        }
        self.paused[i] = false;
        let parked = std::mem::take(&mut self.parked[i]);
        for ev in parked {
            match ev {
                Buffered::Deliver { from, msg } => self.with_node(node, |p, ctx| {
                    p.on_message(from, msg, ctx);
                }),
                Buffered::Timer { id, kind } => self.with_node(node, |p, ctx| {
                    p.on_timer(id, kind, ctx);
                }),
            }
        }
    }

    /// Runs `f` against node `id` with a live context — the harness's way of
    /// injecting external stimuli (a user's write, a demand for resolution).
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Msg>) -> R,
    ) -> R {
        let i = id.index();
        let mut node = self.nodes[i].take().expect("node present (not re-entrant)");
        let mut ctx = SimCtx {
            now: self.skewed_now(id),
            me: id,
            n: self.nodes.len(),
            actions: Vec::new(),
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
        };
        let out = f(&mut node, &mut ctx);
        let actions = ctx.actions;
        self.nodes[i] = Some(node);
        self.apply(id, actions);
        out
    }

    /// `node`'s view of the current time under its configured clock skew.
    fn skewed_now(&self, node: NodeId) -> SimTime {
        let ppm = self.skew_ppm[node.index()];
        if ppm == 0 {
            return self.now;
        }
        let t = self.now.as_micros() as i128;
        let drift = t * ppm as i128 / 1_000_000;
        SimTime::from_micros((t + drift).max(0) as u64)
    }

    /// Delay for one remote delivery: the topology sample plus, when the
    /// reorder layer is on, seeded uniform jitter within the window.
    fn remote_delay(&mut self, me: NodeId, to: NodeId) -> SimDuration {
        let base = self.topo.sample_delay(me, to, &mut self.rng);
        let window = self.reorder_window.as_micros();
        if window == 0 {
            return base;
        }
        base + SimDuration::from_micros(self.rng.gen_range(0..=window))
    }

    fn apply(&mut self, me: NodeId, actions: Vec<Action<P::Msg>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    self.stats.record(msg.class(), msg.wire_size() as u64);
                    if to != me {
                        if self.blocked.contains(&(me, to)) {
                            self.stats.record_drop();
                            continue;
                        }
                        let loss =
                            self.link_loss.get(&(me, to)).copied().unwrap_or(self.cfg.loss_rate);
                        if loss > 0.0 && self.rng.gen_bool(loss) {
                            self.stats.record_drop();
                            continue;
                        }
                    }
                    let delay =
                        if to == me { self.cfg.local_delay } else { self.remote_delay(me, to) };
                    let at = self.now + delay;
                    if to != me
                        && self.duplicate_rate > 0.0
                        && self.rng.gen_bool(self.duplicate_rate)
                    {
                        let dup_at = self.now + self.remote_delay(me, to);
                        self.push(at, EvKind::Deliver { from: me, to, msg: msg.clone() });
                        self.push(dup_at, EvKind::Deliver { from: me, to, msg });
                    } else {
                        self.push(at, EvKind::Deliver { from: me, to, msg });
                    }
                }
                Action::SetTimer { id, delay, kind } => {
                    let at = self.now + delay;
                    self.live_timers.insert(id);
                    self.push(at, EvKind::Timer { node: me, id: TimerId(id), kind });
                }
                Action::Cancel(id) => {
                    // Only live timers need a tombstone; cancelling one
                    // that already fired must not grow state forever.
                    if self.live_timers.remove(&id) {
                        self.cancelled.insert(id);
                    }
                }
            }
        }
    }

    fn push(&mut self, at: SimTime, kind: EvKind<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_micros(), seq, kind);
    }

    /// Processes the next event, if any; returns whether one was processed.
    pub fn step(&mut self) -> bool {
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        let at = SimTime::from_micros(at);
        debug_assert!(at >= self.now, "time must not run backwards");
        self.now = at;
        match kind {
            EvKind::Deliver { from, to, msg } => {
                let i = to.index();
                if self.paused[i] {
                    self.parked[i].push(Buffered::Deliver { from, msg });
                } else {
                    self.with_node(to, |p, ctx| p.on_message(from, msg, ctx));
                }
            }
            EvKind::Timer { node, id, kind } => {
                if self.cancelled.remove(&id.0) {
                    return true;
                }
                self.live_timers.remove(&id.0);
                let i = node.index();
                if self.paused[i] {
                    self.parked[i].push(Buffered::Timer { id, kind });
                } else {
                    self.with_node(node, |p, ctx| p.on_timer(id, kind, ctx));
                }
            }
        }
        true
    }

    /// Runs every event scheduled at or before `t`, then advances to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.queue.next_at().is_some_and(|at| at <= t.as_micros()) {
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Default event budget for [`SimEngine::run_until_quiescent`] — far
    /// above any settling run in this workspace, so hitting it means the
    /// network genuinely never drains.
    pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

    /// Runs until the queue drains of events at or before `limit`, under
    /// the default event budget. The typed outcome distinguishes a genuine
    /// drain from a run the budget cut off — assert
    /// [`Quiescence::reached`] when convergence is the claim.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> Quiescence {
        self.run_until_quiescent_bounded(limit, Self::DEFAULT_EVENT_BUDGET)
    }

    /// [`SimEngine::run_until_quiescent`] with an explicit event budget.
    pub fn run_until_quiescent_bounded(&mut self, limit: SimTime, budget: u64) -> Quiescence {
        let mut events = 0u64;
        while self.queue.next_at().is_some_and(|at| at <= limit.as_micros()) {
            if events >= budget {
                return Quiescence::LimitHit { at: self.now, events };
            }
            self.step();
            events += 1;
        }
        Quiescence::Reached { at: self.now }
    }

    /// Number of events still queued (parked events on paused nodes are not
    /// included).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Cancellation tombstones currently held (bounded by in-flight
    /// timers; exposed so tests can pin that the set cannot leak).
    pub fn pending_cancellations(&self) -> usize {
        self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MsgClass;

    /// Token-passing protocol: node 0 starts a token that hops to the next
    /// node `hops` times.
    #[derive(Debug, Clone)]
    struct Token {
        hops: u32,
    }

    impl Wire for Token {
        fn class(&self) -> MsgClass {
            MsgClass::App
        }
        fn wire_size(&self) -> usize {
            8
        }
    }

    struct Ring {
        received: Vec<SimTime>,
        start: bool,
    }

    impl Ring {
        fn new(start: bool) -> Self {
            Ring { received: Vec::new(), start }
        }
    }

    impl Proto for Ring {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            if self.start {
                ctx.send(NodeId(1), Token { hops: 1 });
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            self.received.push(ctx.now());
            if (msg.hops as usize) < ctx.node_count() * 3 {
                let next = NodeId((ctx.me().0 + 1) % ctx.node_count() as u32);
                ctx.send(next, Token { hops: msg.hops + 1 });
            }
        }
    }

    fn ring_engine(n: usize, seed: u64) -> SimEngine<Ring> {
        let nodes = (0..n).map(|i| Ring::new(i == 0)).collect();
        SimEngine::new(Topology::lan(n), SimConfig { seed, ..Default::default() }, nodes)
    }

    #[test]
    fn token_circulates_and_time_advances() {
        let mut eng = ring_engine(4, 1);
        let q = eng.run_until_quiescent(SimTime::from_secs(10));
        assert!(q.reached(), "a clean ring must drain");
        let end = q.at();
        assert!(end > SimTime::ZERO);
        let total: usize = (0..4).map(|i| eng.node(NodeId(i)).received.len()).sum();
        assert_eq!(total, 12); // 3 laps of 4 nodes
                               // LAN latency 0.5 ms/hop: 12 hops ≈ 6 ms.
        assert_eq!(end, SimTime::from_micros(500 * 12));
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = ring_engine(5, 99);
        let mut b = ring_engine(5, 99);
        a.run_until_quiescent(SimTime::from_secs(10));
        b.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(a.now(), b.now());
        for i in 0..5 {
            assert_eq!(a.node(NodeId(i)).received, b.node(NodeId(i)).received);
        }
        assert_eq!(a.stats().messages(MsgClass::App), b.stats().messages(MsgClass::App));
    }

    #[test]
    fn stats_count_sends() {
        let mut eng = ring_engine(4, 1);
        eng.run_until_quiescent(SimTime::from_secs(10));
        // on_start sends 1, each of the 12 receptions except the last resends.
        assert_eq!(eng.stats().messages(MsgClass::App), 12);
        assert_eq!(eng.stats().payload_bytes(MsgClass::App), 96);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut eng = ring_engine(4, 1);
        eng.run_until(SimTime::from_micros(1_200));
        assert_eq!(eng.now(), SimTime::from_micros(1_200));
        let total: usize = (0..4).map(|i| eng.node(NodeId(i)).received.len()).sum();
        assert_eq!(total, 2); // hops at 0.5 ms and 1.0 ms delivered
        assert!(eng.pending_events() > 0);
    }

    #[test]
    fn loss_drops_everything_at_rate_one() {
        let mut eng = ring_engine(4, 1);
        // The on_start token is already in flight; every send after the rate
        // change is dropped, so the ring dies after the first delivery.
        eng.set_loss_rate(1.0);
        eng.run_until_quiescent(SimTime::from_secs(10));
        let total: usize = (0..4).map(|i| eng.node(NodeId(i)).received.len()).sum();
        assert_eq!(total, 1);
        assert_eq!(eng.stats().dropped(), 1); // node 1's forward
    }

    #[test]
    fn partition_blocks_directed_link() {
        let mut eng = ring_engine(4, 1);
        eng.partition(NodeId(1), NodeId(2));
        eng.run_until_quiescent(SimTime::from_secs(10));
        // Token reaches node 1 then dies on the blocked link.
        assert_eq!(eng.node(NodeId(1)).received.len(), 1);
        assert_eq!(eng.node(NodeId(2)).received.len(), 0);
        assert_eq!(eng.stats().dropped(), 1);
        // Healing restores traffic for a fresh token.
        eng.heal(NodeId(1), NodeId(2));
        eng.with_node(NodeId(0), |_, ctx| ctx.send(NodeId(1), Token { hops: 1 }));
        eng.run_until_quiescent(SimTime::from_secs(20));
        assert!(!eng.node(NodeId(2)).received.is_empty());
    }

    #[test]
    fn pause_parks_and_resume_replays() {
        let mut eng = ring_engine(4, 1);
        eng.pause(NodeId(2));
        eng.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(2)).received.len(), 0);
        let before = eng.node(NodeId(3)).received.len();
        assert_eq!(before, 0, "token stalled at the paused node");
        eng.resume(NodeId(2));
        eng.run_until_quiescent(SimTime::from_secs(20));
        assert!(!eng.node(NodeId(2)).received.is_empty());
        assert!(!eng.node(NodeId(3)).received.is_empty());
    }

    /// Timer-based protocol for timer semantics tests.
    struct Ticker {
        fired: Vec<(u64, SimTime)>,
        cancel_second: bool,
        armed: Vec<TimerId>,
    }

    impl Proto for Ticker {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            let a = ctx.set_timer(SimDuration::from_millis(10), 1);
            let b = ctx.set_timer(SimDuration::from_millis(20), 2);
            self.armed = vec![a, b];
            if self.cancel_second {
                ctx.cancel_timer(b);
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Token, _c: &mut dyn Context<Token>) {}
        fn on_timer(&mut self, _t: TimerId, kind: u64, ctx: &mut dyn Context<Token>) {
            self.fired.push((kind, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let nodes = vec![Ticker { fired: vec![], cancel_second: false, armed: vec![] }];
        let mut eng = SimEngine::new(Topology::lan(1), SimConfig::default(), nodes);
        eng.run_until_quiescent(SimTime::from_secs(1));
        let fired = &eng.node(NodeId(0)).fired;
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0], (1, SimTime::from_millis(10)));
        assert_eq!(fired[1], (2, SimTime::from_millis(20)));
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let nodes = vec![Ticker { fired: vec![], cancel_second: true, armed: vec![] }];
        let mut eng = SimEngine::new(Topology::lan(1), SimConfig::default(), nodes);
        eng.run_until_quiescent(SimTime::from_secs(1));
        let fired = &eng.node(NodeId(0)).fired;
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1);
        // The tombstone was consumed when the cancelled event popped.
        assert_eq!(eng.pending_cancellations(), 0);
    }

    /// Protocol pattern that used to leak: arm a deadline, have it fire,
    /// then cancel the (already-fired) handle from inside the handler's
    /// cleanup. The tombstone set must stay empty, no matter how many times
    /// the cycle repeats.
    struct LateCancel {
        rounds: u32,
    }

    impl Proto for LateCancel {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            let t = ctx.set_timer(SimDuration::from_millis(1), 1);
            ctx.cancel_timer(TimerId(t.0 + 1_000_000)); // junk id: also a no-op
            let _ = t;
        }
        fn on_message(&mut self, _f: NodeId, _m: Token, _c: &mut dyn Context<Token>) {}
        fn on_timer(&mut self, timer: TimerId, _kind: u64, ctx: &mut dyn Context<Token>) {
            // The deadline fired; "cleanup" cancels the stale handle.
            ctx.cancel_timer(timer);
            if self.rounds < 100 {
                self.rounds += 1;
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
        }
    }

    #[test]
    fn cancelling_fired_timers_leaves_no_residue() {
        let nodes = vec![LateCancel { rounds: 0 }];
        let mut eng = SimEngine::new(Topology::lan(1), SimConfig::default(), nodes);
        eng.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(0)).rounds, 100);
        assert_eq!(eng.pending_cancellations(), 0, "cancelled-set must not grow unboundedly");
    }

    #[test]
    #[should_panic(expected = "one protocol instance per topology node")]
    fn node_count_mismatch_panics() {
        let _ = SimEngine::new(Topology::lan(3), SimConfig::default(), vec![Ring::new(false)]);
    }

    /// One-shot sprayer: node 0 sends `burst` tokens to node 1 at start;
    /// node 1 only records (no resends), so duplication and reordering are
    /// observable without feedback loops.
    struct Spray {
        burst: u32,
        received: Vec<u32>,
    }

    impl Proto for Spray {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            for hops in 0..self.burst {
                ctx.send(NodeId(1), Token { hops });
            }
        }
        fn on_message(&mut self, _f: NodeId, msg: Token, _c: &mut dyn Context<Token>) {
            self.received.push(msg.hops);
        }
    }

    fn spray_engine(burst: u32, seed: u64) -> SimEngine<Spray> {
        let nodes = vec![Spray { burst, received: vec![] }, Spray { burst: 0, received: vec![] }];
        SimEngine::new(Topology::lan(2), SimConfig { seed, ..Default::default() }, nodes)
    }

    #[test]
    fn link_loss_is_per_link() {
        let mut eng = ring_engine(4, 1);
        // Only 1→2 is lossy; the token dies there exactly like a partition
        // would kill it, and no other link is perturbed.
        eng.set_link_loss(NodeId(1), NodeId(2), 1.0);
        eng.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(1)).received.len(), 1);
        assert_eq!(eng.node(NodeId(2)).received.len(), 0);
        assert_eq!(eng.stats().dropped(), 1);
        // Clearing the override restores the link for a fresh token.
        eng.set_link_loss(NodeId(1), NodeId(2), 0.0);
        eng.with_node(NodeId(0), |_, ctx| ctx.send(NodeId(1), Token { hops: 1 }));
        eng.run_until_quiescent(SimTime::from_secs(20));
        assert!(!eng.node(NodeId(2)).received.is_empty());
    }

    #[test]
    fn reorder_window_perturbs_arrival_order_deterministically() {
        // Without the window a LAN burst arrives FIFO by send order.
        let mut clean = spray_engine(8, 7);
        clean.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(clean.node(NodeId(1)).received, (0..8).collect::<Vec<_>>());

        // A window much wider than the (zero) inter-send gap shuffles the
        // burst; the same seed reproduces the same shuffle bit-identically.
        let shuffled = |seed| {
            let mut eng = spray_engine(8, seed);
            eng.set_reorder_window(SimDuration::from_millis(50));
            // on_start already ran inside SimEngine::new, so re-spray.
            eng.with_node(NodeId(0), |p, ctx| p.on_start(ctx));
            eng.run_until_quiescent(SimTime::from_secs(1));
            eng.node(NodeId(1)).received.clone()
        };
        let a = shuffled(7);
        let b = shuffled(7);
        assert_eq!(a, b, "same seed, same permutation");
        assert_eq!(a.len(), 16, "first FIFO burst plus the re-sprayed one");
        let mut sorted = a[8..].to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "nothing lost or duplicated");
        assert_ne!(a[8..].to_vec(), sorted, "the wide window must actually reorder");
    }

    #[test]
    fn duplicate_rate_one_delivers_every_remote_message_twice() {
        let mut eng = spray_engine(3, 1);
        eng.set_duplicate_rate(1.0);
        eng.with_node(NodeId(0), |p, ctx| p.on_start(ctx));
        eng.run_until_quiescent(SimTime::from_secs(1));
        // First burst (pre-fault) delivered once each, second burst twice.
        assert_eq!(eng.node(NodeId(1)).received.len(), 3 + 6);
    }

    #[test]
    fn clock_skew_moves_only_the_nodes_view_of_now() {
        let mut eng = ring_engine(2, 1);
        eng.run_until(SimTime::from_secs(100));
        eng.set_clock_skew(NodeId(1), 500_000); // +50% fast
        eng.set_clock_skew(NodeId(0), -500_000); // 50% slow
        let fast = eng.with_node(NodeId(1), |_, ctx| ctx.now());
        let slow = eng.with_node(NodeId(0), |_, ctx| ctx.now());
        assert_eq!(fast, SimTime::from_secs(150));
        assert_eq!(slow, SimTime::from_secs(50));
        assert_eq!(eng.now(), SimTime::from_secs(100), "engine time is unskewed");
        assert_eq!(eng.clock_skew(NodeId(1)), 500_000);
    }

    #[test]
    fn drop_parked_discards_a_crashed_nodes_backlog() {
        let mut eng = ring_engine(4, 1);
        eng.pause(NodeId(2));
        eng.run_until_quiescent(SimTime::from_secs(10));
        // The token parked at node 2; a crash discards it instead of
        // replaying it into the restarted incarnation.
        assert_eq!(eng.drop_parked(NodeId(2)), 1);
        assert!(eng.is_paused(NodeId(2)));
        eng.resume(NodeId(2));
        eng.run_until_quiescent(SimTime::from_secs(20));
        assert_eq!(eng.node(NodeId(2)).received.len(), 0, "backlog was dropped");
        assert_eq!(eng.node(NodeId(3)).received.len(), 0, "ring stays dead");
    }

    /// Self-perpetuating storm: every delivery immediately re-sends, so the
    /// queue never drains and only the event budget can stop the run.
    struct Storm;

    impl Proto for Storm {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            ctx.send(NodeId(1), Token { hops: 0 });
        }
        fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            ctx.send(from, msg);
        }
    }

    #[test]
    fn permanently_busy_network_reports_limit_hit() {
        let mut eng = SimEngine::new(Topology::lan(2), SimConfig::default(), vec![Storm, Storm]);
        let q = eng.run_until_quiescent_bounded(SimTime::from_secs(3600), 1_000);
        assert!(!q.reached());
        match q {
            Quiescence::LimitHit { at, events } => {
                assert_eq!(events, 1_000);
                assert!(at > SimTime::ZERO);
                assert!(eng.pending_events() > 0, "work genuinely remained");
            }
            Quiescence::Reached { .. } => unreachable!("storm cannot drain"),
        }
    }

    #[test]
    fn disabled_fault_layers_leave_traces_bit_identical() {
        // Setting every fault knob to its off value must not consume RNG
        // draws: the run stays bit-identical to a never-touched engine.
        let mut base = ring_engine(5, 99);
        base.run_until_quiescent(SimTime::from_secs(10));
        let mut off = ring_engine(5, 99);
        off.set_reorder_window(SimDuration::ZERO);
        off.set_duplicate_rate(0.0);
        off.set_link_loss(NodeId(0), NodeId(1), 0.0);
        off.set_clock_skew(NodeId(0), 0);
        off.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(base.now(), off.now());
        for i in 0..5 {
            assert_eq!(base.node(NodeId(i)).received, off.node(NodeId(i)).received);
        }
    }
}
