//! Hierarchical timer wheel backing the discrete-event queue.
//!
//! Profiling the fig9 sweep showed `BinaryHeap` sift-up/sift-down on the
//! event queue as a top cost at N ≥ 80: every push and pop is `O(log m)`
//! with a cache-hostile access pattern, and a gossip burst queues tens of
//! thousands of deliveries at once. [`TimerWheel`] replaces the heap with
//! the classic hashed hierarchical wheel (Varghese & Lauck, SOSP '87):
//! eleven levels of 64 slots cover the full `u64` microsecond range, a
//! per-level occupancy bitmap finds the next slot in a handful of
//! instructions, and pushes/pops are amortised `O(1)`.
//!
//! Determinism is the hard requirement here, not speed: the engine pins
//! bit-identical runs per seed, so the wheel must pop events in exactly the
//! heap's `(at, seq)` order. Two structural facts make that cheap:
//!
//! * an entry is placed by the **highest bit where its deadline differs
//!   from the cursor**, so a level-0 slot only ever holds entries of a
//!   single microsecond tick, and
//! * `seq` is globally monotonic, so entries arrive at any slot in
//!   ascending `seq` order and within-slot FIFO *is* `(at, seq)` order.
//!
//! The equivalence is proven by a proptest against the heap implementation
//! over random schedule sequences (see the tests below) and by the engine's
//! pinned traces, which did not move when the heap was swapped out.

use std::collections::VecDeque;

/// One queued entry.
#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 11; // 11 × 6 = 66 bits ≥ u64

/// Deterministic hierarchical timer wheel keyed by `(at, seq)`.
///
/// `pop` returns entries in strictly ascending `(at, seq)` order, exactly
/// matching a min-`BinaryHeap` over the same keys. Deadlines must never be
/// scheduled in the past (`at ≥` the last popped deadline) — the engine
/// guarantees this because timers and deliveries are always armed relative
/// to the current virtual time.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `LEVELS × SLOTS` slots, flattened. Each slot is a FIFO; because
    /// `seq` is monotonic and cascades preserve stored order, every slot
    /// stays sorted by `seq` without ever sorting.
    slots: Vec<VecDeque<Entry<T>>>,
    /// One occupancy bitmap per level; bit `s` set ⇔ slot `s` non-empty.
    occupancy: [u64; LEVELS],
    /// Current position: no queued entry has `at < cursor`.
    cursor: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupancy: [0; LEVELS],
            cursor: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level an entry for `at` belongs to, relative to the current cursor:
    /// the level containing the highest bit where `at` and the cursor
    /// differ. This keeps every level-0 slot single-tick, which is what
    /// makes within-slot FIFO equal `(at, seq)` order.
    #[inline]
    fn level_for(&self, at: u64) -> usize {
        let diff = at ^ self.cursor;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        }
    }

    #[inline]
    fn slot_of(level: usize, at: u64) -> usize {
        ((at >> (BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Queues `item` at deadline `at` with tiebreak `seq`.
    ///
    /// `seq` must be strictly greater than every previously pushed `seq`
    /// (a global monotonic counter), and `at` must not lie before the last
    /// popped deadline.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cursor, "wheel deadlines must not be in the past");
        let level = self.level_for(at);
        let s = Self::slot_of(level, at);
        let slot = &mut self.slots[level * SLOTS + s];
        debug_assert!(slot.back().is_none_or(|e| e.seq < seq), "seq must be globally monotonic");
        slot.push_back(Entry { at, seq, item });
        self.occupancy[level] |= 1 << s;
        self.len += 1;
    }

    /// Cascades until level 0 holds the minimum entry; returns its slot.
    /// Advances the cursor (never past the minimum deadline).
    fn prepare(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            // By construction no occupied slot lies below the cursor's
            // digit at any level, so a shifted bitmap scan finds the
            // earliest occupied slot directly.
            let c0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let bits = self.occupancy[0] >> c0;
            if bits != 0 {
                let s = c0 + bits.trailing_zeros();
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                return Some(s as usize);
            }
            let level = (1..LEVELS)
                .find(|&l| self.occupancy[l] != 0)
                .expect("len > 0 but every level empty");
            let shift = BITS as usize * level;
            let cl = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            let bits = self.occupancy[level] >> cl;
            debug_assert!(bits != 0, "occupied slot below cursor digit");
            let s = cl + bits.trailing_zeros();
            // Jump to the start of that slot's block (zeroing lower
            // digits), then redistribute its entries into lower levels.
            let high_shift = shift + BITS as usize;
            let high_mask = if high_shift >= 64 { 0 } else { !0u64 << high_shift };
            self.cursor = (self.cursor & high_mask) | ((s as u64) << shift);
            self.occupancy[level] &= !(1 << s);
            let mut cascading = std::mem::take(&mut self.slots[level * SLOTS + s as usize]);
            // Re-insert in stored (ascending seq) order; all lower levels
            // are empty, so per-slot seq order is preserved.
            for e in cascading.drain(..) {
                let lvl = self.level_for(e.at);
                debug_assert!(lvl < level, "cascade must descend");
                let s = Self::slot_of(lvl, e.at);
                self.slots[lvl * SLOTS + s].push_back(e);
                self.occupancy[lvl] |= 1 << s;
            }
            // Hand the buffer back so its capacity is reused.
            self.slots[level * SLOTS + s as usize] = cascading;
        }
    }

    /// Deadline of the next entry, without removing it.
    ///
    /// Read-only on purpose: it must not advance the cursor, because the
    /// engine may peek past a boundary and then inject *earlier* events
    /// (`run_until(t)` followed by a harness send at `t + ε`). The global
    /// minimum always sits in the earliest occupied slot of the lowest
    /// non-empty level, so no cascading is needed to find it.
    pub fn next_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let level =
            (0..LEVELS).find(|&l| self.occupancy[l] != 0).expect("len > 0 but every level empty");
        let shift = BITS as usize * level;
        let cl = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
        let bits = self.occupancy[level] >> cl;
        debug_assert!(bits != 0, "occupied slot below cursor digit");
        let s = cl + bits.trailing_zeros();
        let slot = &self.slots[level * SLOTS + s as usize];
        if level == 0 {
            // Level-0 slots are single-tick: the front entry is minimal.
            slot.front().map(|e| e.at)
        } else {
            // Higher-level slots mix ticks (FIFO is by seq); scan for the
            // earliest deadline. Only hit when level 0 has drained.
            slot.iter().map(|e| e.at).min()
        }
    }

    /// Removes and returns the minimum `(at, seq)` entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let s = self.prepare()?;
        let e = self.slots[s].pop_front().expect("prepared slot non-empty");
        if self.slots[s].is_empty() {
            self.occupancy[0] &= !(1 << s);
        }
        self.len -= 1;
        Some((e.at, e.seq, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(50, 0, "a");
        w.push(10, 1, "b");
        w.push(10, 2, "c");
        w.push(700, 3, "d");
        w.push(50, 4, "e");
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, _, x)| x).collect();
        assert_eq!(order, vec!["b", "c", "a", "e", "d"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_push_during_drain_keeps_order() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 0);
        w.push(10, 1, 1);
        assert_eq!(w.pop().map(|(_, _, x)| x), Some(0));
        // New entry lands at the tick currently being drained.
        w.push(10, 2, 2);
        assert_eq!(w.pop().map(|(_, _, x)| x), Some(1));
        assert_eq!(w.pop().map(|(_, _, x)| x), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn far_deadlines_cascade_correctly() {
        let mut w = TimerWheel::new();
        // Deadlines spanning several levels, including block boundaries.
        let ats = [0u64, 63, 64, 65, 4095, 4096, 1 << 30, (1 << 30) + 1, u64::MAX / 2];
        for (i, &at) in ats.iter().enumerate() {
            w.push(at, i as u64, at);
        }
        let mut popped = Vec::new();
        while let Some((at, _, item)) = w.pop() {
            assert_eq!(at, item);
            popped.push(at);
        }
        let mut expect = ats.to_vec();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn next_at_peeks_without_removing() {
        let mut w = TimerWheel::new();
        w.push(500, 0, ());
        w.push(20, 1, ());
        assert_eq!(w.next_at(), Some(20));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().map(|(at, _, _)| at), Some(20));
        assert_eq!(w.next_at(), Some(500));
    }

    #[test]
    fn interleaved_push_pop_across_blocks() {
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        let mut push = |w: &mut TimerWheel<u64>, at: u64| {
            w.push(at, seq, at);
            seq += 1;
        };
        push(&mut w, 100);
        push(&mut w, 10_000);
        assert_eq!(w.pop().map(|(at, _, _)| at), Some(100));
        // Cursor sits at 100; push between the cursor and the far entry.
        push(&mut w, 5_000);
        push(&mut w, 101);
        assert_eq!(w.pop().map(|(at, _, _)| at), Some(101));
        assert_eq!(w.pop().map(|(at, _, _)| at), Some(5_000));
        assert_eq!(w.pop().map(|(at, _, _)| at), Some(10_000));
    }

    /// The tentpole proof: over random schedule sequences (pushes at random
    /// future offsets interleaved with pops), the wheel pops exactly the
    /// same `(at, seq)` stream as a `BinaryHeap` — the engine's previous
    /// queue — so swapping it into `SimEngine` is behaviour-preserving
    /// bit for bit.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push `count` entries at `now + offset`.
        Push { offset: u64, count: u8 },
        /// Pop up to `count` entries.
        Pop { count: u8 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u32..8, 0u64..u64::MAX / 4, 1u8..6).prop_map(|(tag, raw, count)| match tag {
            // Mostly near-future pushes…
            0..=3 => Op::Push { offset: raw % 200_000, count: 1 + count % 3 },
            // …some far-future ones to force multi-level cascades…
            4 => Op::Push { offset: raw, count: 1 },
            // …and pops.
            _ => Op::Pop { count },
        })
    }

    proptest! {
        #[test]
        fn matches_binary_heap_exactly(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64; // last popped deadline: pushes are at ≥ now
            for op in ops {
                match op {
                    Op::Push { offset, count } => {
                        for _ in 0..count {
                            let at = now.saturating_add(offset);
                            wheel.push(at, seq, (at, seq));
                            heap.push(Reverse((at, seq)));
                            seq += 1;
                        }
                    }
                    Op::Pop { count } => {
                        for _ in 0..count {
                            let expect = heap.pop().map(|Reverse(k)| k);
                            let peek = wheel.next_at();
                            prop_assert_eq!(peek, expect.map(|(at, _)| at), "peek diverged");
                            let got = wheel.pop().map(|(at, s, item)| {
                                assert_eq!(item, (at, s), "payload corrupted");
                                (at, s)
                            });
                            prop_assert_eq!(got, expect, "wheel and heap diverged");
                            if let Some((at, _)) = got {
                                now = at;
                            }
                        }
                    }
                }
            }
            // Drain both fully: tails must agree too.
            loop {
                let expect = heap.pop().map(|Reverse(k)| k);
                let got = wheel.pop().map(|(at, s, _)| (at, s));
                prop_assert_eq!(got, expect);
                if got.is_none() {
                    break;
                }
            }
            prop_assert!(wheel.is_empty());
        }
    }
}
