//! WAN topologies.
//!
//! [`Topology::planetlab`] reproduces the paper's testbed shape: nodes
//! spread over North-American regions, "carefully chosen so that they are
//! far apart from each other" (§6.1). Region assignment is round-robin, so
//! the first four nodes — the concurrent writers in the paper's experiments —
//! always land in four distinct regions, giving cross-continent RTTs near
//! the ~100 ms per sequential hop implied by Table 2 (314 ms for three
//! sequential visits).

use crate::latency::{Jitter, LatencyModel};
use idea_types::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Coarse geographic region of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// US east coast.
    UsEast,
    /// US west coast.
    UsWest,
    /// US central.
    UsCentral,
    /// Canada.
    Canada,
}

impl Region {
    /// All regions in assignment order.
    pub const ALL: [Region; 4] =
        [Region::UsEast, Region::UsWest, Region::UsCentral, Region::Canada];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast => "us-east",
            Region::UsWest => "us-west",
            Region::UsCentral => "us-central",
            Region::Canada => "canada",
        }
    }
}

/// A node deployment: per-node regions plus the pairwise latency model.
#[derive(Debug, Clone)]
pub struct Topology {
    regions: Vec<Region>,
    latency: LatencyModel,
    jitter: Jitter,
}

impl Topology {
    /// PlanetLab-like topology over `n` nodes.
    ///
    /// One-way base delays (before jitter): 8–12 ms within a region,
    /// 40–55 ms across regions — symmetric per unordered pair, drawn
    /// deterministically from `seed`.
    pub fn planetlab(n: usize, seed: u64) -> Topology {
        let regions: Vec<Region> = (0..n).map(|i| Region::ALL[i % Region::ALL.len()]).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_70_1a_b5);
        // Sample the upper triangle, mirror for symmetry.
        let mut us = vec![0u64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let one_way_ms: u64 = if regions[i] == regions[j] {
                    rng.gen_range(8..=12)
                } else {
                    rng.gen_range(40..=55)
                };
                us[i * n + j] = one_way_ms * 1_000;
                us[j * n + i] = one_way_ms * 1_000;
            }
        }
        Topology {
            regions,
            latency: LatencyModel::Matrix { n, us },
            jitter: Jitter::Proportional { frac: 0.08 },
        }
    }

    /// A flat low-latency deployment (0.5 ms one-way, no jitter) for tests.
    pub fn lan(n: usize) -> Topology {
        Topology {
            regions: vec![Region::UsEast; n],
            latency: LatencyModel::Constant(SimDuration::from_micros(500)),
            jitter: Jitter::None,
        }
    }

    /// A topology with a custom latency model (uniform region labels).
    pub fn custom(n: usize, latency: LatencyModel, jitter: Jitter) -> Topology {
        Topology { regions: vec![Region::UsEast; n], latency, jitter }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Region of `node`.
    pub fn region(&self, node: NodeId) -> Region {
        self.regions[node.index()]
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The per-message jitter.
    pub fn jitter(&self) -> Jitter {
        self.jitter
    }

    /// Samples the one-way delay for one message.
    pub fn sample_delay<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> SimDuration {
        self.latency.sample(from, to, self.jitter, rng)
    }

    /// Mean base RTT between nodes in *different* regions (reporting aid).
    pub fn mean_cross_region_rtt(&self) -> SimDuration {
        let n = self.len();
        let mut sum = 0u128;
        let mut cnt = 0u128;
        for i in 0..n {
            for j in 0..n {
                if i != j && self.regions[i] != self.regions[j] {
                    let fwd = self.latency.base(NodeId(i as u32), NodeId(j as u32));
                    let back = self.latency.base(NodeId(j as u32), NodeId(i as u32));
                    sum += (fwd + back).as_micros() as u128;
                    cnt += 1;
                }
            }
        }
        match sum.checked_div(cnt) {
            Some(avg) => SimDuration::from_micros(avg as u64),
            None => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_first_four_nodes_span_distinct_regions() {
        let t = Topology::planetlab(40, 7);
        let regions: std::collections::HashSet<_> = (0..4).map(|i| t.region(NodeId(i))).collect();
        assert_eq!(regions.len(), 4, "paper's four writers must be far apart");
    }

    #[test]
    fn planetlab_is_deterministic_in_seed() {
        let a = Topology::planetlab(10, 42);
        let b = Topology::planetlab(10, 42);
        for i in 0..10u32 {
            for j in 0..10u32 {
                assert_eq!(
                    a.latency().base(NodeId(i), NodeId(j)),
                    b.latency().base(NodeId(i), NodeId(j))
                );
            }
        }
    }

    #[test]
    fn planetlab_delays_are_symmetric_and_in_band() {
        let t = Topology::planetlab(12, 3);
        for i in 0..12u32 {
            for j in 0..12u32 {
                let d = t.latency().base(NodeId(i), NodeId(j));
                let r = t.latency().base(NodeId(j), NodeId(i));
                assert_eq!(d, r);
                if i == j {
                    assert_eq!(d, SimDuration::ZERO);
                } else if t.region(NodeId(i)) == t.region(NodeId(j)) {
                    assert!(d >= SimDuration::from_millis(8) && d <= SimDuration::from_millis(12));
                } else {
                    assert!(d >= SimDuration::from_millis(40) && d <= SimDuration::from_millis(55));
                }
            }
        }
    }

    #[test]
    fn cross_region_rtt_supports_table2_shape() {
        // Sequential per-member cost in Table 2 is ~105 ms; our cross-region
        // RTT must sit in that neighbourhood.
        let t = Topology::planetlab(40, 7);
        let rtt = t.mean_cross_region_rtt();
        assert!(rtt >= SimDuration::from_millis(80), "rtt {rtt}");
        assert!(rtt <= SimDuration::from_millis(115), "rtt {rtt}");
    }

    #[test]
    fn lan_topology_is_flat() {
        let t = Topology::lan(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.latency().base(NodeId(0), NodeId(3)), SimDuration::from_micros(500));
        assert_eq!(t.mean_cross_region_rtt(), SimDuration::ZERO); // single region
    }

    #[test]
    fn region_names_are_stable() {
        assert_eq!(Region::UsEast.name(), "us-east");
        assert_eq!(Region::Canada.name(), "canada");
    }
}
