//! Per-protocol message and byte accounting.
//!
//! Table 3 of the paper reports "Overhead (# of exchanged messages)" for the
//! background-resolution scheme, and §6.3.1 converts it to bandwidth under a
//! 1 KB-per-packet assumption. [`NetStats`] tracks both quantities per
//! [`MsgClass`] so the harness can report resolution traffic (the paper's
//! number) and total traffic (for the trade-off ablation) separately.

use idea_types::MessageSizeModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol class of a message, used to bucket accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MsgClass {
    /// Version-vector exchange triggered by updates (§4.3).
    Detect,
    /// Resolution control traffic: call-for-attention, acks, collect
    /// requests/replies, inform messages (§4.5).
    ResolutionCtl,
    /// Update transfer batches shipped during resolution.
    Transfer,
    /// Bottom-layer gossip (lpbcast digests, §4.3).
    Gossip,
    /// Overlay maintenance: RanSub collect/distribute (§4.1).
    Overlay,
    /// Application-level traffic (writes themselves).
    App,
    /// Anything else.
    Other,
}

impl MsgClass {
    /// All classes, in reporting order.
    pub const ALL: [MsgClass; 7] = [
        MsgClass::Detect,
        MsgClass::ResolutionCtl,
        MsgClass::Transfer,
        MsgClass::Gossip,
        MsgClass::Overlay,
        MsgClass::App,
        MsgClass::Other,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Detect => "detect",
            MsgClass::ResolutionCtl => "resolution-ctl",
            MsgClass::Transfer => "transfer",
            MsgClass::Gossip => "gossip",
            MsgClass::Overlay => "overlay",
            MsgClass::App => "app",
            MsgClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Detect => 0,
            MsgClass::ResolutionCtl => 1,
            MsgClass::Transfer => 2,
            MsgClass::Gossip => 3,
            MsgClass::Overlay => 4,
            MsgClass::App => 5,
            MsgClass::Other => 6,
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running message/byte counters per class.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    messages: [u64; 7],
    payload_bytes: [u64; 7],
    dropped: u64,
}

impl NetStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `class` with `payload` bytes.
    #[inline]
    pub fn record(&mut self, class: MsgClass, payload: u64) {
        let i = class.index();
        self.messages[i] += 1;
        self.payload_bytes[i] += payload;
    }

    /// Records a message dropped by loss/partition injection.
    #[inline]
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Messages sent in `class`.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.messages[class.index()]
    }

    /// Payload bytes sent in `class`.
    pub fn payload_bytes(&self, class: MsgClass) -> u64 {
        self.payload_bytes[class.index()]
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Messages counted as *resolution overhead* in the paper's Table-3
    /// sense: control plus transfer traffic.
    pub fn resolution_messages(&self) -> u64 {
        self.messages(MsgClass::ResolutionCtl) + self.messages(MsgClass::Transfer)
    }

    /// Messages dropped by failure injection.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_class: MsgClass::ALL
                .iter()
                .map(|c| (*c, self.messages(*c), self.payload_bytes(*c)))
                .collect(),
            dropped: self.dropped,
        }
    }

    /// Difference `self - earlier`, class-wise (for windowed measurements).
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let mut out = NetStats::new();
        for i in 0..7 {
            out.messages[i] = self.messages[i].saturating_sub(earlier.messages[i]);
            out.payload_bytes[i] = self.payload_bytes[i].saturating_sub(earlier.payload_bytes[i]);
        }
        out.dropped = self.dropped.saturating_sub(earlier.dropped);
        out
    }

    /// Bandwidth (bits/s) consumed by `class` over `secs`, under `model`.
    pub fn bandwidth_bps(&self, class: MsgClass, model: MessageSizeModel, secs: f64) -> f64 {
        model.bandwidth_bps(self.messages(class), self.payload_bytes(class), secs)
    }
}

/// A frozen view of [`NetStats`] suitable for tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// `(class, messages, payload_bytes)` per class in reporting order.
    pub per_class: Vec<(MsgClass, u64, u64)>,
    /// Messages dropped by failure injection.
    pub dropped: u64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, m, b) in &self.per_class {
            if *m > 0 {
                writeln!(f, "{c:>16}: {m:>8} msgs {b:>12} B")?;
            }
        }
        if self.dropped > 0 {
            writeln!(f, "{:>16}: {:>8}", "dropped", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_class() {
        let mut s = NetStats::new();
        s.record(MsgClass::Detect, 100);
        s.record(MsgClass::Detect, 50);
        s.record(MsgClass::Transfer, 1000);
        assert_eq!(s.messages(MsgClass::Detect), 2);
        assert_eq!(s.payload_bytes(MsgClass::Detect), 150);
        assert_eq!(s.messages(MsgClass::Transfer), 1);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn resolution_messages_combine_ctl_and_transfer() {
        let mut s = NetStats::new();
        s.record(MsgClass::ResolutionCtl, 10);
        s.record(MsgClass::ResolutionCtl, 10);
        s.record(MsgClass::Transfer, 10);
        s.record(MsgClass::Gossip, 10); // not counted
        assert_eq!(s.resolution_messages(), 3);
    }

    #[test]
    fn since_computes_window() {
        let mut s = NetStats::new();
        s.record(MsgClass::App, 10);
        let mark = s.clone();
        s.record(MsgClass::App, 10);
        s.record(MsgClass::App, 10);
        let win = s.since(&mark);
        assert_eq!(win.messages(MsgClass::App), 2);
        assert_eq!(mark.messages(MsgClass::App), 1);
    }

    #[test]
    fn bandwidth_uses_model() {
        let mut s = NetStats::new();
        for _ in 0..168 {
            s.record(MsgClass::ResolutionCtl, 0);
        }
        let bps = s.bandwidth_bps(MsgClass::ResolutionCtl, MessageSizeModel::PAPER_1KB, 100.0);
        // Paper: 168 KB over 100 s — trivially small.
        assert!(bps < 56_000.0);
        assert!(bps > 10_000.0);
    }

    #[test]
    fn snapshot_display_elides_empty_classes() {
        let mut s = NetStats::new();
        s.record(MsgClass::Gossip, 5);
        let text = s.snapshot().to_string();
        assert!(text.contains("gossip"));
        assert!(!text.contains("app"));
    }

    #[test]
    fn drop_accounting() {
        let mut s = NetStats::new();
        s.record_drop();
        s.record_drop();
        assert_eq!(s.dropped(), 2);
        assert!(s.snapshot().to_string().contains("dropped"));
    }
}
