//! The engine-agnostic protocol abstraction.
//!
//! A protocol node is a state machine reacting to messages and timers. It
//! never reads wall-clock time, never owns sockets, and draws randomness only
//! from its [`Context`] — which is what makes a run on the discrete-event
//! engine deterministic and a run on the threaded engine faithful.

use crate::stats::MsgClass;
use idea_types::{NodeId, SimDuration, SimTime};
use rand::RngCore;

/// Opaque handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Metadata every protocol message must expose so the engines can account
/// for it (Table 3 counts messages; Formula 4 needs bytes).
pub trait Wire {
    /// Which protocol class the message belongs to (for per-class stats).
    fn class(&self) -> MsgClass;

    /// Approximate payload size in bytes (excluding transport headers).
    fn wire_size(&self) -> usize {
        64
    }
}

/// The world as seen by a protocol node while handling one event.
pub trait Context<M> {
    /// Current time. Virtual on the simulator, wall-clock-derived on the
    /// threaded engine.
    fn now(&self) -> SimTime;

    /// This node's identity.
    fn me(&self) -> NodeId;

    /// Number of nodes in the deployment.
    fn node_count(&self) -> usize;

    /// Sends `msg` to `to`. Delivery is asynchronous and unordered across
    /// destinations; per-pair FIFO is *not* guaranteed (WAN semantics).
    fn send(&mut self, to: NodeId, msg: M);

    /// Arms a one-shot timer firing after `delay`; `kind` is returned to
    /// [`Proto::on_timer`] so one protocol can multiplex several timers.
    fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId;

    /// Cancels a pending timer (no-op if it already fired).
    fn cancel_timer(&mut self, timer: TimerId);

    /// Deterministic per-engine randomness source.
    fn rng(&mut self) -> &mut dyn RngCore;
}

/// A protocol whose per-object state can be partitioned into independent
/// shards, so one node's events can be processed by several workers.
///
/// The contract: a message's shard is a pure function of the message
/// ([`ShardedProto::shard_of`], typically an `ObjectId` hash), handling a
/// message only touches the state of its shard (plus internally
/// synchronised node-wide state), and a timer armed while handling shard
/// `s` fires back into shard `s`. Under that contract, delivering each
/// shard's messages on its own FIFO worker preserves per-object ordering
/// while disjoint objects proceed in parallel — and routing the same events
/// through a single instance in shard order (what [`Proto`] on the
/// composed type does) is semantically equivalent, which is how the
/// deterministic engine pins the threaded behaviour.
pub trait ShardedProto: Proto {
    /// Per-shard state machine (one shard's slice of the node).
    type Shard: Send + 'static;

    /// Number of shards this instance was built with.
    fn shard_count(&self) -> usize;

    /// Which shard handles `msg`, among `shards` shards. Must agree with
    /// the partition used by [`ShardedProto::into_shards`].
    fn shard_of(msg: &Self::Msg, shards: usize) -> usize;

    /// Decomposes the node into its shards, in shard-index order.
    fn into_shards(self) -> Vec<Self::Shard>;

    /// Reassembles a node from shards produced by
    /// [`ShardedProto::into_shards`] (same order).
    fn from_shards(shards: Vec<Self::Shard>) -> Self;

    /// Called once per shard when the engine starts the node.
    fn shard_on_start(shard: &mut Self::Shard, ctx: &mut dyn Context<Self::Msg>);

    /// Called for every message delivered to `shard`.
    fn shard_on_message(
        shard: &mut Self::Shard,
        from: NodeId,
        msg: Self::Msg,
        ctx: &mut dyn Context<Self::Msg>,
    );

    /// Called when a timer armed by `shard` fires.
    fn shard_on_timer(
        shard: &mut Self::Shard,
        timer: TimerId,
        kind: u64,
        ctx: &mut dyn Context<Self::Msg>,
    );
}

/// A protocol state machine.
///
/// Implementations must be `Send` so the threaded engine can own them on
/// worker threads.
pub trait Proto: Send {
    /// Message type exchanged between nodes of this protocol.
    type Msg: Wire + Clone + Send + std::fmt::Debug + 'static;

    /// Called once when the engine starts the node.
    fn on_start(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerId, kind: u64, ctx: &mut dyn Context<Self::Msg>) {
        let _ = (timer, kind, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Ping;

    impl Wire for Ping {
        fn class(&self) -> MsgClass {
            MsgClass::App
        }
    }

    struct Echo {
        seen: usize,
    }

    impl Proto for Echo {
        type Msg = Ping;
        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut dyn Context<Ping>) {
            self.seen += 1;
            if self.seen == 1 {
                ctx.send(from, msg);
            }
        }
    }

    /// A minimal in-process context for trait-level tests.
    struct LoopCtx {
        sent: Vec<(NodeId, Ping)>,
        rng: rand::rngs::mock::StepRng,
    }

    impl Context<Ping> for LoopCtx {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn me(&self) -> NodeId {
            NodeId(0)
        }
        fn node_count(&self) -> usize {
            2
        }
        fn send(&mut self, to: NodeId, msg: Ping) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _delay: SimDuration, _kind: u64) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _timer: TimerId) {}
        fn rng(&mut self) -> &mut dyn RngCore {
            &mut self.rng
        }
    }

    #[test]
    fn default_wire_size_is_nonzero() {
        assert!(Ping.wire_size() > 0);
    }

    #[test]
    fn proto_default_hooks_are_noops() {
        let mut e = Echo { seen: 0 };
        let mut ctx = LoopCtx { sent: vec![], rng: rand::rngs::mock::StepRng::new(0, 1) };
        e.on_start(&mut ctx);
        e.on_timer(TimerId(1), 7, &mut ctx);
        assert_eq!(e.seen, 0);
        e.on_message(NodeId(1), Ping, &mut ctx);
        e.on_message(NodeId(1), Ping, &mut ctx);
        assert_eq!(e.seen, 2);
        assert_eq!(ctx.sent.len(), 1); // echoed only once
    }
}
